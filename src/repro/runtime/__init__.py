"""Node-level runtime: task execution, rate model, node agents."""

from .execution import TaskExecution, TaskState
from .node_agent import NodeAgent
from .rates import (
    RateModelConfig,
    loaded_latency_factor,
    phase_slowdown,
    tier_access_profile,
    tier_demand,
)

__all__ = [
    "TaskExecution",
    "TaskState",
    "NodeAgent",
    "RateModelConfig",
    "loaded_latency_factor",
    "phase_slowdown",
    "tier_access_profile",
    "tier_demand",
]
