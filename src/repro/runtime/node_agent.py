"""The per-node runtime agent.

One :class:`NodeAgent` per cluster node ties everything together: the
node's memory system, the environment's memory policy, the running task
set, the memory-management daemon (heatmap advance + policy tick), and
the contention-aware rate recomputation that keeps every running task's
completion event consistent with current placement.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .. import obs
from ..core.flags import MemFlag
from ..core.heatmap import HeatmapConfig, PageHeatmap
from ..memory.system import NodeMemorySystem
from ..memory.tiers import DRAM, NUM_TIERS, TierKind
from ..metrics.collector import MetricsRegistry
from ..memory.contention import allocate_bandwidth
from ..policies.base import MemoryPolicy, PolicyContext
from ..sim.engine import SimulationEngine
from ..sim.process import PeriodicProcess, TickGroup
from ..util.validation import check_positive, require
from ..workflows.task import TaskSpec
from .execution import TaskExecution, TaskState
from .rates import RateModelConfig, phase_slowdown

__all__ = ["NodeAgent"]


class NodeAgent:
    """Runtime agent for one node: running set, daemon, rate model."""

    def __init__(
        self,
        engine: SimulationEngine,
        memory: NodeMemorySystem,
        policy: MemoryPolicy,
        metrics: MetricsRegistry,
        *,
        cores: int = 32,
        daemon_interval: float = 1.0,
        rate_config: Optional[RateModelConfig] = None,
        heatmap_config: Optional[HeatmapConfig] = None,
        chunk_size: Optional[int] = None,
        validate_invariants: bool = False,
        shared_memory=None,
        node_index: int = 0,
        tracer=None,
        ticker: Optional[TickGroup] = None,
    ) -> None:
        check_positive(cores, "cores")
        self.engine = engine
        self.memory = memory
        # the migration ledger stamps entries with sim-time; a bare
        # NodeMemorySystem defaults to t=0 until an agent adopts it
        memory.now = lambda: engine.now
        self.policy = policy
        self.metrics = metrics
        #: optional :class:`repro.sim.trace.Tracer` for structured events
        self.tracer = tracer
        #: cluster-shared CXL manager (IMME only) and this node's index,
        #: used for §III-C5 shared read-only inputs
        self.shared_memory = shared_memory
        self.node_index = int(node_index)
        self.cores = int(cores)
        self.cores_used = 0
        self.daemon_interval = float(daemon_interval)
        self.rate_config = rate_config if rate_config is not None else RateModelConfig()
        self.heatmap = PageHeatmap(heatmap_config)
        from ..memory.pageset import DEFAULT_CHUNK_SIZE

        self.chunk_size = int(chunk_size) if chunk_size else DEFAULT_CHUNK_SIZE
        self.validate_invariants = validate_invariants
        self.running: dict[str, TaskExecution] = {}
        from ..util.rng import derive_seed

        self.context = PolicyContext(
            memory=memory,
            now=lambda: self.engine.now,
            record_major=self._record_major,
            record_minor=self._record_minor,
            rng=np.random.default_rng(derive_seed(0, f"policy.{memory.node_id}")),
        )
        self._bw_capacities = np.array(
            [memory.specs[TierKind(t)].bandwidth for t in range(NUM_TIERS)], dtype=np.float64
        )
        # Daemon scheduling: with a shared ticker (one coalesced engine
        # event per cluster-wide tick) the agent just joins the group;
        # standalone agents keep their own PeriodicProcess.
        self._ticker = ticker
        self._ticker_handle: Optional[int] = None
        if ticker is not None:
            require(
                abs(ticker.interval - self.daemon_interval) < 1e-12,
                f"ticker interval {ticker.interval} != daemon interval {self.daemon_interval}",
            )
            self._daemon: Optional[PeriodicProcess] = None
        else:
            self._daemon = PeriodicProcess(
                engine, self.daemon_interval, self._daemon_tick, f"daemon.{memory.node_id}"
            )
        self._daemon_started = False
        self._last_penalty_sample = 0.0
        self._traced_migrated_bytes = 0
        #: callbacks fired when a task releases its cores (scheduler pump)
        self.on_capacity_freed: list[Callable[[], None]] = []
        #: node crashed (fault injection); refuses placements until restored
        self.down = False

    # ------------------------------------------------------------------ #
    # fault accounting (wired into the PolicyContext)
    # ------------------------------------------------------------------ #
    def _record_major(self, owner: str, n: int) -> None:
        self.metrics.task(owner).major_faults += int(n)

    def _record_minor(self, owner: str, n: int) -> None:
        self.metrics.task(owner).minor_faults += int(n)

    # ------------------------------------------------------------------ #
    # task lifecycle
    # ------------------------------------------------------------------ #
    @property
    def cores_free(self) -> int:
        return self.cores - self.cores_used

    def can_host(self, spec: TaskSpec) -> bool:
        return not self.down and self.cores_free >= spec.cores

    def start_task(
        self,
        spec: TaskSpec,
        *,
        flags: Optional[MemFlag] = None,
        on_finish: Optional[Callable[[TaskExecution], None]] = None,
    ) -> TaskExecution:
        """Admit and immediately start ``spec`` on this node."""
        require(self.can_host(spec), f"node {self.memory.node_id}: no cores for {spec.name}")
        require(spec.name not in self.running, f"duplicate task name {spec.name!r}")
        if not self._daemon_started:
            if self._ticker is not None:
                self._ticker_handle = self._ticker.add(self._daemon_tick)
            else:
                assert self._daemon is not None
                self._daemon.start()
            self._daemon_started = True
        tm = self.metrics.task(spec.name, spec.wclass.name)
        te = TaskExecution(spec, self, tm, flags=flags, on_finish=on_finish)
        self.cores_used += spec.cores
        self.running[spec.name] = te
        self.context.active_owners.add(spec.name)
        self.trace("task", spec.name, event="started", node=self.memory.node_id)
        te.start()
        return te

    def trace(self, category: str, subject: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.emit(self.engine.now, category, subject, **data)
        # Tracer and telemetry are independent sinks: the same structured
        # events also flow into the active run record when one exists.
        obs.event(self.engine.now, category, subject, **data)

    def task_finished(self, te: TaskExecution) -> None:
        if te.spec.name in self.running:
            del self.running[te.spec.name]
            self.cores_used -= te.spec.cores
            self.context.active_owners.discard(te.spec.name)
            self.trace(
                "task",
                te.spec.name,
                event="failed" if te.metrics.failed else "finished",
                node=self.memory.node_id,
            )
            self.recompute_rates()
            for cb in list(self.on_capacity_freed):
                cb()

    def on_task_change(self, te: TaskExecution) -> None:
        """A task changed phase/placement — refresh everyone's rates."""
        self.recompute_rates()

    # ------------------------------------------------------------------ #
    # fault handling (driven by the injector / scheduler)
    # ------------------------------------------------------------------ #
    def crash(self, reason: str = "node crash") -> int:
        """Kill the node: interrupt every running task, stop the daemon.

        Returns the number of tasks killed.  Idempotent — crashing a dead
        node is a no-op.
        """
        if self.down:
            return 0
        self.down = True
        killed = 0
        for te in list(self.running.values()):
            if te.interrupt(reason):
                killed += 1
        self.metrics.faults.tasks_interrupted += killed
        self.stop()
        self.trace(
            "fault", self.memory.node_id, event="node-crash", killed=killed
        )
        return killed

    def restore(self) -> None:
        """Bring a crashed node back into service (memory comes up empty)."""
        if not self.down:
            return
        self.down = False
        self.trace("fault", self.memory.node_id, event="node-restored")

    def handle_tier_offline(self, tier: TierKind) -> int:
        """A memory tier failed: evacuate it, kill stranded tasks.

        Returns the number of tasks killed because their pages fit nowhere.
        """
        evacuated, stranded = self.memory.offline_tier(tier)
        if evacuated or stranded:
            self.metrics.faults.tier_evacuations += 1
            self.metrics.faults.evacuated_bytes += evacuated
        self.trace(
            "fault",
            self.memory.node_id,
            event="tier-offline",
            tier=tier.name,
            evacuated_bytes=evacuated,
            stranded=len(stranded),
        )
        killed = 0
        for owner in stranded:
            te = self.running.get(owner)
            if te is not None and te.interrupt(f"tier {tier.name} offline, pages stranded"):
                killed += 1
        self.metrics.faults.tasks_interrupted += killed
        self.recompute_rates()
        return killed

    def handle_tier_online(self, tier: TierKind) -> None:
        self.memory.online_tier(tier)
        self.trace("fault", self.memory.node_id, event="tier-online", tier=tier.name)
        self.recompute_rates()

    # ------------------------------------------------------------------ #
    # rate model
    # ------------------------------------------------------------------ #
    def recompute_rates(self) -> None:
        tasks = [te for te in self.running.values() if te.state is TaskState.RUNNING]
        if not tasks:
            self.memory.migration_bytes_window = 0
            return
        demands = np.stack([te.demand_vector() for te in tasks])
        # offline tiers deliver no bandwidth; degraded links a fraction
        capacities = self._bw_capacities * self.memory.tier_health()
        achieved = allocate_bandwidth(capacities, demands)
        per_task_bw = achieved.sum(axis=1)
        penalty = self._migration_penalty()
        utilization = None
        if self.rate_config.loaded_latency:
            with np.errstate(divide="ignore", invalid="ignore"):
                utilization = np.where(
                    capacities > 0, achieved.sum(axis=0) / capacities, 0.0
                )
        for te, bw in zip(tasks, per_task_bw):
            slowdown = phase_slowdown(
                te.phase,
                te.pageset,
                self.memory.specs,
                float(bw),
                migration_penalty=penalty,
                config=self.rate_config,
                tier_bw_utilization=utilization,
            )
            te.update_rate(1.0 / slowdown)

    def _migration_penalty(self) -> float:
        """Charge recent daemon data movement against task progress."""
        window = self.memory.migration_bytes_window
        self.memory.migration_bytes_window = 0
        if window <= 0:
            return 0.0
        dram_bw = self.memory.specs[DRAM].bandwidth
        interval = max(self.daemon_interval, 1e-6)
        return self.rate_config.migration_overhead_coeff * window / (dram_bw * interval)

    # ------------------------------------------------------------------ #
    # daemon
    # ------------------------------------------------------------------ #
    def _daemon_tick(self, now: float) -> None:
        rates = {
            owner: te.current_rate
            for owner, te in self.running.items()
            if te.state is TaskState.RUNNING
        }
        self.heatmap.advance_node(self.memory, self.daemon_interval, rates)
        self.policy.tick(self.context)
        if (self.tracer is not None and self.tracer.wants("daemon")) or obs.enabled():
            total = self.memory.stats.total_migrated_bytes
            self.trace(
                "daemon",
                self.memory.node_id,
                event="tick",
                migrated_bytes=total - self._traced_migrated_bytes,
                running=len(self.running),
                dram_rss=self.memory.rss(DRAM),
            )
            self._traced_migrated_bytes = total
        if self.validate_invariants:
            self.memory.validate()
        self.recompute_rates()

    def stop(self) -> None:
        if self._daemon_started:
            if self._ticker is not None:
                if self._ticker_handle is not None:
                    self._ticker.remove(self._ticker_handle)
                    self._ticker_handle = None
            else:
                assert self._daemon is not None
                self._daemon.stop()
            self._daemon_started = False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<NodeAgent {self.memory.node_id} running={len(self.running)} "
            f"cores={self.cores_used}/{self.cores}>"
        )
