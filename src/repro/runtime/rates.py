"""The fluid progress-rate model (DESIGN.md §4).

A running phase advances at rate ``1/slowdown`` where the slowdown blends
three placement-dependent terms using the phase's sensitivity mix:

* the **latency** term compares the access-weighted mean latency of the
  task's pages against pure DRAM (swap-resident pages pay an amortised
  major-fault penalty; page-cache-shadowed pages pay ~DRAM),
* the **bandwidth** term compares demanded against achieved throughput
  (achieved sums fair-share bandwidth over *every* tier the pages span —
  multi-path aggregation, the paper's BW-flag payoff),
* a **migration overhead** term charges for daemon data movement
  (the ≈4 % runtime overhead reported in §IV-D4).

All functions are pure and vectorised; the node agent calls them on every
contention or placement change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..memory.pageset import PageSet
from ..memory.tiers import DRAM, NUM_TIERS, SWAP, TierKind, TierSpec
from ..util.units import ns, us
from ..util.validation import check_non_negative, check_positive
from ..workflows.task import TaskPhase

__all__ = [
    "RateModelConfig",
    "tier_access_profile",
    "tier_demand",
    "phase_slowdown",
    "loaded_latency_factor",
]


@dataclass(frozen=True)
class RateModelConfig:
    """Tuning constants for the progress model.

    ``swap_access_latency`` is the *amortised* per-access cost of a
    swap-resident page: a 4 KiB-page major fault costs ~tens of µs of
    fault handling plus the read, amortised over the accesses a page
    serves before being evicted again under thrash.  The default keeps
    the DRAM:swap effective-latency ratio at ~125x, which reproduces the
    order-of-magnitude collapse of Fig. 1's swap-constrained bars without
    overstating it (the paper's worst CBE:IMME ratio is ~8x).
    """

    swap_access_latency: float = us(10.0)
    shadow_access_latency: float = ns(150.0)
    migration_overhead_coeff: float = 0.25
    migration_overhead_cap: float = 0.08
    max_slowdown: float = 1e5
    #: model *loaded latency*: a tier's effective access latency rises as
    #: its bandwidth utilisation approaches saturation (the paper's §VI
    #: future-work item "support variable latency and bandwidth").
    loaded_latency: bool = False
    #: latency multiplier at 100% bandwidth utilisation (quadratic ramp).
    loaded_latency_max_factor: float = 4.0

    def __post_init__(self) -> None:
        check_positive(self.swap_access_latency, "swap_access_latency")
        check_positive(self.shadow_access_latency, "shadow_access_latency")
        check_non_negative(self.migration_overhead_coeff, "migration_overhead_coeff")
        check_non_negative(self.migration_overhead_cap, "migration_overhead_cap")
        check_positive(self.max_slowdown, "max_slowdown")
        if self.loaded_latency_max_factor < 1.0:
            raise ValueError("loaded_latency_max_factor must be >= 1")


def loaded_latency_factor(utilization: float, max_factor: float) -> float:
    """Quadratic loaded-latency ramp: 1x when idle, ``max_factor`` at
    saturation — the shape of measured DRAM/CXL loaded-latency curves."""
    rho = min(max(float(utilization), 0.0), 1.0)
    return 1.0 + (max_factor - 1.0) * rho * rho


def tier_access_profile(ps: PageSet) -> tuple[np.ndarray, float]:
    """Split the phase's access distribution by *service point*.

    Returns ``(weights[NUM_TIERS], shadow_weight)`` where ``weights[t]``
    is the fraction of accesses served by tier ``t`` directly and
    ``shadow_weight`` the fraction served from DRAM page-cache shadows.
    Weights are normalised over mapped chunks; all-zero when idle.
    """
    mask = ps.mapped_mask
    w = ps.access_weight
    total = float(w[mask].sum())
    out = np.zeros(NUM_TIERS, dtype=np.float64)
    if total <= 0:
        return out, 0.0
    shadow = mask & ps.in_page_cache
    direct = mask & ~ps.in_page_cache
    if direct.any():
        np.add.at(out, ps.tier[direct].astype(np.int64), w[direct].astype(np.float64))
    shadow_weight = float(w[shadow].sum()) / total
    out /= total
    return out, shadow_weight


def tier_demand(ps: PageSet, demand_bandwidth: float) -> np.ndarray:
    """Per-tier throughput demand (bytes/s) for the bandwidth-contention
    matrix.  Shadowed accesses demand DRAM (the copy they read is there)."""
    check_non_negative(demand_bandwidth, "demand_bandwidth")
    weights, shadow_weight = tier_access_profile(ps)
    demand = weights * demand_bandwidth
    demand[int(DRAM)] += shadow_weight * demand_bandwidth
    return demand


def phase_slowdown(
    phase: TaskPhase,
    ps: PageSet,
    specs: Mapping[TierKind, TierSpec],
    achieved_bandwidth: float,
    *,
    migration_penalty: float = 0.0,
    config: RateModelConfig = RateModelConfig(),
    tier_bw_utilization: "np.ndarray | None" = None,
) -> float:
    """Instantaneous slowdown of ``phase`` under the current placement.

    ``achieved_bandwidth`` is the task's summed fair-share throughput
    across tiers (from :func:`repro.memory.contention.allocate_bandwidth`).
    With ``config.loaded_latency`` set, ``tier_bw_utilization`` (the
    node-wide per-tier bandwidth utilisation) inflates each tier's
    effective latency along the loaded-latency curve.  Returns a value
    >= ``compute_frac`` (never faster than pure compute), clamped at
    ``config.max_slowdown``.
    """
    weights, shadow_weight = tier_access_profile(ps)
    dram_lat = specs[DRAM].latency
    if weights.sum() + shadow_weight <= 0:
        lat_mult = 1.0  # idle / not yet weighted: treat as DRAM-resident
    else:
        def eff_latency(t: TierKind) -> float:
            base = specs[t].latency
            if config.loaded_latency and tier_bw_utilization is not None:
                base *= loaded_latency_factor(
                    float(tier_bw_utilization[int(t)]), config.loaded_latency_max_factor
                )
            return base

        lat = shadow_weight * config.shadow_access_latency
        for t in (TierKind.DRAM, TierKind.PMEM, TierKind.CXL):
            lat += weights[int(t)] * eff_latency(t)
        lat += weights[int(SWAP)] * config.swap_access_latency
        lat_mult = lat / dram_lat
    if phase.demand_bandwidth > 0 and phase.bw_frac > 0:
        bw_mult = phase.demand_bandwidth / max(achieved_bandwidth, 1e-9)
        bw_mult = max(1.0, bw_mult)
    else:
        bw_mult = 1.0
    slowdown = (
        phase.compute_frac
        + phase.lat_frac * lat_mult
        + phase.bw_frac * bw_mult
        + min(config.migration_overhead_cap, max(0.0, migration_penalty))
    )
    return float(min(max(slowdown, phase.compute_frac), config.max_slowdown))
