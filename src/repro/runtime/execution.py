"""Task execution: drives one containerized task through its phases.

A :class:`TaskExecution` owns the task's :class:`PageSet`, issues its
allocation requests through the Table-I client, installs each phase's
access distribution, triggers fault-in of touched swap pages, and tracks
progress with a :class:`~repro.sim.process.RateTracker` whose rate the
node agent updates on every contention/placement change.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from .. import obs
from ..containers.cgroup import MemoryCgroup, OomKill
from ..core.api import RegionHandle, TieredMemoryClient
from ..core.flags import MemFlag
from ..memory.pageset import PageSet
from ..memory.tiers import CXL, SWAP
from ..metrics.collector import TaskMetrics
from ..sim.events import Event
from ..sim.process import RateTracker
from ..util.errors import AllocationError
from ..util.validation import require
from ..workflows.task import TaskSpec
from .rates import tier_demand

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node_agent import NodeAgent

__all__ = ["TaskState", "TaskExecution"]


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class TaskExecution:
    """One task instance running on one node."""

    def __init__(
        self,
        spec: TaskSpec,
        agent: "NodeAgent",
        metrics: TaskMetrics,
        *,
        flags: Optional[MemFlag] = None,
        on_finish: Optional[Callable[["TaskExecution"], None]] = None,
    ) -> None:
        self.spec = spec
        self.agent = agent
        self.metrics = metrics
        self.on_finish = on_finish
        #: flags passed with the initial allocation; ``None`` selects the
        #: spec's effective flags, ``MemFlag.NONE`` forces the predictor path.
        self.flags = spec.effective_flags if flags is None else flags
        # one chunk of slack per allocation call: each request rounds its
        # size up to whole chunks independently
        n_allocs = (
            1
            + len(spec.shared_inputs)
            + sum(1 for p in spec.phases if p.allocate is not None)
        )
        self.pageset = PageSet(
            spec.name, spec.max_footprint + n_allocs * agent.chunk_size, agent.chunk_size
        )
        self.client: Optional[TieredMemoryClient] = None
        self.state = TaskState.PENDING
        self.phase_index = -1
        self.tracker: Optional[RateTracker] = None
        self.current_rate = 0.0
        self._completion: Optional[Event] = None
        self._phase_started_at = 0.0
        self._attached_shared: list[str] = []
        #: cgroup memory.max enforcement (None limit = uncapped)
        self.cgroup = MemoryCgroup(spec.name, spec.memory_limit)
        self._region_charges: dict[int, int] = {}
        #: set when a fault (node crash, stranded evacuation) killed this
        #: task mid-run — the scheduler requeues those, unlike OOM kills
        self.interrupted = False
        #: straggler throttle installed by the fault injector (1.0 = healthy)
        self.rate_scale = 1.0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Register memory, perform the initial allocation, begin phase 0."""
        require(self.state is TaskState.PENDING, f"{self.spec.name}: already started")
        agent = self.agent
        now = agent.engine.now
        self.metrics.started_at = now
        agent.memory.register(self.pageset)
        self.client = TieredMemoryClient(agent.context, agent.policy, self.pageset)
        try:
            self._tm_allocate(self.spec.footprint, self.flags)
            self._acquire_shared_inputs()
        except (AllocationError, OomKill) as exc:
            self._fail(str(exc))
            return
        self.state = TaskState.RUNNING
        self._begin_phase(0)

    def _tm_allocate(self, nbytes: int, flags: Optional[MemFlag]) -> RegionHandle:
        """``allocate_TM`` with cgroup charging.

        Bytes the policy backed with CXL are tiered *expansion* memory
        attached through the manager's APIs and live outside the
        container's fixed allocation; everything else (DRAM/PMem/swap)
        is charged against ``memory.max``.
        """
        assert self.client is not None
        handle = self.client.allocate_TM(nbytes, flags)
        ps = self.pageset
        idx = np.flatnonzero(ps.region == handle.region)
        charged = int(np.count_nonzero(ps.tier[idx] != int(CXL))) * ps.chunk_size
        try:
            self.cgroup.charge(charged)
        except OomKill:
            self.client.free_TM(handle)
            raise
        self._region_charges[handle.region] = charged
        return handle

    def _tm_free_region(self, region: int) -> None:
        assert self.client is not None
        self.client.free_region(region)
        self.cgroup.uncharge(self._region_charges.pop(region, 0))

    def _acquire_shared_inputs(self) -> None:
        """§III-C5 strategy 1: attach shared read-only inputs.

        With a shared-memory manager (IMME), the region is staged once in
        cluster-shared CXL and merely referenced; otherwise the task must
        allocate a private copy, inflating its own footprint.
        """
        agent = self.agent
        assert self.client is not None
        for shared in self.spec.shared_inputs:
            shm = agent.shared_memory
            if shm is not None:
                if shm.pool.contains(shared.name):
                    shm.attach(self.spec.name, shared.name)
                else:
                    shm.stage(shared.name, shared.nbytes, owner=self.spec.name)
                shm.note_access(agent.node_index, shared.name)
                self._attached_shared.append(shared.name)
            else:
                self._tm_allocate(shared.nbytes, MemFlag.CAP)

    def _release_shared_inputs(self) -> None:
        shm = self.agent.shared_memory
        if shm is None:
            return
        for name in self._attached_shared:
            shm.detach(self.spec.name, name)
        self._attached_shared.clear()

    def _begin_phase(self, index: int) -> None:
        spec = self.spec
        phase = spec.phases[index]
        self.phase_index = index
        self._phase_started_at = self.agent.engine.now
        assert self.client is not None
        if phase.release_region is not None:
            self._tm_free_region(phase.release_region)
        if phase.allocate is not None:
            try:
                self._tm_allocate(phase.allocate.nbytes, phase.allocate.flags)
            except (AllocationError, OomKill) as exc:
                self._fail(str(exc))
                return
        self._install_access_weights(phase, index)
        self._fault_in_touched(phase)
        self.tracker = RateTracker(phase.base_time)
        obs.counter("task.phases", 1, wclass=spec.wclass.name)
        self.agent.trace(
            "phase", spec.name, event="begin", phase=phase.name, index=index
        )
        self.agent.on_task_change(self)

    def _install_access_weights(self, phase, index: int) -> None:
        ps = self.pageset
        mapped = np.flatnonzero(ps.mapped_mask)
        weights = np.zeros(ps.n_chunks, dtype=np.float32)
        if mapped.size:
            w = phase.pattern.weights(mapped.size, index)
            if phase.touched_fraction < 1.0:
                # restrict to the hottest `touched_fraction` of chunks
                keep = max(1, int(round(mapped.size * phase.touched_fraction)))
                order = np.argsort(-w, kind="stable")
                mask = np.zeros(mapped.size, dtype=bool)
                mask[order[:keep]] = True
                w = np.where(mask, w, 0.0)
                total = w.sum()
                if total > 0:
                    w = w / total
            weights[mapped] = w.astype(np.float32)
        ps.set_access_weights(weights)

    def _fault_in_touched(self, phase) -> None:
        """Touching the phase's working set faults in swap-resident chunks."""
        ps = self.pageset
        touched = np.flatnonzero(ps.access_weight > 0)
        swapped = touched[ps.tier[touched] == int(SWAP)]
        if swapped.size:
            self.agent.policy.fault_in(self.agent.context, ps, swapped)

    def _on_phase_complete(self) -> None:
        now = self.agent.engine.now
        self.metrics.phase_durations.append(now - self._phase_started_at)
        nxt = self.phase_index + 1
        if nxt < len(self.spec.phases):
            self._begin_phase(nxt)
        else:
            self._finish()

    def _finish(self) -> None:
        agent = self.agent
        now = agent.engine.now
        self.state = TaskState.DONE
        obs.counter("task.completed", 1, wclass=self.spec.wclass.name)
        self.metrics.finished_at = now
        self.pageset.clear_access_weights()
        self._cancel_completion()
        policy = agent.policy
        if hasattr(policy, "finish_workflow"):
            policy.finish_workflow(self.spec.name, self.pageset, self.metrics.execution_time)
        self._release_shared_inputs()
        agent.memory.unregister(self.pageset)
        agent.task_finished(self)
        if self.on_finish is not None:
            self.on_finish(self)

    def interrupt(self, reason: str) -> bool:
        """Kill a running task from the outside (node crash, lost tier).

        Returns ``True`` if the task was actually running and is now dead;
        interrupted tasks are eligible for scheduler requeue, whereas
        OOM/allocation failures stay terminal.
        """
        if self.state is not TaskState.RUNNING:
            return False
        self.interrupted = True
        self._fail(reason)
        return True

    def _fail(self, reason: str) -> None:
        agent = self.agent
        self.state = TaskState.FAILED
        obs.counter("task.failed", 1, wclass=self.spec.wclass.name)
        self.metrics.failed = True
        self.metrics.failure_reason = reason
        self.metrics.finished_at = agent.engine.now
        if self.cgroup.oom_kills:
            obs.counter("task.oom_kills", self.cgroup.oom_kills, wclass=self.spec.wclass.name)
            self.metrics.oom_kills += self.cgroup.oom_kills
            agent.trace(
                "oom",
                self.spec.name,
                event="oom-kill",
                charged=self.cgroup.charged,
                limit=self.cgroup.limit,
                node=agent.memory.node_id,
            )
        self._cancel_completion()
        self._release_shared_inputs()
        if agent.memory.get_pageset(self.pageset.owner) is not None:
            agent.memory.unregister(self.pageset)
        agent.task_finished(self)
        if self.on_finish is not None:
            self.on_finish(self)

    # ------------------------------------------------------------------ #
    # rate control (called by the node agent)
    # ------------------------------------------------------------------ #
    def update_rate(self, rate: float) -> None:
        """Install a new progress rate and reschedule phase completion."""
        if self.state is not TaskState.RUNNING or self.tracker is None:
            return
        rate *= self.rate_scale
        engine = self.agent.engine
        self.tracker.set_rate(engine.now, rate)
        self.current_rate = rate
        self._cancel_completion()
        eta = self.tracker.projected_finish(engine.now)
        if eta is not None:
            self._completion = engine.schedule_at(
                eta, self._on_phase_complete, f"{self.spec.name}.phase{self.phase_index}"
            )

    def _cancel_completion(self) -> None:
        self.agent.engine.cancel(self._completion)
        self._completion = None

    # ------------------------------------------------------------------ #
    # queries for the agent's contention model
    # ------------------------------------------------------------------ #
    @property
    def phase(self):
        return self.spec.phases[self.phase_index]

    def demand_vector(self) -> np.ndarray:
        """Current per-tier bandwidth demand (bytes/s)."""
        if self.state is not TaskState.RUNNING:
            return np.zeros(4)
        return tier_demand(self.pageset, self.phase.demand_bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<TaskExecution {self.spec.name} {self.state.value} "
            f"phase={self.phase_index}/{len(self.spec.phases)}>"
        )
