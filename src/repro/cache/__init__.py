"""Content-addressed result cache for sweep cells.

PR 2 made every sweep cell hermetic and seed-deterministic, so a cell's
result is a pure function of (code, kwargs, seed).  This package turns
that into incremental recompute: results persist on disk keyed by a
digest of exactly those inputs, re-runs serve hits without dispatching
workers, and editing a source module invalidates only the cells whose
import closure contains it.

* :mod:`~repro.cache.fingerprint` — static import-closure code digests.
* :mod:`~repro.cache.keys` — cell-id / content-key derivation.
* :mod:`~repro.cache.codec` — exact, versioned result serialization.
* :mod:`~repro.cache.store` — atomic disk store with hit/miss stats.

Wired through :func:`repro.parallel.map_ordered`,
:func:`repro.experiments.common.sweep`, and the experiment runner
(``python -m repro.experiments --cache-dir/--no-cache/--cache-stats``).
"""

from .codec import CODEC_VERSION, CodecError, decode, encode
from .fingerprint import (
    clear_fingerprint_caches,
    closure_fingerprint,
    import_closure,
    module_fingerprint,
)
from .keys import CacheKey, CacheKeyError, canonicalize, cell_keys
from .store import CacheStats, ResultCache, default_cache_dir

__all__ = [
    "CODEC_VERSION",
    "CacheKey",
    "CacheKeyError",
    "CacheStats",
    "CodecError",
    "ResultCache",
    "canonicalize",
    "cell_keys",
    "clear_fingerprint_caches",
    "closure_fingerprint",
    "decode",
    "default_cache_dir",
    "encode",
    "import_closure",
    "module_fingerprint",
]
