"""Code fingerprints: which source does a sweep cell actually depend on?

A cell's result is a pure function of its kwargs, its seed, *and the code
that computes it*.  The first two are easy to digest; this module handles
the third.  We fingerprint the **import closure** of the cell function's
module inside the repro package: starting from the module, every
``import``/``from ... import`` statement is resolved (including relative
imports), edges leaving the package are dropped, and the reachable set is
collected transitively.  The closure fingerprint is a digest over the
sorted ``(module name, source sha256)`` pairs of that set.

Editing any module in the closure therefore changes the fingerprint — and
with it every cache key built on top — while editing a module the cell
never imports leaves it untouched.  Resolution is static (AST, not
``sys.modules``), so conditional and ``TYPE_CHECKING``-only imports count
toward the closure; that errs on the side of invalidating, never on the
side of serving stale results.

Fingerprints are memoized per process (source files do not change under a
running sweep); tests that rewrite modules on disk call
:func:`clear_fingerprint_caches` between edits.
"""

from __future__ import annotations

import ast
import hashlib
from importlib import util as importlib_util
from typing import Optional

__all__ = [
    "ROOT_PACKAGE",
    "clear_fingerprint_caches",
    "closure_fingerprint",
    "import_closure",
    "module_fingerprint",
]

#: modules outside this package never participate in fingerprints — the
#: interpreter and third-party versions are covered by the repro version
#: component of the cache key instead.
ROOT_PACKAGE = "repro"

#: module name -> (origin path, source bytes sha256), or None when the
#: module has no readable .py source (namespace pkg, extension, missing).
_SOURCE_CACHE: dict[str, Optional[tuple[str, str]]] = {}
#: (module name, root package) -> transitive in-package import closure
_CLOSURE_CACHE: dict[tuple[str, str], frozenset[str]] = {}


def clear_fingerprint_caches() -> None:
    """Drop all memoized source hashes and closures (tests edit files)."""
    _SOURCE_CACHE.clear()
    _CLOSURE_CACHE.clear()


def _find_source(modname: str) -> Optional[tuple[str, bytes]]:
    """Locate ``modname``'s .py file and read it; None when impossible."""
    try:
        spec = importlib_util.find_spec(modname)
    except Exception:
        # unimportable parents, names that are attributes not modules, ...
        return None
    if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
        return None
    try:
        with open(spec.origin, "rb") as fh:
            return spec.origin, fh.read()
    except OSError:
        return None


def _source_entry(modname: str) -> Optional[tuple[str, str]]:
    if modname not in _SOURCE_CACHE:
        found = _find_source(modname)
        if found is None:
            _SOURCE_CACHE[modname] = None
        else:
            path, source = found
            _SOURCE_CACHE[modname] = (path, hashlib.sha256(source).hexdigest())
    return _SOURCE_CACHE[modname]


def module_fingerprint(modname: str) -> Optional[str]:
    """sha256 of one module's source bytes (None if unreadable)."""
    entry = _source_entry(modname)
    return None if entry is None else entry[1]


def _is_package(modname: str) -> bool:
    entry = _source_entry(modname)
    return entry is not None and entry[0].endswith("__init__.py")


def _direct_imports(modname: str, root: str) -> set[str]:
    """Modules under ``root`` imported directly by ``modname``'s source."""
    entry = _source_entry(modname)
    if entry is None:
        return set()
    path = entry[0]
    try:
        with open(path, "rb") as fh:
            tree = ast.parse(fh.read(), filename=path)
    except (OSError, SyntaxError):
        return set()
    prefix = root + "."
    out: set[str] = set()

    def keep(name: str) -> None:
        if name == root or name.startswith(prefix):
            if _source_entry(name) is not None:
                out.add(name)

    # the package anchor relative imports resolve against
    package = modname if _is_package(modname) else modname.rpartition(".")[0]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                keep(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                if not package:
                    continue
                try:
                    base = importlib_util.resolve_name(
                        "." * node.level + (node.module or ""), package
                    )
                except ImportError:
                    continue
            else:
                base = node.module or ""
            if not base:
                continue
            keep(base)
            # ``from pkg import sub`` pulls in submodules, not just names
            for alias in node.names:
                if alias.name != "*":
                    keep(f"{base}.{alias.name}")
    out.discard(modname)
    return out


def import_closure(modname: str, root: str = ROOT_PACKAGE) -> frozenset[str]:
    """``modname`` plus every module it transitively imports under ``root``."""
    cached = _CLOSURE_CACHE.get((modname, root))
    if cached is not None:
        return cached
    seen: set[str] = set()
    frontier = [modname]
    while frontier:
        mod = frontier.pop()
        if mod in seen:
            continue
        seen.add(mod)
        frontier.extend(_direct_imports(mod, root) - seen)
    closure = frozenset(seen)
    _CLOSURE_CACHE[(modname, root)] = closure
    return closure


def closure_fingerprint(modname: str, root: str = ROOT_PACKAGE) -> str:
    """One digest over the sorted (name, source hash) pairs of the closure.

    Modules without readable source contribute their name only, so a
    module that *loses* its source still perturbs the fingerprint.
    """
    digest = hashlib.sha256()
    for name in sorted(import_closure(modname, root)):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        fp = module_fingerprint(name)
        digest.update(b"?" if fp is None else fp.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()
