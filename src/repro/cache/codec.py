"""Versioned, exact (de)serialization of sweep-cell results.

The cache must hand back *byte-identical* tables, so the codec's contract
is exactness, not generality: every value a cell returns — floats, ints,
strings, lists, tuples, dicts with arbitrary keys, enums, dataclasses
(:class:`~repro.experiments.common.FigureResult` included), numpy arrays
and scalars — round-trips to an ``==``-equal object with the same types
and the same numpy dtypes.  Floats travel as their shortest round-trip
``repr`` (what :mod:`json` emits), numpy payloads as raw little-endian
bytes next to their dtype string, so no precision is ever lost.

The wire format is a JSON envelope ``{"codec": N, "payload": ...}``.
Bumping :data:`CODEC_VERSION` makes every existing file unreadable, which
the store treats as a miss — old caches age out instead of being
misdecoded.  Anything the codec does not recognise raises
:class:`CodecError` on encode (the cell is simply not cached) and on
decode (the file is treated as corrupt).
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import json
from importlib import import_module
from typing import Any

import numpy as np

__all__ = ["CODEC_VERSION", "CodecError", "decode", "encode"]

#: bump when the wire format changes incompatibly
CODEC_VERSION = 1

#: numpy dtype kinds with stable, buffer-exact byte representations
_NUMPY_KINDS = frozenset("biufcSU")

#: tag key — plain dicts containing it are escaped into the tagged form
_TAG = "__t__"


class CodecError(ValueError):
    """Raised for values the codec cannot represent or parse."""


def _classpath(cls: type) -> str:
    if "<locals>" in cls.__qualname__:
        raise CodecError(f"cannot serialize local class {cls.__qualname__}")
    return f"{cls.__module__}:{cls.__qualname__}"


def _resolve_class(path: Any) -> type:
    if not isinstance(path, str) or ":" not in path:
        raise CodecError(f"malformed class path {path!r}")
    modname, _, qualname = path.partition(":")
    try:
        obj: Any = import_module(modname)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise CodecError(f"cannot resolve class {path!r}: {exc}") from exc
    if not isinstance(obj, type):
        raise CodecError(f"{path!r} is not a class")
    return obj


def _pack_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _pack_array(arr: np.ndarray) -> dict[str, Any]:
    if arr.dtype.kind not in _NUMPY_KINDS:
        raise CodecError(f"unsupported ndarray dtype {arr.dtype!r}")
    return {
        _TAG: "nd",
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": _pack_bytes(np.ascontiguousarray(arr).tobytes()),
    }


def _pack(obj: Any) -> Any:
    # numpy scalars first: np.float64 subclasses float and would otherwise
    # lose its dtype through the primitive branch
    if isinstance(obj, np.ndarray):
        return _pack_array(obj)
    if isinstance(obj, np.generic):
        if obj.dtype.kind not in _NUMPY_KINDS:
            raise CodecError(f"unsupported numpy scalar dtype {obj.dtype!r}")
        return {
            _TAG: "npv",
            "dtype": obj.dtype.str,
            "data": _pack_bytes(obj.tobytes()),
        }
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, bytes):
        return {_TAG: "bytes", "data": _pack_bytes(obj)}
    if isinstance(obj, enum.Enum):
        return {_TAG: "enum", "cls": _classpath(type(obj)), "name": obj.name}
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "v": [_pack(v) for v in obj]}
    if isinstance(obj, list):
        return [_pack(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        raise CodecError("sets have no deterministic order; not cacheable")
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and _TAG not in obj:
            return {k: _pack(v) for k, v in obj.items()}
        return {_TAG: "dict", "v": [[_pack(k), _pack(v)] for k, v in obj.items()]}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _pack(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.init
        }
        return {_TAG: "dc", "cls": _classpath(type(obj)), "fields": fields}
    raise CodecError(f"cannot serialize {type(obj).__name__} value")


def _unpack(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [_unpack(v) for v in obj]
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag is None:
            return {k: _unpack(v) for k, v in obj.items()}
        if tag == "tuple":
            return tuple(_unpack(v) for v in obj["v"])
        if tag == "dict":
            return {_unpack(k): _unpack(v) for k, v in obj["v"]}
        if tag == "bytes":
            return base64.b64decode(obj["data"])
        if tag == "enum":
            cls = _resolve_class(obj["cls"])
            if not issubclass(cls, enum.Enum):
                raise CodecError(f"{obj['cls']!r} is not an Enum")
            return cls[obj["name"]]
        if tag == "nd":
            arr = np.frombuffer(
                base64.b64decode(obj["data"]), dtype=np.dtype(obj["dtype"])
            )
            return arr.reshape(obj["shape"]).copy()
        if tag == "npv":
            dtype = np.dtype(obj["dtype"])
            return np.frombuffer(base64.b64decode(obj["data"]), dtype=dtype)[0]
        if tag == "dc":
            cls = _resolve_class(obj["cls"])
            if not dataclasses.is_dataclass(cls):
                raise CodecError(f"{obj['cls']!r} is not a dataclass")
            return cls(**{k: _unpack(v) for k, v in obj["fields"].items()})
        raise CodecError(f"unknown tag {tag!r}")
    raise CodecError(f"cannot deserialize {type(obj).__name__} node")


def encode(obj: Any) -> bytes:
    """Serialize ``obj``; raises :class:`CodecError` for unsupported values."""
    try:
        envelope = {"codec": CODEC_VERSION, "payload": _pack(obj)}
        return json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError, OverflowError) as exc:
        if isinstance(exc, CodecError):
            raise
        raise CodecError(str(exc)) from exc


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`; raises :class:`CodecError` for anything
    malformed, truncated, or written by a different codec version."""
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"unreadable cache payload: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("codec") != CODEC_VERSION:
        raise CodecError("missing or incompatible codec version")
    if "payload" not in envelope:
        raise CodecError("envelope has no payload")
    try:
        return _unpack(envelope["payload"])
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, CodecError):
            raise
        raise CodecError(str(exc)) from exc
