"""Disk-backed, content-addressed store for sweep-cell results.

Layout: one file per logical cell, named by the cell id
(``<root>/<id[:2]>/<id>.json``), each holding a codec envelope of
``{"content_key": ..., "result": ...}``.  Reads validate the stored
content key against the probe's; a mismatch means the code fingerprint or
repro version moved underneath the result — counted as an
*invalidation* and served as a miss, after which the recompute's
:meth:`ResultCache.put` overwrites the stale file in place.

Writes are crash- and concurrency-safe under the fork pool and under
concurrent CLI runs: the envelope is written to a temp file in the same
directory and :func:`os.replace`-d over the target, so readers only ever
see complete files and the last writer wins.  Anything unreadable —
truncated, corrupt, foreign codec version — is a miss, never an error;
undecodable files are additionally quarantined to ``<name>.corrupt`` so
repeated probes stop paying for (and re-counting) the same bad entry
while the bytes stay on disk for inspection.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Optional, Tuple

from .. import obs
from .codec import CodecError, decode, encode
from .keys import CacheKey

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]

#: environment override for the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/cells``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro/cells").expanduser()


@dataclass
class CacheStats:
    """Probe/write counters for one :class:`ResultCache` instance.

    ``invalidations`` and ``corrupt`` are subsets of ``misses``;
    ``uncacheable`` counts results the codec refused to serialize.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    corrupt: int = 0
    writes: int = 0
    uncacheable: int = 0

    def merge(self, other: "CacheStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        out = f"{self.hits} hits / {self.misses} misses"
        if self.invalidations:
            out += f" ({self.invalidations} invalidated)"
        if self.corrupt:
            out += f" ({self.corrupt} corrupt)"
        return out


class ResultCache:
    """Content-addressed result cache rooted at one directory.

    Instances are cheap (a path plus counters) and picklable, so they can
    ride into pool workers; counters are per-instance and are *not*
    shared across processes — callers who fan out collect each worker's
    :attr:`stats` snapshot and merge.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, key: CacheKey) -> Path:
        return self.root / key.cell_id[:2] / f"{key.cell_id}.json"

    # ------------------------------------------------------------------ #
    def get(self, key: Optional[CacheKey]) -> Tuple[bool, Any]:
        """``(True, result)`` on a valid hit, else ``(False, None)``.

        ``None`` keys (uncacheable cells) are misses.  Unreadable files
        and stale content keys are misses too — never exceptions.
        """
        if key is None:
            self.stats.misses += 1
            obs.counter("cache.misses")
            return False, None
        with obs.span("cache.get", cell=key.cell_id[:12]):
            path = self.path_for(key)
            try:
                data = path.read_bytes()
            except OSError:
                self.stats.misses += 1
                obs.counter("cache.misses")
                return False, None
            try:
                envelope = decode(data)
                stored_key = envelope["content_key"]
                result = envelope["result"]
            except (CodecError, KeyError, TypeError):
                self.stats.corrupt += 1
                self.stats.misses += 1
                obs.counter("cache.misses")
                obs.counter("cache.corrupt")
                # quarantine the undecodable file so the next probe is a
                # plain miss and the evidence survives for postmortems
                try:
                    os.replace(path, path.with_name(path.name + ".corrupt"))
                except OSError:  # pragma: no cover - racing readers
                    pass
                return False, None
            if stored_key != key.content_key:
                self.stats.invalidations += 1
                self.stats.misses += 1
                obs.counter("cache.misses")
                return False, None
            self.stats.hits += 1
            obs.counter("cache.hits")
            return True, result

    def put(self, key: Optional[CacheKey], result: Any) -> bool:
        """Atomically persist ``result``; False when it cannot be cached."""
        if key is None:
            return False
        try:
            data = encode({"content_key": key.content_key, "result": result})
        except CodecError:
            self.stats.uncacheable += 1
            return False
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            return False
        self.stats.writes += 1
        obs.counter("cache.writes")
        return True

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultCache({str(self.root)!r}, {self.stats.summary()})"
