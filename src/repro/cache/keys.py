"""Cache-key derivation for sweep cells.

Two digests identify a cached result:

* the **cell id** — *what* was asked for: the cell function's qualified
  name, its canonicalized kwargs, the derived seed, and any extra
  addressing context (sweep name, cell key).  This names the cache file,
  so one logical cell occupies one slot and recomputes overwrite their
  stale predecessor instead of accumulating garbage.
* the **content key** — *what the answer depends on*: the cell id plus
  the code fingerprint of the cell module's import closure
  (:func:`~repro.cache.fingerprint.closure_fingerprint`) and the repro
  version.  It is stored inside the file and compared on read; a mismatch
  is an *invalidation* (the code moved underneath the result), served as
  a miss.

Canonicalization is deliberately strict: values without an obviously
stable textual form raise :class:`CacheKeyError`, and the sweep simply
runs that cell uncached rather than risk a false hit.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

import numpy as np

from .fingerprint import ROOT_PACKAGE, closure_fingerprint

__all__ = ["CacheKey", "CacheKeyError", "canonicalize", "cell_keys"]


class CacheKeyError(ValueError):
    """Raised for inputs that have no canonical (stable) encoding."""


@dataclass(frozen=True)
class CacheKey:
    """Addressing pair for one sweep cell (see module docstring)."""

    cell_id: str
    content_key: str


def canonicalize(value: Any) -> str:
    """Deterministic textual form of a kwargs value.

    Stable across processes and Python versions for the plain-data types
    hermetic cells are built from; anything else raises
    :class:`CacheKeyError` (never fall back to ``repr`` of an object —
    addresses must not contain ``id()``s).
    """
    # numpy scalars before primitives: np.float64 subclasses float, and its
    # canonical form must stay dtype-qualified and numpy-version-independent
    if isinstance(value, np.generic):
        return f"npv:{value.dtype.str}:{value.tobytes().hex()}"
    if value is None or isinstance(value, (bool, int)):
        return repr(value)
    if isinstance(value, float):
        # repr is the shortest round-trip form; distinguishes 1 from 1.0
        return repr(value)
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, bytes):
        return f"bytes:{hashlib.sha256(value).hexdigest()}"
    if isinstance(value, enum.Enum):
        cls = type(value)
        return f"enum:{cls.__module__}.{cls.__qualname__}.{value.name}"
    if isinstance(value, np.ndarray):
        return (
            f"nd:{value.dtype.str}:{value.shape}:"
            f"{hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()}"
        )
    if isinstance(value, (list, tuple)):
        open_, close = ("[", "]") if isinstance(value, list) else ("(", ")")
        return open_ + ",".join(canonicalize(v) for v in value) + close
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonicalize(v) for v in value)) + "}"
    if isinstance(value, Mapping):
        items = sorted(
            (canonicalize(k), canonicalize(v)) for k, v in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = ",".join(
            f"{f.name}={canonicalize(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"dc:{cls.__module__}.{cls.__qualname__}({fields})"
    raise CacheKeyError(
        f"no canonical form for {type(value).__name__} value {value!r:.80}"
    )


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x1e")  # record separator: no concatenation ambiguity
    return h.hexdigest()


def cell_keys(
    fn: Callable[..., Any],
    kwargs: Mapping[str, Any],
    *,
    seed: Optional[int] = None,
    extra: Any = None,
    scenario: Any = None,
    root: str = ROOT_PACKAGE,
) -> CacheKey:
    """Derive the :class:`CacheKey` for one cell invocation.

    ``seed`` is the cell's *derived* seed (``SweepSpec.cell_seed``), kept
    separate from kwargs so sweeps that inject it and sweeps that pass it
    explicitly address the same way.  ``extra`` carries additional
    identity (sweep name, cell key) and must canonicalize like kwargs.
    ``scenario`` is anything with a stable ``digest()`` (a
    :class:`~repro.scenarios.ScenarioSpec`); its digest is folded into the
    *content* key, so editing any scenario field invalidates exactly the
    cells that scenario describes.  Raises :class:`CacheKeyError` when any
    input has no stable form.
    """
    cell_id = _digest(
        "cell-id",
        f"{fn.__module__}.{fn.__qualname__}",
        canonicalize(dict(kwargs)),
        canonicalize(seed),
        canonicalize(extra),
    )
    from .. import __version__

    content_parts = [
        "content",
        cell_id,
        closure_fingerprint(fn.__module__, root=root),
        __version__,
    ]
    if scenario is not None:
        content_parts.append(f"scenario:{scenario.digest()}")
    content_key = _digest(*content_parts)
    return CacheKey(cell_id=cell_id, content_key=content_key)
