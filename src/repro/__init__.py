"""repro — Application-Attuned Memory Management for Containerized HPC Workflows.

A full-system reproduction (IPDPS 2024) built on a discrete-event
simulation of tiered-memory HPC clusters.  Public entry points:

* :class:`~repro.envs.Environment` / :func:`~repro.envs.make_environment`
  — the four evaluation environments (IE/CBE/TME/IMME).
* :class:`~repro.core.TieredMemoryManager` — the paper's contribution
  (Algorithm 1 allocation, Algorithm 2 replacement, intelligent movement).
* :class:`~repro.core.TieredMemoryClient` — the Table I
  ``allocate_TM``/``free_TM`` API.
* :mod:`~repro.workflows` — the DL/DM/DC/SC evaluation workloads,
  workflow DAGs, and ensembles.
* :mod:`~repro.experiments` — one harness per paper table/figure.
* :mod:`~repro.scenarios` — the declarative scenario layer: typed,
  serializable :class:`~repro.scenarios.ScenarioSpec` specs naming every
  experiment, resolved through the scenario ``REGISTRY``.
* :mod:`~repro.resilience` — supervised sweep execution: retries with
  deterministic backoff, the crash-safe run journal behind ``--resume``,
  and the runtime invariant checker.
"""

from importlib import import_module
from typing import TYPE_CHECKING

__version__ = "1.9.0"

_EXPORTS = {
    # environments
    "EnvKind": "repro.envs",
    "Environment": "repro.envs",
    "EnvironmentConfig": "repro.envs",
    "make_environment": "repro.envs",
    # core contribution
    "MemFlag": "repro.core",
    "TieredMemoryManager": "repro.core",
    "TieredMemoryClient": "repro.core",
    "TierAllocator": "repro.core",
    "PageReplacementPolicy": "repro.core",
    "IntelligentPageMovement": "repro.core",
    "FlagPredictor": "repro.core",
    "SharedMemoryManager": "repro.core",
    # memory substrate
    "TierKind": "repro.memory",
    "TierSpec": "repro.memory",
    "PageSet": "repro.memory",
    "NodeMemorySystem": "repro.memory",
    "MemoryTopology": "repro.memory",
    "default_tier_specs": "repro.memory",
    # workflows
    "TaskSpec": "repro.workflows",
    "TaskPhase": "repro.workflows",
    "Workflow": "repro.workflows",
    "WorkloadClass": "repro.workflows",
    "paper_workload_suite": "repro.workflows",
    "paper_batch": "repro.workflows",
    # scheduler / runtime
    "SlurmScheduler": "repro.scheduler",
    "NodeAgent": "repro.runtime",
    "WorkflowManager": "repro.wms",
    # result cache
    "CacheStats": "repro.cache",
    "ResultCache": "repro.cache",
    # fault injection
    "FaultInjector": "repro.faults",
    "FaultKind": "repro.faults",
    "FaultSchedule": "repro.faults",
    "FaultSpec": "repro.faults",
    # scenario layer
    "ScenarioFamily": "repro.scenarios",
    "ScenarioSpec": "repro.scenarios",
    "TierSizing": "repro.scenarios",
    "WorkloadSpec": "repro.scenarios",
    "load_scenario": "repro.scenarios",
    "realize": "repro.scenarios",
    "run_scenario": "repro.scenarios",
    # resilience
    "CellFailure": "repro.resilience",
    "InvariantChecker": "repro.resilience",
    "InvariantViolation": "repro.resilience",
    "RetryPolicy": "repro.resilience",
    "RunJournal": "repro.resilience",
    "SweepFailure": "repro.resilience",
    "supervised_map": "repro.resilience",
    # metrics
    "MetricsRegistry": "repro.metrics",
    "TaskMetrics": "repro.metrics",
    "FaultStats": "repro.metrics",
    # telemetry
    "Telemetry": "repro.obs",
    "TelemetryRecord": "repro.obs",
    # sim
    "SimulationEngine": "repro.sim",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static typing only
    from .cache import CacheStats, ResultCache  # noqa: F401
    from .core import (  # noqa: F401
        FlagPredictor,
        IntelligentPageMovement,
        MemFlag,
        PageReplacementPolicy,
        SharedMemoryManager,
        TierAllocator,
        TieredMemoryClient,
        TieredMemoryManager,
    )
    from .envs import EnvKind, Environment, EnvironmentConfig, make_environment  # noqa: F401
    from .faults import FaultInjector, FaultKind, FaultSchedule, FaultSpec  # noqa: F401
    from .memory import (  # noqa: F401
        MemoryTopology,
        NodeMemorySystem,
        PageSet,
        TierKind,
        TierSpec,
        default_tier_specs,
    )
    from .metrics import FaultStats, MetricsRegistry, TaskMetrics  # noqa: F401
    from .obs import Telemetry, TelemetryRecord  # noqa: F401
    from .resilience import (  # noqa: F401
        CellFailure,
        InvariantChecker,
        InvariantViolation,
        RetryPolicy,
        RunJournal,
        SweepFailure,
        supervised_map,
    )
    from .runtime import NodeAgent  # noqa: F401
    from .scenarios import (  # noqa: F401
        ScenarioFamily,
        ScenarioSpec,
        TierSizing,
        WorkloadSpec,
        load_scenario,
        realize,
        run_scenario,
    )
    from .scheduler import SlurmScheduler  # noqa: F401
    from .sim import SimulationEngine  # noqa: F401
    from .wms import WorkflowManager  # noqa: F401
    from .workflows import (  # noqa: F401
        TaskPhase,
        TaskSpec,
        Workflow,
        WorkloadClass,
        paper_batch,
        paper_workload_suite,
    )
