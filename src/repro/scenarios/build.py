"""Realizing scenarios: spec -> workload -> sized environment -> metrics.

This module is the only place a :class:`~repro.scenarios.spec.ScenarioSpec`
turns into live objects.  The pipeline is deterministic end to end:

1. :func:`~repro.scenarios.workloads.build_workload` rebuilds the task
   batch (and arrival times) from ``(spec.workload, spec.seed)``;
2. :func:`environment_config` sizes the tiers against the workload's
   aggregate bytes through the one shared
   :func:`repro.memory.tiers.scaled_tier_capacities`;
3. :func:`realize` wires the cluster (attaching any named fault
   schedule) and :meth:`RealizedScenario.execute` runs it to completion.

:func:`run_scenario` is the generic harness on top — it executes any
scenario and condenses the metrics into a :class:`ScenarioOutcome`, which
is what ``python -m repro scenarios run`` prints and caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..envs.environments import EnvKind, Environment, EnvironmentConfig
from ..faults.spec import FaultKind, FaultSchedule, FaultSpec
from ..memory.tiers import PMEM, scaled_tier_capacities
from ..metrics.collector import MetricsRegistry
from ..service.metrics import ServiceReport
from ..service.run import serve
from ..service.stream import TaskStream
from ..util.validation import require
from ..workflows.task import TaskSpec
from .policies import resolve_policy
from .spec import ScenarioSpec
from .workloads import CLASS_ORDER, build_workload

__all__ = [
    "FAULT_SCHEDULES",
    "RealizedScenario",
    "ScenarioOutcome",
    "default_chaos_schedule",
    "environment_config",
    "environment_for_tasks",
    "realize",
    "run_scenario",
    "run_service",
    "service_sizing_tasks",
    "workload_totals",
]


# --------------------------------------------------------------------------- #
# named fault schedules
# --------------------------------------------------------------------------- #

def default_chaos_schedule(n_nodes: int) -> FaultSchedule:
    """The fixed disturbance scenario ext-resilience replays per env."""
    return FaultSchedule(
        [
            # registry outage while the first pulls are in flight
            FaultSpec(FaultKind.IMAGE_PULL_FAILURE, time=0.0, duration=30.0, severity=0.6),
            # one early task limps at 40% speed for a while
            FaultSpec(FaultKind.TASK_STRAGGLER, time=20.0, duration=40.0, severity=0.4),
            # a PMem DIMM on node 0 drops to half bandwidth
            FaultSpec(
                FaultKind.TIER_DEGRADED, time=35.0, node=0, tier=PMEM,
                duration=30.0, severity=0.5,
            ),
            # the last node dies mid-run and comes back 45 s later
            FaultSpec(FaultKind.NODE_CRASH, time=50.0, node=n_nodes - 1, duration=45.0),
            # node 0 loses its CXL link: pages evacuate, staging degrades
            FaultSpec(FaultKind.CXL_LINK_FLAP, time=140.0, node=0, duration=20.0),
        ]
    )


#: name -> (n_nodes -> FaultSchedule); what ``ScenarioSpec.fault_schedule``
#: resolves against
FAULT_SCHEDULES: Dict[str, Callable[[int], FaultSchedule]] = {
    "default-chaos": default_chaos_schedule,
}


# --------------------------------------------------------------------------- #
# sizing
# --------------------------------------------------------------------------- #

def workload_totals(tasks: Sequence[TaskSpec]) -> Dict[str, int]:
    """Aggregate byte counts per sizing basis."""
    return {
        "max-footprint": sum(t.max_footprint for t in tasks),
        "footprint": sum(t.footprint for t in tasks),
        "wss": sum(t.wss for t in tasks),
    }


def environment_config(
    spec: ScenarioSpec,
    tasks: Sequence[TaskSpec],
    *,
    policy_factory: Optional[Callable] = None,
) -> EnvironmentConfig:
    """Size and describe the cluster ``spec`` asks for, given its workload.

    ``policy_factory`` is an unserializable escape hatch for library users
    experimenting with custom policies; registered scenarios use
    ``spec.policy`` names instead.
    """
    sizing = spec.sizing
    tiered = spec.env in (EnvKind.TME, EnvKind.IMME)
    total = workload_totals(tasks)[sizing.basis]
    dram, pmem, cxl = scaled_tier_capacities(
        tiered=tiered,
        chunk_size=spec.chunk_size,
        total_footprint=total,
        dram_fraction=sizing.dram_fraction,
        dram_per_node=sizing.dram_per_node,
        n_nodes=spec.n_nodes,
        pmem_capacity=sizing.pmem_capacity,
        cxl_capacity=sizing.cxl_capacity,
        floor_chunks=sizing.floor_chunks,
    )
    if policy_factory is None and spec.policy is not None:
        policy_factory = resolve_policy(spec.policy)
    stage = spec.stage_images
    if stage is None:
        stage = spec.env is EnvKind.IMME
    return EnvironmentConfig(
        kind=spec.env,
        n_nodes=spec.n_nodes,
        cores_per_node=spec.cores_per_node,
        dram_capacity=dram,
        pmem_capacity=pmem,
        cxl_capacity=cxl,
        chunk_size=spec.chunk_size,
        daemon_interval=spec.daemon_interval,
        cxl_fraction=spec.cxl_fraction,
        policy_factory=policy_factory,
        stage_images=stage,
    )


def environment_for_tasks(
    spec: ScenarioSpec,
    tasks: Sequence[TaskSpec],
    *,
    policy_factory: Optional[Callable] = None,
) -> Environment:
    """Build (and fault-arm) the environment for an already-built workload."""
    env = Environment(environment_config(spec, tasks, policy_factory=policy_factory))
    if spec.fault_schedule is not None:
        try:
            schedule = FAULT_SCHEDULES[spec.fault_schedule](spec.n_nodes)
        except KeyError:
            raise KeyError(
                f"unknown fault schedule {spec.fault_schedule!r}; "
                f"registered: {sorted(FAULT_SCHEDULES)}"
            ) from None
        env.inject_faults(schedule, seed=spec.fault_seed)
    return env


# --------------------------------------------------------------------------- #
# realization & the generic runner
# --------------------------------------------------------------------------- #

@dataclass
class RealizedScenario:
    """A spec turned live: the wired cluster plus its workload."""

    spec: ScenarioSpec
    env: Environment
    tasks: List[TaskSpec]
    arrivals: Optional[List[float]] = None

    def execute(self) -> MetricsRegistry:
        """Run to completion (closed batch or open arrivals) and stop."""
        if self.arrivals is not None:
            metrics = self.env.run_arrivals(
                self.tasks, self.arrivals, max_time=self.spec.max_time
            )
        else:
            metrics = self.env.run_batch(
                self.tasks, exclusive=self.spec.exclusive, max_time=self.spec.max_time
            )
        self.env.stop()
        return metrics

    def serve(self, *, live: Optional[str] = None) -> ServiceReport:
        """Drive the scenario as an open-loop service and stop.

        The scenario's workload (if any) becomes the *background*: its
        tasks are submitted at their batch/arrival times while the
        service stream arrives on top.  ``live`` names a directory for
        the streaming window metrics (``live.ndjson`` + ``metrics.prom``;
        see :class:`~repro.obs.insight.LiveMetricsWriter`).
        """
        require(
            self.spec.service is not None,
            f"scenario {self.spec.name!r} has no service section",
        )
        report = serve(
            self.env,
            self.spec.service,
            scale=self.spec.workload.scale,
            seed=self.spec.seed,
            scenario=self.spec.name,
            background=self.tasks,
            bg_arrivals=self.arrivals,
            max_time=self.spec.max_time,
            live=live,
        )
        self.env.stop()
        return report


def service_sizing_tasks(spec: ScenarioSpec) -> List[TaskSpec]:
    """Representative resident set for sizing a *service* scenario's tiers.

    An open-loop stream has no fixed task list to size against, so the
    tiers are provisioned for the background workload plus
    ``sizing_copies`` (a service param, default 8) concurrently-resident
    copies of each stream class's base task.  Raising ``sizing_copies``
    provisions for a deeper resident set; lowering it makes the memory
    pressure the experiment's independent variable.
    """
    svc = spec.service
    require(svc is not None, "service_sizing_tasks needs a service scenario")
    copies = int(svc.param("sizing_copies", 8))
    bases = TaskStream(svc.classes, spec.workload.scale, spec.seed).bases()
    return [base for base in bases for _ in range(max(1, copies))]


def realize(
    spec: ScenarioSpec, *, policy_factory: Optional[Callable] = None
) -> RealizedScenario:
    """Build the workload and environment for ``spec`` without running it."""
    with obs.span("scenario.realize", scenario=spec.name, seed=spec.seed):
        tasks, arrivals = build_workload(spec.workload, spec.seed)
        sizing_tasks = list(tasks)
        if spec.service is not None:
            sizing_tasks.extend(service_sizing_tasks(spec))
        env = environment_for_tasks(spec, sizing_tasks, policy_factory=policy_factory)
    return RealizedScenario(spec=spec, env=env, tasks=tasks, arrivals=arrivals)


@dataclass(frozen=True)
class ScenarioOutcome:
    """Condensed, cacheable result of one generic scenario run."""

    scenario: str
    digest: str
    seed: int
    makespan: float
    completed: int
    failed: int
    mean_startup: float
    #: (class name, mean execution time) for classes that completed work
    mean_exec: Tuple[Tuple[str, float], ...] = ()
    notes: Tuple[str, ...] = ()
    #: (metric name, p50, p95, p99) for each latency metric — the tail
    #: view the mean columns hide (defaults keep pre-1.4 cached outcomes
    #: decodable)
    latency_percentiles: Tuple[Tuple[str, float, float, float], ...] = ()

    def row(self) -> List[float]:
        return [self.makespan, float(self.completed), float(self.failed)]

    def percentile(self, metric: str, q: int) -> float:
        """Look up one recorded percentile (q in {50, 95, 99}); 0 when the
        outcome predates percentile recording or nothing completed."""
        for name, p50, p95, p99 in self.latency_percentiles:
            if name == metric:
                return {50: p50, 95: p95, 99: p99}[q]
        return 0.0


def run_service(spec: ScenarioSpec, *, live: Optional[str] = None) -> ServiceReport:
    """Realize and serve one service scenario (the service CLI's work unit).

    Hermetic and picklable, like :func:`run_scenario`: safe as a sweep
    cell in any worker process, and the returned
    :class:`~repro.service.metrics.ServiceReport` rides the result-cache
    codec unchanged.  ``live`` streams window metrics to a directory
    (``scenarios serve --live``).
    """
    require(spec.service is not None, f"scenario {spec.name!r} has no service section")
    return realize(spec).serve(live=live)


def run_scenario(spec: ScenarioSpec) -> ScenarioOutcome:
    """Realize, execute, and summarize one scenario (the CLI's work unit).

    Hermetic and picklable: safe as a sweep cell in any worker process.
    """
    realized = realize(spec)
    metrics = realized.execute()
    per_class = []
    for cls in CLASS_ORDER:
        done = [t.execution_time for t in metrics.completed() if t.wclass == cls.name]
        if done:
            per_class.append((cls.name, float(np.mean(done))))
    completed = len(metrics.completed())
    percentiles = tuple(
        (metric, *metrics.percentiles(metric))
        for metric in MetricsRegistry.LATENCY_METRICS
    ) if completed else ()
    return ScenarioOutcome(
        scenario=spec.name,
        digest=spec.digest(),
        seed=spec.seed,
        makespan=metrics.makespan() if completed else 0.0,
        completed=completed,
        failed=len(metrics.failed()),
        mean_startup=metrics.mean_startup_time(),
        mean_exec=tuple(per_class),
        latency_percentiles=percentiles,
    )
