"""Typed, versioned scenario specifications.

A :class:`ScenarioSpec` is the one declarative description of an
experiment cell: which environment kind to stand up, how its tiers are
sized relative to the workload, which workload runs on it, and every knob
the paper's evaluation grid sweeps (CXL fraction, allocation policy,
fault schedule, arrival process, ...).  Everything the spec references by
behaviour — allocation policies, workload builders, fault schedules — is
named, not embedded, so a spec serializes losslessly to JSON and TOML and
hashes to a stable :meth:`~ScenarioSpec.digest` that the result cache
folds into its content keys.

The spec is deliberately *plain data*: frozen dataclasses of primitives,
tuples, and enum names.  Turning one into a live cluster is the job of
:mod:`repro.scenarios.build`; grouping related specs into a paper figure
is the job of :class:`ScenarioFamily` and :mod:`repro.scenarios.paper`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Tuple, Union

from ..envs.environments import EnvKind
from ..service.spec import ServiceSpec
from ..util.units import MiB
from ..util.validation import check_positive, require

__all__ = [
    "SPEC_VERSION",
    "DEFAULT_SCALE",
    "DEFAULT_CHUNK",
    "ParamValue",
    "WorkloadSpec",
    "TierSizing",
    "ScenarioSpec",
    "ScenarioFamily",
]

#: bump when the spec schema changes incompatibly; stored in every
#: serialized spec and mixed into every digest
SPEC_VERSION = 1

#: default memory scale relative to the paper's testbed sizes
DEFAULT_SCALE = 1.0 / 64.0
#: default chunk size for scaled-down runs (4 MiB at full scale)
DEFAULT_CHUNK = MiB(1)

#: the only value types allowed in free-form workload params — everything
#: a TOML table can represent losslessly
ParamValue = Union[bool, int, float, str]


def _pairs(mapping: "Mapping[str, Any] | Tuple[Tuple[str, Any], ...]") -> tuple:
    """Normalise a mapping (or pair tuple) into a sorted pair tuple, the
    canonical immutable form stored on specs."""
    items = mapping.items() if isinstance(mapping, Mapping) else mapping
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class WorkloadSpec:
    """What runs: a named workload builder plus its plain-data arguments.

    ``source`` keys into :data:`repro.scenarios.workloads.WORKLOAD_SOURCES`;
    the dedicated fields cover the common builders (class mixes, the
    Fig. 10/11 paper batch, per-class ensembles) and ``params`` carries
    source-specific extras (``request_extra``, ``input_bytes``, ...).
    """

    source: str = "colocated-mix"
    scale: float = DEFAULT_SCALE
    #: (class name, instance count) pairs for mix-style sources
    instances_per_class: Tuple[Tuple[str, int], ...] = ()
    #: total batch size for the paper-mix source
    total_instances: int = 0
    #: workload class for single-class sources
    wclass: str = ""
    #: ensemble size for single-class sources
    instances: int = 0
    #: source-specific extras as (name, value) pairs
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        require(bool(self.source), "workload source must be named")
        check_positive(self.scale, "scale")
        object.__setattr__(self, "instances_per_class", _pairs(self.instances_per_class))
        object.__setattr__(self, "params", _pairs(self.params))

    def mix(self) -> dict:
        """``instances_per_class`` as a ``{WorkloadClass: count}`` dict."""
        from ..workflows.task import WorkloadClass

        return {WorkloadClass[name]: int(n) for name, n in self.instances_per_class}

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class TierSizing:
    """How the environment's tiers are sized relative to the workload.

    DRAM resolves in priority order — ``dram_per_node`` (fixed hardware)
    then ``dram_fraction`` of the workload's aggregate ``basis`` bytes
    split across the cluster — mirroring
    :func:`repro.memory.tiers.scaled_tier_capacities`, which is the single
    implementation.  The Ideal Environment's headroom sizing is a fraction
    > 1 (nothing ever swaps).  ``pmem_capacity``/``cxl_capacity`` of 0
    select the paper's per-node provisioning ratios for tiered kinds.
    """

    dram_fraction: Optional[float] = None
    dram_per_node: Optional[int] = None
    #: which per-task byte count the fractions apply to
    basis: str = "max-footprint"  # or "footprint" | "wss"
    pmem_capacity: int = 0
    cxl_capacity: int = 0
    floor_chunks: int = 16

    _BASES = ("max-footprint", "footprint", "wss")

    def __post_init__(self) -> None:
        require(self.basis in self._BASES, f"sizing basis must be one of {self._BASES}")
        if self.dram_fraction is not None:
            check_positive(self.dram_fraction, "dram_fraction")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described experiment cell (see module docstring)."""

    name: str
    env: EnvKind
    workload: WorkloadSpec = WorkloadSpec()
    sizing: TierSizing = TierSizing(dram_fraction=0.35)
    n_nodes: int = 1
    cores_per_node: int = 64
    chunk_size: int = DEFAULT_CHUNK
    daemon_interval: float = 1.0
    seed: int = 0
    #: TME: force this fraction of each allocation onto CXL (Fig. 6)
    cxl_fraction: Optional[float] = None
    #: named allocation policy (see :mod:`repro.scenarios.policies`);
    #: ``None`` keeps the environment kind's default
    policy: Optional[str] = None
    #: override IMME's image staging (``None`` = the kind's default)
    stage_images: Optional[bool] = None
    #: named fault schedule (see :data:`repro.scenarios.build.FAULT_SCHEDULES`)
    fault_schedule: Optional[str] = None
    fault_seed: int = 0
    #: bare-metal style whole-node allocations (§II-B)
    exclusive: bool = False
    #: steady-state service mode: when set, :func:`repro.scenarios.build`
    #: drives the scenario as an open-loop service (the workload becomes
    #: the *background*; the service stream arrives on top of it)
    service: Optional[ServiceSpec] = None
    max_time: float = 1e7
    spec_version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        require(bool(self.name), "scenario name must be non-empty")
        check_positive(self.n_nodes, "n_nodes")
        check_positive(self.cores_per_node, "cores_per_node")
        check_positive(self.chunk_size, "chunk_size")
        require(
            self.spec_version == SPEC_VERSION,
            f"unsupported scenario spec version {self.spec_version} "
            f"(this build reads version {SPEC_VERSION})",
        )

    # ------------------------------------------------------------------ #
    @property
    def member(self) -> str:
        """The within-family member key (``"fig05/IE"`` → ``"IE"``)."""
        return self.name.split("/", 1)[1] if "/" in self.name else self.name

    def digest(self) -> str:
        """Stable content hash of every field, identical across processes.

        Built on :func:`repro.cache.keys.canonicalize`, so any edit to any
        field — including nested workload/sizing fields — produces a new
        digest, and byte-equal specs always collide.  The result cache
        mixes this into cell content keys so *scenario* edits invalidate
        exactly the cells they describe.
        """
        from ..cache.keys import canonicalize

        h = hashlib.sha256()
        h.update(b"scenario\x1e")
        h.update(canonicalize(self).encode("utf-8"))
        return h.hexdigest()

    def evolve(self, **changes: Any) -> "ScenarioSpec":
        """:func:`dataclasses.replace` with a fluent name."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ScenarioFamily:
    """A named group of scenarios regenerating one figure or experiment."""

    name: str
    description: str
    scenarios: Tuple[ScenarioSpec, ...]

    def __post_init__(self) -> None:
        require(bool(self.scenarios), f"family {self.name!r} has no scenarios")
        members = [s.name for s in self.scenarios]
        require(len(set(members)) == len(members), f"duplicate scenario names in {self.name!r}")
        for s in self.scenarios:
            require(
                s.name == self.name or s.name.startswith(f"{self.name}/"),
                f"scenario {s.name!r} does not belong to family {self.name!r}",
            )

    def get(self, member: str) -> ScenarioSpec:
        for s in self.scenarios:
            if s.name == member or s.member == member:
                return s
        raise KeyError(f"no scenario {member!r} in family {self.name!r}")

    def digest(self) -> str:
        """Order-sensitive hash over every member's digest."""
        h = hashlib.sha256()
        h.update(b"scenario-family\x1e")
        for s in self.scenarios:
            h.update(s.digest().encode("ascii"))
            h.update(b"\x1e")
        return h.hexdigest()

    def __iter__(self):
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)
