"""The scenario registry: every experiment the repo can run, by name.

A :class:`ScenarioRegistry` maps family names (``"fig05"``,
``"ext-resilience"``) to :class:`~repro.scenarios.spec.ScenarioFamily`
objects and resolves dotted member references (``"fig05/IE"``) to
individual specs.  :data:`REGISTRY` is the process-wide default that
:mod:`repro.scenarios.paper` populates at import time with one family per
paper figure and extension experiment; the CLI, the experiment harnesses,
and the cache all look scenarios up here.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from ..util.validation import require
from .spec import ScenarioFamily, ScenarioSpec

__all__ = ["REGISTRY", "ScenarioRegistry", "family", "register_family", "scenario"]


class ScenarioRegistry:
    """A name -> :class:`ScenarioFamily` mapping with member resolution."""

    def __init__(self) -> None:
        self._families: Dict[str, ScenarioFamily] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, fam: ScenarioFamily) -> ScenarioFamily:
        require(
            fam.name not in self._families,
            f"scenario family {fam.name!r} is already registered",
        )
        self._families[fam.name] = fam
        return fam

    def register_builder(
        self, builder: Callable[[], ScenarioFamily]
    ) -> Callable[[], ScenarioFamily]:
        """Decorator form: register the family a zero-arg builder returns.

        The builder itself stays importable (harnesses call it with
        override kwargs), while its default output lands in the registry.
        """
        self.register(builder())
        return builder

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def family(self, name: str) -> ScenarioFamily:
        try:
            return self._families[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario family {name!r}; "
                f"registered families: {self.family_names()}"
            ) from None

    def scenario(self, ref: str) -> ScenarioSpec:
        """Resolve ``"family"`` (single-member) or ``"family/member"``."""
        if ref in self._families:
            fam = self._families[ref]
            if len(fam) == 1:
                return fam.scenarios[0]
            raise KeyError(
                f"{ref!r} is a family of {len(fam)}; pick a member: "
                f"{[s.name for s in fam]}"
            )
        if "/" in ref:
            fam_name, member = ref.split("/", 1)
            if fam_name in self._families:
                return self._families[fam_name].get(member)
        raise KeyError(
            f"unknown scenario {ref!r}; registered families: {self.family_names()}"
        )

    def resolve(self, ref: str) -> List[ScenarioSpec]:
        """``ref`` as a list of specs: a whole family or one member."""
        if ref in self._families:
            return list(self._families[ref].scenarios)
        return [self.scenario(ref)]

    # ------------------------------------------------------------------ #
    # enumeration
    # ------------------------------------------------------------------ #

    def family_names(self) -> List[str]:
        return sorted(self._families)

    def names(self) -> List[str]:
        """Every resolvable scenario name, family-sorted."""
        return [s.name for fam_name in self.family_names() for s in self._families[fam_name]]

    def __iter__(self) -> Iterator[ScenarioFamily]:
        return iter(self._families[name] for name in self.family_names())

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    # ------------------------------------------------------------------ #
    # self-check
    # ------------------------------------------------------------------ #

    def verify(self) -> List[str]:
        """Round-trip every registered scenario through both interchange
        forms and re-derive its digest; returns the verified names.

        Any drift — a spec that does not survive TOML or JSON, or whose
        digest is unstable — raises.  CI runs this on every push.
        """
        from .serialization import from_json, from_toml, to_json, to_toml

        verified: List[str] = []
        for fam in self:
            for spec in fam:
                for label, loads, dumps in (
                    ("TOML", from_toml, to_toml),
                    ("JSON", from_json, to_json),
                ):
                    back = loads(dumps(spec))
                    require(
                        back == spec,
                        f"{spec.name}: {label} round trip is lossy",
                    )
                    require(
                        back.digest() == spec.digest(),
                        f"{spec.name}: digest unstable across {label} round trip",
                    )
                verified.append(spec.name)
        return verified


#: the process-wide default registry (populated by ``repro.scenarios.paper``)
REGISTRY = ScenarioRegistry()


def register_family(builder: Callable[[], ScenarioFamily]):
    """Module-level decorator registering into :data:`REGISTRY`."""
    return REGISTRY.register_builder(builder)


def family(name: str) -> ScenarioFamily:
    """Look up a family in the default registry (importing the catalog)."""
    _ensure_catalog()
    return REGISTRY.family(name)


def scenario(ref: str) -> ScenarioSpec:
    """Look up one scenario in the default registry (importing the catalog)."""
    _ensure_catalog()
    return REGISTRY.scenario(ref)


_catalog_loaded = False


def _ensure_catalog() -> None:
    global _catalog_loaded
    if not _catalog_loaded:
        from . import paper  # noqa: F401  (import populates REGISTRY)

        _catalog_loaded = True
