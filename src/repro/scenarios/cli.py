"""``python -m repro scenarios ...`` — the scenario layer's command line.

Subcommands:

* ``list`` — every registered family and member, with digests,
* ``show <ref>`` — one scenario as TOML (what ``run`` would execute),
* ``run <name-or-file> [--jobs N]`` — run a registered family/member or a
  ``.toml``/``.json`` spec file and print the outcome table,
* ``verify`` — round-trip every registered scenario through both
  interchange forms (the CI gate).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from ..metrics.report import format_table
from .build import ScenarioOutcome, run_scenario
from .registry import REGISTRY, _ensure_catalog
from .serialization import load_scenario, to_toml
from .spec import ScenarioSpec

__all__ = ["main"]


def _resolve(ref: str) -> List[ScenarioSpec]:
    """A registry name (family or member) or a spec-file path, as specs."""
    if ref.endswith((".toml", ".json")) or Path(ref).is_file():
        return [load_scenario(ref)]
    return REGISTRY.resolve(ref)


def _cmd_list(_args: argparse.Namespace) -> int:
    for fam in REGISTRY:
        print(f"{fam.name}  [{len(fam)} scenario{'s' if len(fam) != 1 else ''}]")
        print(f"  {fam.description}")
        for spec in fam:
            print(f"    {spec.name:<40} {spec.env.name:<5} digest={spec.digest()[:12]}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(to_toml(REGISTRY.scenario(args.ref) if not Path(args.ref).is_file()
                  else load_scenario(args.ref)), end="")
    return 0


def _run_one(spec: ScenarioSpec) -> ScenarioOutcome:
    return run_scenario(spec)


def _cmd_run(args: argparse.Namespace) -> int:
    from .. import obs
    from ..parallel import map_ordered

    specs = _resolve(args.ref)
    telemetry = (
        obs.Telemetry(f"scenarios/{args.ref}", {"jobs": args.jobs})
        if args.telemetry
        else obs.NULL
    )
    with obs.session(telemetry):
        outcomes = map_ordered(_run_one, specs, jobs=args.jobs)
    rows = []
    for out in outcomes:
        rows.append(
            [out.scenario, out.makespan, float(out.completed), float(out.failed),
             out.mean_startup, out.percentile("execution_time", 50),
             out.percentile("execution_time", 95), out.percentile("execution_time", 99)]
        )
    print(
        format_table(
            ["scenario", "makespan (s)", "completed", "failed", "mean startup (s)",
             "exec p50", "exec p95", "exec p99"],
            rows,
            title=f"{args.ref}: {len(specs)} scenario(s)",
        )
    )
    for out in outcomes:
        print(f"  {out.scenario}: digest={out.digest[:12]} seed={out.seed}")
    if args.telemetry:
        paths = obs.write_run_dir(telemetry.snapshot(), args.telemetry)
        print(f"telemetry: {paths['run']} (trace: {paths['trace']})")
    return 0


def _cmd_verify(_args: argparse.Namespace) -> int:
    names = REGISTRY.verify()
    print(f"verified {len(names)} scenarios across {len(REGISTRY)} families")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenarios",
        description="List, inspect, and run declarative experiment scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenario families").set_defaults(
        fn=_cmd_list
    )

    p_show = sub.add_parser("show", help="print one scenario as TOML")
    p_show.add_argument("ref", help="scenario name (family/member) or spec file")
    p_show.set_defaults(fn=_cmd_show)

    p_run = sub.add_parser("run", help="run a family, member, or spec file")
    p_run.add_argument("ref", help="family name, family/member, or .toml/.json path")
    p_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = in-process, 0 = all cores)",
    )
    p_run.add_argument(
        "--telemetry", metavar="DIR", default=None,
        help="record spans/counters/events and write run.json, events.jsonl, "
             "trace.json (Perfetto), metrics.csv under DIR",
    )
    p_run.set_defaults(fn=_cmd_run)

    sub.add_parser(
        "verify", help="round-trip every registered scenario (CI gate)"
    ).set_defaults(fn=_cmd_verify)

    args = parser.parse_args(argv)
    _ensure_catalog()
    return int(args.fn(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
