"""``python -m repro scenarios ...`` — the scenario layer's command line.

Subcommands:

* ``list`` — every registered family and member, with digests,
* ``show <ref>`` — one scenario as TOML (what ``run`` would execute),
* ``run <name-or-file> [--jobs N]`` — run a registered family/member or a
  ``.toml``/``.json`` spec file and print the outcome table.  Runs are
  supervised (:mod:`repro.resilience`): cached by default, journaled to
  ``journal.jsonl`` next to the cache, resumable after a kill with
  ``--resume``, retried/quarantined via ``--retries``/``--cell-timeout``,
  and checkable with ``--check-invariants``,
* ``serve <name-or-file>`` — drive *service* scenarios (those with a
  ``[service]`` section) as open-loop steady-state runs and print their
  windowed reports; ``run --service`` is the same thing.  Shares the
  whole supervised-run machinery with ``run``,
* ``verify`` — round-trip every registered scenario through both
  interchange forms (the CI gate).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from ..metrics.report import format_table
from ..service.metrics import ServiceReport
from .build import ScenarioOutcome, run_scenario, run_service
from .registry import REGISTRY, _ensure_catalog
from .serialization import load_scenario, to_toml
from .spec import ScenarioSpec

__all__ = ["main"]


def _resolve(ref: str) -> List[ScenarioSpec]:
    """A registry name (family or member) or a spec-file path, as specs."""
    if ref.endswith((".toml", ".json")) or Path(ref).is_file():
        return [load_scenario(ref)]
    return REGISTRY.resolve(ref)


def _cmd_list(_args: argparse.Namespace) -> int:
    for fam in REGISTRY:
        print(f"{fam.name}  [{len(fam)} scenario{'s' if len(fam) != 1 else ''}]")
        print(f"  {fam.description}")
        for spec in fam:
            print(f"    {spec.name:<40} {spec.env.name:<5} digest={spec.digest()[:12]}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(to_toml(REGISTRY.scenario(args.ref) if not Path(args.ref).is_file()
                  else load_scenario(args.ref)), end="")
    return 0


def _run_one(spec: ScenarioSpec) -> ScenarioOutcome:
    return run_scenario(spec)


def _serve_one(
    spec: ScenarioSpec,
    live_root: Optional[str] = None,
    live_solo: bool = True,
) -> ServiceReport:
    live = None
    if live_root is not None:
        # one spec streams straight into the directory; a family fans out
        # into per-member subdirectories so streams don't clobber each other
        live = (
            live_root
            if live_solo
            else str(Path(live_root) / spec.name.replace("/", "__"))
        )
    return run_service(spec, live=live)


def _scenario_cell_key(spec: ScenarioSpec):
    """Cache key for one scenario run (``None`` → always live)."""
    from ..cache.keys import CacheKeyError, cell_keys

    try:
        return cell_keys(
            _run_one, {}, seed=spec.seed,
            extra={"scenario_run": spec.name}, scenario=spec,
        )
    except CacheKeyError:  # pragma: no cover - specs are canonical
        return None


def _service_cell_key(spec: ScenarioSpec):
    """Cache key for one service run (``None`` → always live)."""
    from ..cache.keys import CacheKeyError, cell_keys

    try:
        return cell_keys(
            _serve_one, {}, seed=spec.seed,
            extra={"scenario_serve": spec.name}, scenario=spec,
        )
    except CacheKeyError:  # pragma: no cover - specs are canonical
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    import contextlib
    import functools

    from .. import obs
    from ..obs import insight as _insight
    from ..resilience import (
        InvariantChecker,
        RetryPolicy,
        RunJournal,
        failure_table,
        invariants as _invariants,
        journal_path,
        supervised_map,
    )

    service_mode = bool(getattr(args, "service", False))
    live_root = getattr(args, "live", None)
    if live_root and not service_mode:
        raise SystemExit("--live needs service mode (serve, or run --service)")
    specs = _resolve(args.ref)
    if service_mode:
        missing = [s.name for s in specs if s.service is None]
        if missing:
            raise SystemExit(
                f"error: not service scenarios (no [service] section): {missing}"
            )
        cell_fn, cell_key = _serve_one, _service_cell_key
        if live_root:
            cell_fn = functools.partial(
                _serve_one, live_root=live_root, live_solo=len(specs) == 1
            )
    else:
        cell_fn, cell_key = _run_one, _scenario_cell_key
    keys = [spec.name for spec in specs]
    cache = None
    if not args.no_cache:
        from ..cache.store import ResultCache, default_cache_dir

        cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.resume and cache is None:
        raise SystemExit("--resume needs the result cache; drop --no-cache")
    telemetry = (
        obs.Telemetry(f"scenarios/{args.ref}", {"jobs": args.jobs})
        if args.telemetry
        else obs.NULL
    )
    # the insight plane (ledger + tier series) rides along whenever the
    # run records telemetry or streams live windows
    ins = (
        _insight.Insight(f"scenarios/{args.ref}", {"jobs": args.jobs})
        if (args.telemetry or live_root)
        else _insight.NULL
    )
    with contextlib.ExitStack() as stack:
        stack.enter_context(obs.session(telemetry))
        stack.enter_context(_insight.session(ins))
        if args.check_invariants:
            stack.enter_context(_invariants.session(InvariantChecker()))
        journal = None
        resumed: dict[str, object] = {}
        run_specs, run_keys = list(specs), list(keys)
        if cache is not None:
            jpath = journal_path(cache.root)
            if args.resume:
                committed = RunJournal.load_state(jpath).committed
                run_specs, run_keys = [], []
                for spec, key in zip(specs, keys):
                    hit, value = (
                        cache.get(cell_key(spec))
                        if key in committed
                        else (False, None)
                    )
                    if hit:
                        resumed[key] = value
                    else:
                        run_specs.append(spec)
                        run_keys.append(key)
            journal = stack.enter_context(RunJournal(jpath))
            journal.run_started(
                f"scenarios/{args.ref}", run_keys, resumed=sorted(resumed)
            )
            for key in resumed:
                journal.cell_committed(key, cached=True)
        sup = supervised_map(
            cell_fn,
            run_specs,
            keys=run_keys,
            jobs=args.jobs,
            deadline=args.cell_timeout,
            retry=RetryPolicy(max_attempts=max(1, args.retries)),
            journal=journal,
            cache=cache,
            cache_key=cell_key,
        )
        if journal is not None:
            journal.run_completed(failures=len(sup.failures))
    by_key = dict(resumed)
    failed = {f.key for f in sup.failures}
    for key, outcome in zip(run_keys, sup.results):
        if key not in failed:
            by_key[key] = outcome
    outcomes = [by_key[key] for key in keys if key in by_key]
    if service_mode:
        _print_service_reports(args, specs, outcomes)
    else:
        rows = []
        for out in outcomes:
            rows.append(
                [out.scenario, out.makespan, float(out.completed), float(out.failed),
                 out.mean_startup, out.percentile("execution_time", 50),
                 out.percentile("execution_time", 95), out.percentile("execution_time", 99)]
            )
        print(
            format_table(
                ["scenario", "makespan (s)", "completed", "failed", "mean startup (s)",
                 "exec p50", "exec p95", "exec p99"],
                rows,
                title=f"{args.ref}: {len(specs)} scenario(s)",
            )
        )
        for out in outcomes:
            print(f"  {out.scenario}: digest={out.digest[:12]} seed={out.seed}")
    if live_root:
        _print_live_tail(live_root, specs)
    if args.telemetry:
        paths = obs.write_run_dir(
            telemetry.snapshot(), args.telemetry, ins.snapshot()
        )
        print(f"telemetry: {paths['run']} (trace: {paths['trace']})")
        if "ledger" in paths:
            print(f"insight: {paths['ledger']} (record: {paths['insight']})")
    if sup.failures:
        print(failure_table(sup.failures))
        print(f"error: {len(sup.failures)} scenario(s) quarantined")
        return 1
    return 0


def _print_live_tail(live_root: str, specs: Sequence[ScenarioSpec]) -> None:
    """After a ``--live`` run, echo where each stream landed and render its
    last windows (the same view ``obs tail`` gives while the run is hot)."""
    import json

    from ..obs import insight as _insight

    dirs = (
        [(specs[0].name, Path(live_root))]
        if len(specs) == 1
        else [(s.name, Path(live_root) / s.name.replace("/", "__")) for s in specs]
    )
    for name, directory in dirs:
        path = directory / _insight.LIVE_FILE
        if not path.is_file():
            continue
        lines = [ln for ln in path.read_text(encoding="utf-8").splitlines() if ln]
        print(f"live: {name} -> {directory} ({len(lines)} windows)")
        for ln in lines[-3:]:
            print(_insight.format_live_window(json.loads(ln)))


def _print_service_reports(
    args: argparse.Namespace,
    specs: Sequence[ScenarioSpec],
    reports: Sequence[ServiceReport],
) -> None:
    rows = []
    for rep in reports:
        rows.append(
            [rep.scenario, float(len(rep.windows)), float(rep.warmup_windows),
             float(rep.offered), float(rep.rejected), float(rep.completed),
             rep.steady_utilization, rep.steady_queue_depth,
             rep.steady_throughput * 3600.0]
        )
    print(
        format_table(
            ["scenario", "windows", "warmup", "offered", "rejected", "completed",
             "util", "queue", "done/h"],
            rows,
            title=f"{args.ref}: {len(specs)} service scenario(s)",
        )
    )
    for rep in reports:
        conv = "converged" if rep.converged else "NOT converged"
        print(f"  {rep.scenario}: seed={rep.seed} {conv}")
        for cl in rep.class_latency:
            print(
                f"    {cl.wclass}: n={cl.count} turnaround mean={cl.mean:.2f} "
                f"p50={cl.p50:.2f} p95={cl.p95:.2f} p99={cl.p99:.2f}"
            )
    if getattr(args, "windows", False):
        for rep in reports:
            print()
            print(rep.to_table())


def _cmd_verify(_args: argparse.Namespace) -> int:
    names = REGISTRY.verify()
    print(f"verified {len(names)} scenarios across {len(REGISTRY)} families")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenarios",
        description="List, inspect, and run declarative experiment scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenario families").set_defaults(
        fn=_cmd_list
    )

    p_show = sub.add_parser("show", help="print one scenario as TOML")
    p_show.add_argument("ref", help="scenario name (family/member) or spec file")
    p_show.set_defaults(fn=_cmd_show)

    def _add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("ref", help="family name, family/member, or .toml/.json path")
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes (1 = in-process, 0 = all cores)",
        )
        p.add_argument(
            "--telemetry", metavar="DIR", default=None,
            help="record spans/counters/events and write run.json, events.jsonl, "
                 "trace.json (Perfetto), metrics.csv under DIR",
        )
        p.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="result-cache location (default: $REPRO_CACHE_DIR or "
                 "~/.cache/repro/cells)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="run every scenario live, without the result cache",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="replay journal.jsonl and skip scenarios already committed by "
                 "an earlier (possibly killed) run",
        )
        p.add_argument(
            "--retries", type=int, default=2, metavar="N",
            help="attempts per scenario before quarantine (default 2)",
        )
        p.add_argument(
            "--cell-timeout", type=float, default=None, metavar="SECONDS",
            help="per-scenario wall-clock deadline; hung scenarios are killed "
                 "and retried",
        )
        p.add_argument(
            "--check-invariants", action="store_true",
            help="assert runtime conservation invariants during the run",
        )
        p.add_argument(
            "--live", metavar="DIR", default=None,
            help="service mode only: stream per-window metrics under DIR "
                 "(live.ndjson + metrics.prom, with tier occupancy/stall when "
                 "the insight plane is on; view with 'obs tail DIR'). "
                 "Cached cells do not stream — add --no-cache for a full feed",
        )

    p_run = sub.add_parser("run", help="run a family, member, or spec file")
    _add_run_options(p_run)
    p_run.add_argument(
        "--service", action="store_true",
        help="drive the scenarios as open-loop services (requires a "
             "[service] section; same as the 'serve' subcommand)",
    )
    p_run.add_argument(
        "--windows", action="store_true",
        help="with --service, print every report's full window table",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_serve = sub.add_parser(
        "serve", help="run service scenarios as open-loop steady-state runs"
    )
    _add_run_options(p_serve)
    p_serve.add_argument(
        "--windows", action="store_true",
        help="print every report's full window table",
    )
    p_serve.set_defaults(fn=_cmd_run, service=True)

    sub.add_parser(
        "verify", help="round-trip every registered scenario (CI gate)"
    ).set_defaults(fn=_cmd_verify)

    args = parser.parse_args(argv)
    _ensure_catalog()
    return int(args.fn(args))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
