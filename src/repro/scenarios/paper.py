"""The paper's evaluation grid as registered scenario families.

One builder per figure and extension experiment.  Each builder returns a
:class:`~repro.scenarios.spec.ScenarioFamily` and accepts the same
override knobs the corresponding harness exposes (scale, mixes, node
counts, ...), so harnesses declare their grid by calling the builder and
sweeping its members; calling a builder with no arguments yields the
canonical family that importing this module registers in
:data:`~repro.scenarios.registry.REGISTRY`.

Sizing constants mirror the harness defaults they replaced: constrained
environments get a DRAM *fraction* of the workload's aggregate bytes; the
Ideal Environment's fraction is the paper's 1.5x headroom (nothing ever
swaps); the cluster experiments fix per-node DRAM instead, so every added
server brings the same hardware.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple, Union

from ..envs.environments import EnvKind
from ..memory.tiers import CXL, DRAM, PMEM
from ..service.spec import ServiceSpec
from ..util.rng import RngFactory
from ..util.units import MiB
from ..workflows.ensembles import paper_batch
from ..workflows.task import WorkloadClass
from .registry import register_family
from .spec import (
    DEFAULT_CHUNK,
    DEFAULT_SCALE,
    ScenarioFamily,
    ScenarioSpec,
    TierSizing,
    WorkloadSpec,
)
from .workloads import CLASS_ORDER, predictor_probe_task

__all__ = [
    "DEFAULT_MIX",
    "IDEAL_HEADROOM",
    "ablations_family",
    "cold_pages_family",
    "ext_colocation_family",
    "ext_decomposition_family",
    "ext_failures_family",
    "ext_open_system_family",
    "ext_predictor_family",
    "ext_resilience_family",
    "ext_shared_inputs_family",
    "ext_steady_state_family",
    "ext_utilization_family",
    "fig01_family",
    "fig05_family",
    "fig06_family",
    "fig07_family",
    "fig08_family",
    "fig09_family",
    "fig10_family",
    "fig11_family",
    "validation_family",
]

#: default colocation mix: instance counts leaning toward the paper's
#: DM-heavy 150:1100:150:600 class ratio, sized so a single node sees real
#: bandwidth contention and memory pressure.
DEFAULT_MIX = {
    WorkloadClass.DL: 6,
    WorkloadClass.DM: 8,
    WorkloadClass.DC: 3,
    WorkloadClass.SC: 4,
}

#: the Ideal Environment's DRAM sizing, as a fraction of the aggregate
#: footprint (> 1: nothing ever swaps)
IDEAL_HEADROOM = 1.5

MixLike = Union[int, Mapping[WorkloadClass, int], Mapping[str, int], None]


def _mix_pairs(instances_per_class: MixLike) -> Tuple[Tuple[str, int], ...]:
    """Harness-style mixes (int, class dict, or None) as spec pairs."""
    if instances_per_class is None:
        instances_per_class = DEFAULT_MIX
    if isinstance(instances_per_class, int):
        return tuple((cls.name, instances_per_class) for cls in CLASS_ORDER)
    return tuple(
        (k.name if isinstance(k, WorkloadClass) else str(k), int(v))
        for k, v in instances_per_class.items()
    )


def _colocated(
    instances_per_class: MixLike, scale: float
) -> WorkloadSpec:
    return WorkloadSpec(
        source="colocated-mix",
        scale=scale,
        instances_per_class=_mix_pairs(instances_per_class),
    )


def _env_fraction(kind: EnvKind, dram_fraction: float) -> TierSizing:
    """Per-environment fraction sizing: IE gets headroom, the rest get
    ``dram_fraction`` — the paper's constrained-vs-ideal contrast."""
    f = IDEAL_HEADROOM if kind is EnvKind.IE else dram_fraction
    return TierSizing(dram_fraction=f)


# --------------------------------------------------------------------------- #
# figures
# --------------------------------------------------------------------------- #

@register_family
def fig01_family(
    *,
    scale: float = DEFAULT_SCALE,
    instances_per_class: MixLike = None,
    dram_fraction: float = 0.25,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    workload = _colocated(instances_per_class, scale)
    common = dict(
        workload=workload, chunk_size=chunk_size, seed=seed,
        sizing=TierSizing(dram_fraction=dram_fraction),
    )
    return ScenarioFamily(
        name="fig01",
        description="Fig 1: workflow execution time under three memory configurations",
        scenarios=(
            ScenarioSpec("fig01/swap-constrained", EnvKind.CBE, **common),
            ScenarioSpec("fig01/tiered-alloc", EnvKind.TME, policy="tiered-alloc", **common),
            ScenarioSpec("fig01/tiered+migration", EnvKind.TME, **common),
        ),
    )


@register_family
def fig05_family(
    *,
    scale: float = DEFAULT_SCALE,
    instances_per_class: MixLike = None,
    dram_fraction: float = 0.25,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    workload = _colocated(instances_per_class, scale)
    return ScenarioFamily(
        name="fig05",
        description="Fig 5: mean workflow execution time per environment",
        scenarios=tuple(
            ScenarioSpec(
                f"fig05/{kind.name}",
                kind,
                workload=workload,
                sizing=_env_fraction(kind, dram_fraction),
                chunk_size=chunk_size,
                seed=seed,
            )
            for kind in (EnvKind.IE, EnvKind.CBE, EnvKind.TME, EnvKind.IMME)
        ),
    )


@register_family
def fig06_family(
    *,
    scale: float = DEFAULT_SCALE,
    instances_per_class: MixLike = None,
    fractions: Tuple[float, ...] = (0.10, 0.20, 0.30, 0.40, 0.50),
    dram_fraction: float = 0.25,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    workload = _colocated(instances_per_class, scale)
    members = []
    for f in fractions:
        for kind in (EnvKind.TME, EnvKind.IMME):
            members.append(
                ScenarioSpec(
                    f"fig06/{kind.name}:{int(f * 100)}",
                    kind,
                    workload=workload,
                    sizing=TierSizing(dram_fraction=dram_fraction),
                    chunk_size=chunk_size,
                    seed=seed,
                    # TME places the share obliviously; IMME picks pages itself
                    cxl_fraction=f if kind is EnvKind.TME else None,
                )
            )
    return ScenarioFamily(
        name="fig06",
        description="Fig 6: mean normalised slowdown vs CXL share of workflow memory",
        scenarios=tuple(members),
    )


@register_family
def fig07_family(
    *,
    scale: float = DEFAULT_SCALE,
    instances_per_class: MixLike = None,
    dram_fraction: float = 0.25,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    workload = _colocated(instances_per_class, scale)
    common = dict(
        workload=workload, chunk_size=chunk_size, seed=seed,
        sizing=TierSizing(dram_fraction=dram_fraction),
    )
    variants = (
        ("default-alloc", EnvKind.TME, "default-alloc"),
        ("uniform-interleave", EnvKind.TME, "uniform-interleave"),
        ("weighted-interleave", EnvKind.TME, "weighted-interleave"),
        ("ours-alg1", EnvKind.IMME, None),
    )
    return ScenarioFamily(
        name="fig07",
        description="Fig 7: mean execution time per allocation policy",
        scenarios=tuple(
            ScenarioSpec(f"fig07/{name}", kind, policy=policy, **common)
            for name, kind, policy in variants
        ),
    )


@register_family
def fig08_family(
    *,
    scale: float = DEFAULT_SCALE,
    instances_per_class: int = 2,
    fractions: Tuple[float, ...] = (0.25, 0.50, 0.75, 1.00),
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
    classes: Sequence[WorkloadClass] = CLASS_ORDER,
) -> ScenarioFamily:
    members = []
    for cls in classes:
        for kind in (EnvKind.IE, EnvKind.TME, EnvKind.IMME):
            for f in fractions:
                members.append(
                    ScenarioSpec(
                        f"fig08/{kind.name}:{cls.name}:{int(f * 100)}",
                        kind,
                        workload=WorkloadSpec(
                            source="class-ensemble",
                            scale=scale,
                            wclass=cls.name,
                            instances=instances_per_class,
                        ),
                        # DRAM capped at a fraction of the aggregate WSS —
                        # here even IE is deliberately starved (the swap
                        # baseline), so no headroom special case
                        sizing=TierSizing(dram_fraction=f, basis="wss"),
                        chunk_size=chunk_size,
                        seed=seed,
                    )
                )
    return ScenarioFamily(
        name="fig08",
        description="Fig 8: makespan vs DRAM as a fraction of working-set size",
        scenarios=tuple(members),
    )


@register_family
def fig09_family(
    *,
    scale: float = DEFAULT_SCALE,
    instances_per_class: MixLike = None,
    dram_fraction: float = 0.25,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    workload = _colocated(instances_per_class, scale)
    return ScenarioFamily(
        name="fig09",
        description="Fig 9: page-fault statistics under the page-movement policy",
        scenarios=tuple(
            ScenarioSpec(
                f"fig09/{kind.name}",
                kind,
                workload=workload,
                sizing=TierSizing(dram_fraction=dram_fraction),
                chunk_size=chunk_size,
                seed=seed,
            )
            for kind in (EnvKind.CBE, EnvKind.TME, EnvKind.IMME)
        ),
    )


def _paper_batch_footprint(total_instances: int, scale: float, seed: int, mix=None) -> int:
    batch = paper_batch(total_instances, scale=scale, mix=mix, rng_factory=RngFactory(seed))
    return sum(s.max_footprint for s in batch)


@register_family
def fig10_family(
    *,
    scale: float = DEFAULT_SCALE,
    total_instances: int = 48,
    node_counts: Tuple[int, ...] = (2, 4, 8),
    dram_fraction: float = 0.30,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    workload = WorkloadSpec(source="paper-batch", scale=scale, total_instances=total_instances)
    total = _paper_batch_footprint(total_instances, scale, seed)
    # fixed per-node hardware, as in the paper: every added server brings
    # the same DRAM, so aggregate memory grows with the cluster
    per_node_dram = int(total * dram_fraction / min(node_counts))
    members = []
    for kind in (EnvKind.IE, EnvKind.CBE, EnvKind.TME, EnvKind.IMME):
        for n in node_counts:
            dram = per_node_dram if kind is not EnvKind.IE else int(total * IDEAL_HEADROOM / n)
            members.append(
                ScenarioSpec(
                    f"fig10/{kind.name}:{n}n",
                    kind,
                    workload=workload,
                    sizing=TierSizing(dram_per_node=dram),
                    n_nodes=n,
                    chunk_size=chunk_size,
                    seed=seed,
                )
            )
    return ScenarioFamily(
        name="fig10",
        description="Fig 10: batch makespan for the paper's class mix vs cluster size",
        scenarios=tuple(members),
    )


@register_family
def fig11_family(
    *,
    scale: float = DEFAULT_SCALE,
    instance_counts: Tuple[int, ...] = (8, 16, 32, 64),
    n_nodes: int = 4,
    dram_fraction: float = 0.30,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    # fixed cluster hardware: per-node DRAM sized against the LARGEST
    # batch, so growing concurrency raises pressure monotonically
    total_max = _paper_batch_footprint(max(instance_counts), scale, seed)
    per_node_dram = int(total_max * dram_fraction / n_nodes)
    ideal_dram = int(total_max * IDEAL_HEADROOM / n_nodes)
    members = []
    for kind in (EnvKind.IE, EnvKind.CBE, EnvKind.TME, EnvKind.IMME):
        for c in instance_counts:
            members.append(
                ScenarioSpec(
                    f"fig11/{kind.name}:{c}",
                    kind,
                    workload=WorkloadSpec(
                        source="paper-batch", scale=scale, total_instances=c
                    ),
                    sizing=TierSizing(
                        dram_per_node=per_node_dram if kind is not EnvKind.IE else ideal_dram
                    ),
                    n_nodes=n_nodes,
                    chunk_size=chunk_size,
                    seed=seed,
                )
            )
    return ScenarioFamily(
        name="fig11",
        description="Fig 11: batch makespan vs concurrent instances on a fixed cluster",
        scenarios=tuple(members),
    )


# --------------------------------------------------------------------------- #
# substrate checks
# --------------------------------------------------------------------------- #

@register_family
def cold_pages_family(
    *,
    scale: float = DEFAULT_SCALE,
    chunk_size: int = DEFAULT_CHUNK,
) -> ScenarioFamily:
    return ScenarioFamily(
        name="cold-pages",
        description="§II-C: fraction of BERT's allocation still idle over time",
        scenarios=(
            ScenarioSpec(
                "cold-pages",
                EnvKind.IE,
                workload=WorkloadSpec(source="library-task", scale=scale, wclass="DL"),
                # DRAM at 2x the footprint: the task runs uncontended
                sizing=TierSizing(dram_fraction=2.0),
                chunk_size=chunk_size,
            ),
        ),
    )


@register_family
def validation_family(*, chunk_size: int = DEFAULT_CHUNK) -> ScenarioFamily:
    members = []
    for tier in (DRAM, PMEM, CXL):
        for mix in ("compute", "latency", "bandwidth", "blend"):
            members.append(
                ScenarioSpec(
                    f"validation/{tier.name}:{mix}",
                    EnvKind.TME,
                    workload=WorkloadSpec(
                        source="validation-probe",
                        params=(("mix", mix), ("name", f"v-{tier.name}-{mix}")),
                    ),
                    # tiny fixed tiers; the probe fits in any one of them
                    sizing=TierSizing(
                        dram_per_node=MiB(64),
                        pmem_capacity=MiB(64),
                        cxl_capacity=MiB(64),
                    ),
                    chunk_size=chunk_size,
                    # pin the whole allocation to `tier` (degenerate policy)
                    policy=f"pin-{tier.name.lower()}",
                    max_time=1e6,
                )
            )
    return ScenarioFamily(
        name="validation",
        description="Simulator validation: closed-form vs simulated slowdowns",
        scenarios=tuple(members),
    )


@register_family
def ablations_family(
    *,
    scale: float = DEFAULT_SCALE,
    dram_fraction: float = 0.25,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    workload = _colocated(None, scale)
    common = dict(
        workload=workload, chunk_size=chunk_size, seed=seed,
        sizing=TierSizing(dram_fraction=dram_fraction),
    )
    variants = (
        # name -> (policy override, stage images override)
        ("full-imme", None, None),
        ("no-proactive", "no-proactive", None),
        ("no-pinning", "no-pinning", None),
        ("no-staging", None, False),
        ("no-striping", "no-striping", None),
    )
    return ScenarioFamily(
        name="ablations",
        description="IMME ablations: one mechanism removed at a time",
        scenarios=tuple(
            ScenarioSpec(
                f"ablations/{name}", EnvKind.IMME,
                policy=policy, stage_images=stage, **common,
            )
            for name, policy, stage in variants
        ),
    )


# --------------------------------------------------------------------------- #
# extension experiments
# --------------------------------------------------------------------------- #

@register_family
def ext_colocation_family(
    *,
    scale: float = DEFAULT_SCALE,
    total_instances: int = 16,
    n_nodes: int = 2,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    # long-job-heavy mix: exclusivity serialises these into waves
    workload = WorkloadSpec(
        source="paper-batch",
        scale=scale,
        total_instances=total_instances,
        instances_per_class=(("DL", 2), ("SC", 6), ("DC", 4), ("DM", 4)),
    )
    common = dict(
        workload=workload,
        sizing=TierSizing(dram_fraction=0.5),
        n_nodes=n_nodes,
        chunk_size=chunk_size,
        seed=seed,
    )
    return ScenarioFamily(
        name="ext-colocation",
        description="Containerized colocation vs bare-metal exclusivity",
        scenarios=(
            ScenarioSpec("ext-colocation/bare-metal", EnvKind.IMME, exclusive=True, **common),
            ScenarioSpec("ext-colocation/containerized", EnvKind.IMME, **common),
        ),
    )


@register_family
def ext_decomposition_family(
    *,
    scale: float = DEFAULT_SCALE,
    dm_instances: int = 6,
    dram_fraction: float = 0.35,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    return ScenarioFamily(
        name="ext-decomposition",
        description="Workflow deconstruction vs monolithic execution",
        scenarios=(
            ScenarioSpec(
                "ext-decomposition",
                EnvKind.IMME,
                workload=WorkloadSpec(
                    source="decomposition",
                    scale=scale,
                    params=(("dm_instances", dm_instances),),
                ),
                sizing=TierSizing(dram_fraction=dram_fraction),
                chunk_size=chunk_size,
                seed=seed,
            ),
        ),
    )


def _capped_sc_workload(
    scale: float, instances: int, limit_margin: float
) -> WorkloadSpec:
    """The memory-capped mid-run-expansion SC ensemble both failure
    experiments share."""
    return WorkloadSpec(
        source="class-ensemble",
        scale=scale,
        wclass="SC",
        instances=instances,
        params=(("limit_margin", limit_margin), ("request_extra", True)),
    )


@register_family
def ext_failures_family(
    *,
    scale: float = DEFAULT_SCALE,
    instances: int = 6,
    limit_margin: float = 0.05,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    workload = _capped_sc_workload(scale, instances, limit_margin)
    return ScenarioFamily(
        name="ext-failures",
        description="Workflow failures under fixed memory allocations",
        scenarios=tuple(
            ScenarioSpec(
                f"ext-failures/{kind.name}",
                kind,
                workload=workload,
                # the cap margins matter, not the WSS: size on raw footprint
                sizing=TierSizing(dram_fraction=1.2, basis="footprint"),
                chunk_size=chunk_size,
                seed=seed,
            )
            for kind in (EnvKind.CBE, EnvKind.TME, EnvKind.IMME)
        ),
    )


@register_family
def ext_open_system_family(
    *,
    scale: float = DEFAULT_SCALE,
    rates: Tuple[float, ...] = (0.05, 0.10, 0.20),
    stream_length: int = 12,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    """Open-system DM stream over busy background jobs — the first
    consumer of the service layer: each member is a true open-loop run
    (one pending arrival event, admission hooks, windowed report) rather
    than a pre-materialized arrival list."""
    members = []
    for kind in (EnvKind.CBE, EnvKind.IMME):
        for rate in rates:
            members.append(
                ScenarioSpec(
                    f"ext-open-system/{kind.name}:{rate:.2f}",
                    kind,
                    workload=WorkloadSpec(
                        source="service-background",
                        scale=scale,
                        instances_per_class=(("DL", 1), ("SC", 1)),
                    ),
                    sizing=TierSizing(dram_fraction=0.30),
                    service=ServiceSpec(
                        rate=rate,
                        max_arrivals=stream_length,
                        window=100.0,
                        classes=(("DM", 1),),
                        warmup="none",
                        params=(("sizing_copies", 4), ("start", 5.0)),
                    ),
                    chunk_size=chunk_size,
                    seed=seed,
                )
            )
    return ScenarioFamily(
        name="ext-open-system",
        description="Open-system DM stream under increasing offered load",
        scenarios=tuple(members),
    )


@register_family
def ext_steady_state_family(
    *,
    scale: float = DEFAULT_SCALE,
    rates: Tuple[float, ...] = (0.05, 0.10, 0.20, 0.40),
    max_arrivals: int = 400,
    window: float = 100.0,
    sizing_copies: int = 6,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    """Steady-state service mode: baseline vs IMME under rising load.

    Each member drives the cluster as an open-loop service — a DM-heavy
    stream over a DL+SC background — until ``max_arrivals`` have been
    offered, then reports post-warm-up windowed utilization, queue depth,
    and per-class turnaround tails.  The tiers are provisioned for
    ``sizing_copies`` resident stream tasks, so rising rates push the
    constrained baseline into memory pressure the tiered IMME absorbs.
    """
    members = []
    for kind in (EnvKind.CBE, EnvKind.IMME):
        for rate in rates:
            members.append(
                ScenarioSpec(
                    f"ext-steady-state/{kind.name}:{rate:.2f}",
                    kind,
                    workload=WorkloadSpec(
                        source="service-background",
                        scale=scale,
                        instances_per_class=(("DL", 1), ("SC", 1)),
                    ),
                    sizing=TierSizing(dram_fraction=0.30),
                    service=ServiceSpec(
                        rate=rate,
                        max_arrivals=max_arrivals,
                        window=window,
                        classes=(("DM", 3), ("DC", 1)),
                        params=(("sizing_copies", sizing_copies),),
                    ),
                    chunk_size=chunk_size,
                    seed=seed,
                )
            )
    return ScenarioFamily(
        name="ext-steady-state",
        description="Open-loop service stream: steady-state windows under rising load",
        scenarios=tuple(members),
    )


@register_family
def ext_predictor_family(
    *,
    scale: float = DEFAULT_SCALE,
    runs: int = 4,
    chunk_size: int = DEFAULT_CHUNK,
) -> ScenarioFamily:
    # DRAM big enough for the hot set (40%), far too small for everything
    probe = predictor_probe_task("probe-0", scale)
    return ScenarioFamily(
        name="ext-predictor",
        description="Flag predictor learning from execution logs",
        scenarios=(
            ScenarioSpec(
                "ext-predictor",
                EnvKind.IMME,
                workload=WorkloadSpec(
                    source="predictor-probes", scale=scale, params=(("runs", runs),)
                ),
                sizing=TierSizing(dram_per_node=int(probe.footprint * 0.55)),
                chunk_size=chunk_size,
            ),
        ),
    )


@register_family
def ext_resilience_family(
    *,
    scale: float = DEFAULT_SCALE,
    instances: int = 4,
    limit_margin: float = 0.05,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
    n_nodes: int = 2,
    fault_seed: int = 7,
) -> ScenarioFamily:
    workload = _capped_sc_workload(scale, instances, limit_margin)
    return ScenarioFamily(
        name="ext-resilience",
        description="Survival of the memory-capped ensemble under injected faults",
        scenarios=tuple(
            ScenarioSpec(
                f"ext-resilience/{kind.name}",
                kind,
                workload=workload,
                sizing=TierSizing(dram_fraction=1.2, basis="footprint"),
                n_nodes=n_nodes,
                chunk_size=chunk_size,
                seed=seed,
                fault_schedule="default-chaos",
                fault_seed=fault_seed,
            )
            for kind in (EnvKind.CBE, EnvKind.TME, EnvKind.IMME)
        ),
    )


@register_family
def ext_shared_inputs_family(
    *,
    scale: float = DEFAULT_SCALE,
    instances: int = 8,
    input_bytes: Optional[int] = None,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    params: Tuple[Tuple[str, int], ...] = ()
    if input_bytes is not None:
        params = (("input_bytes", int(input_bytes)),)
    workload = WorkloadSpec(
        source="shared-input", scale=scale, instances=instances, params=params
    )
    return ScenarioFamily(
        name="ext-shared-inputs",
        description="Shared read-only inputs staged once on CXL",
        scenarios=tuple(
            ScenarioSpec(
                f"ext-shared-inputs/{kind.name}",
                kind,
                workload=workload,
                # the *private-copy* variant must be heavily pressured while
                # one staged copy fits comfortably
                sizing=TierSizing(dram_fraction=0.30),
                chunk_size=chunk_size,
                seed=seed,
            )
            for kind in (EnvKind.TME, EnvKind.IMME)
        ),
    )


@register_family
def ext_utilization_family(
    *,
    scale: float = DEFAULT_SCALE,
    dram_fraction: float = 0.25,
    chunk_size: int = DEFAULT_CHUNK,
    seed: int = 0,
) -> ScenarioFamily:
    workload = _colocated(None, scale)
    return ScenarioFamily(
        name="ext-utilization",
        description="Memory utilisation and productive throughput per environment",
        scenarios=tuple(
            ScenarioSpec(
                f"ext-utilization/{kind.name}",
                kind,
                workload=workload,
                sizing=_env_fraction(kind, dram_fraction),
                chunk_size=chunk_size,
                seed=seed,
            )
            for kind in (EnvKind.IE, EnvKind.CBE, EnvKind.TME, EnvKind.IMME)
        ),
    )
