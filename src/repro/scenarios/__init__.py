"""Declarative scenarios: one typed, serializable spec per experiment.

A :class:`ScenarioSpec` fully describes an experiment cell — environment
kind, tier sizing, workload mix, and every knob the paper's grid sweeps —
as plain frozen data that round-trips losslessly through JSON and TOML
and hashes to a stable digest the result cache keys on.  The
:data:`~repro.scenarios.registry.REGISTRY` names every paper figure and
extension experiment as a :class:`ScenarioFamily`; ``python -m repro
scenarios list`` enumerates them and ``scenarios run`` executes any of
them (or a spec file) without touching harness code.
"""

from .build import (
    FAULT_SCHEDULES,
    RealizedScenario,
    ScenarioOutcome,
    default_chaos_schedule,
    environment_config,
    environment_for_tasks,
    realize,
    run_scenario,
    run_service,
    service_sizing_tasks,
)
from .policies import POLICY_FACTORIES, policy_names, resolve_policy
from .registry import REGISTRY, ScenarioRegistry, family, register_family, scenario
from .serialization import (
    ScenarioFormatError,
    dump_scenario,
    from_json,
    from_mapping,
    from_toml,
    load_scenario,
    to_json,
    to_mapping,
    to_toml,
)
from .spec import (
    DEFAULT_CHUNK,
    DEFAULT_SCALE,
    SPEC_VERSION,
    ScenarioFamily,
    ScenarioSpec,
    TierSizing,
    WorkloadSpec,
)
from .workloads import WORKLOAD_SOURCES, build_workload, workload_sources

__all__ = [
    "DEFAULT_CHUNK",
    "DEFAULT_SCALE",
    "FAULT_SCHEDULES",
    "POLICY_FACTORIES",
    "REGISTRY",
    "RealizedScenario",
    "SPEC_VERSION",
    "ScenarioFamily",
    "ScenarioFormatError",
    "ScenarioOutcome",
    "ScenarioRegistry",
    "ScenarioSpec",
    "TierSizing",
    "WORKLOAD_SOURCES",
    "WorkloadSpec",
    "build_workload",
    "default_chaos_schedule",
    "dump_scenario",
    "environment_config",
    "environment_for_tasks",
    "family",
    "from_json",
    "from_mapping",
    "from_toml",
    "load_scenario",
    "policy_names",
    "realize",
    "register_family",
    "resolve_policy",
    "run_scenario",
    "run_service",
    "scenario",
    "service_sizing_tasks",
    "to_json",
    "to_mapping",
    "to_toml",
    "workload_sources",
]
