"""Lossless scenario (de)serialization: tagged JSON and plain TOML.

Two interchange forms, both exact:

* **JSON** rides the result cache's versioned tagged codec
  (:mod:`repro.cache.codec`), which already round-trips dataclasses,
  enums, and tuples to ``==``-equal objects.  This is the form the CLI
  and the cache share.
* **TOML** is the *human* form — what a team checks into their repo next
  to a workload definition.  A spec maps onto plain tables (enum names as
  strings, pair-tuples as tables, ``None`` fields omitted) written by a
  small emitter and read back with :mod:`tomllib`; because every field is
  a TOML-native type, the round trip is identity.

``load_scenario`` dispatches on file suffix so ``scenarios run
path/to/spec.toml`` and ``.json`` both work.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping, Union

from ..cache.codec import CodecError, decode, encode
from ..util.errors import ReproError
from ..envs.environments import EnvKind
from ..service.spec import ServiceSpec
from .spec import ScenarioSpec, TierSizing, WorkloadSpec

__all__ = [
    "ScenarioFormatError",
    "to_json",
    "from_json",
    "to_mapping",
    "from_mapping",
    "to_toml",
    "from_toml",
    "load_scenario",
    "dump_scenario",
]


class ScenarioFormatError(ReproError):
    """Raised for files or mappings that do not describe a scenario."""


# --------------------------------------------------------------------------- #
# tagged JSON (codec) form
# --------------------------------------------------------------------------- #

def to_json(spec: ScenarioSpec) -> str:
    """Exact tagged-JSON form via the result-cache codec."""
    return encode(spec).decode("utf-8")


def from_json(data: Union[str, bytes]) -> ScenarioSpec:
    try:
        obj = decode(data.encode("utf-8") if isinstance(data, str) else data)
    except CodecError as exc:
        raise ScenarioFormatError(f"not a scenario JSON document: {exc}") from exc
    if not isinstance(obj, ScenarioSpec):
        raise ScenarioFormatError(
            f"decoded a {type(obj).__name__}, expected a ScenarioSpec"
        )
    return obj


# --------------------------------------------------------------------------- #
# plain-mapping (TOML) form
# --------------------------------------------------------------------------- #

def _dataclass_mapping(obj: Any, pair_fields: frozenset) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for f in dataclasses.fields(obj):
        value = getattr(obj, f.name)
        if value is None:
            continue  # TOML has no null; absence means "default"
        if f.name in pair_fields:
            value = {k: v for k, v in value}
        out[f.name] = value
    return out


def to_mapping(spec: ScenarioSpec) -> dict[str, Any]:
    """Plain nested-dict form: TOML/JSON-native types only."""
    out = _dataclass_mapping(spec, frozenset())
    out["env"] = spec.env.name
    out["workload"] = _dataclass_mapping(
        spec.workload, frozenset({"instances_per_class", "params"})
    )
    out["sizing"] = _dataclass_mapping(spec.sizing, frozenset())
    if spec.service is not None:
        out["service"] = _dataclass_mapping(
            spec.service, frozenset({"classes", "params"})
        )
    return out


def _take(mapping: dict, cls: type, what: str) -> dict[str, Any]:
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(mapping) - known
    if unknown:
        raise ScenarioFormatError(f"unknown {what} field(s): {sorted(unknown)}")
    return mapping


def from_mapping(mapping: Mapping[str, Any]) -> ScenarioSpec:
    """Inverse of :func:`to_mapping`; rejects unknown fields loudly."""
    data = dict(mapping)
    if "name" not in data or "env" not in data:
        raise ScenarioFormatError("a scenario needs at least 'name' and 'env'")
    try:
        data["env"] = EnvKind[str(data["env"])]
    except KeyError as exc:
        raise ScenarioFormatError(
            f"unknown environment kind {data['env']!r}; "
            f"choose from {[k.name for k in EnvKind]}"
        ) from exc
    workload = dict(data.pop("workload", {}))
    for pair_field in ("instances_per_class", "params"):
        if pair_field in workload:
            workload[pair_field] = tuple(sorted(workload[pair_field].items()))
    sizing = dict(data.pop("sizing", {}))
    service = data.pop("service", None)
    if service is not None:
        service = dict(service)
        for pair_field in ("classes", "params"):
            if pair_field in service:
                service[pair_field] = tuple(sorted(service[pair_field].items()))
    try:
        data["workload"] = WorkloadSpec(**_take(workload, WorkloadSpec, "workload"))
        data["sizing"] = TierSizing(**_take(sizing, TierSizing, "sizing"))
        if service is not None:
            data["service"] = ServiceSpec(**_take(service, ServiceSpec, "service"))
        return ScenarioSpec(**_take(data, ScenarioSpec, "scenario"))
    except (TypeError, ValueError) as exc:
        if isinstance(exc, ScenarioFormatError):
            raise
        raise ScenarioFormatError(f"invalid scenario: {exc}") from exc


# --------------------------------------------------------------------------- #
# TOML text
# --------------------------------------------------------------------------- #

def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # repr is the shortest exact round-trip form and valid TOML
        # (always carries a '.' or an exponent)
        return repr(value)
    if isinstance(value, str):
        # JSON string escapes are valid TOML, with two divergences:
        # astral chars must stay literal (TOML has no surrogate-pair
        # escapes) and DEL must not (TOML forbids it unescaped)
        return json.dumps(value, ensure_ascii=False).replace("\x7f", "\\u007F")
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise ScenarioFormatError(f"cannot emit {type(value).__name__} as TOML")


def _toml_table(mapping: Mapping[str, Any], prefix: str, lines: list[str]) -> None:
    scalars = {k: v for k, v in mapping.items() if not isinstance(v, Mapping)}
    tables = {k: v for k, v in mapping.items() if isinstance(v, Mapping)}
    if prefix:
        lines.append(f"[{prefix}]")
    for key, value in scalars.items():
        lines.append(f"{key} = {_toml_value(value)}")
    for key, value in tables.items():
        if not value:
            continue
        if lines and lines[-1]:
            lines.append("")
        _toml_table(value, f"{prefix}.{key}" if prefix else key, lines)


def to_toml(spec: ScenarioSpec) -> str:
    lines: list[str] = [f"# repro scenario (spec version {spec.spec_version})"]
    _toml_table(to_mapping(spec), "", lines)
    return "\n".join(lines) + "\n"


def from_toml(text: str) -> ScenarioSpec:
    try:
        import tomllib
    except ImportError as exc:  # pragma: no cover - 3.10 only
        raise ScenarioFormatError("reading TOML scenarios requires Python >= 3.11") from exc
    try:
        mapping = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ScenarioFormatError(f"malformed scenario TOML: {exc}") from exc
    return from_mapping(mapping)


# --------------------------------------------------------------------------- #
# files
# --------------------------------------------------------------------------- #

def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Read a scenario file, dispatching on its suffix (.toml / .json)."""
    p = Path(path)
    text = p.read_text(encoding="utf-8")
    if p.suffix == ".toml":
        return from_toml(text)
    if p.suffix == ".json":
        return from_json(text)
    raise ScenarioFormatError(f"unknown scenario file type {p.suffix!r} (use .toml or .json)")


def dump_scenario(spec: ScenarioSpec, path: Union[str, Path]) -> None:
    """Write a scenario file, dispatching on its suffix (.toml / .json)."""
    p = Path(path)
    if p.suffix == ".toml":
        p.write_text(to_toml(spec), encoding="utf-8")
    elif p.suffix == ".json":
        p.write_text(to_json(spec) + "\n", encoding="utf-8")
    else:
        raise ScenarioFormatError(f"unknown scenario file type {p.suffix!r} (use .toml or .json)")
