"""Named allocation policies — the serializable face of ``policy_factory``.

A :class:`~repro.scenarios.spec.ScenarioSpec` cannot carry a callable, so
every policy override the paper's grid uses is registered here under a
stable name.  Each entry is a factory ``tier_specs -> MemoryPolicy``
matching :attr:`repro.envs.EnvironmentConfig.policy_factory`, and the
names — not the callables — travel through TOML/JSON and cache digests.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.manager import TieredMemoryManager
from ..core.movement import MovementConfig
from ..memory.tiers import CXL, DRAM, MEMORY_TIERS, PMEM, TierKind, TierSpec
from ..policies.base import MemoryPolicy
from ..policies.interleave import DefaultAllocationPolicy, UniformInterleavePolicy

__all__ = ["POLICY_FACTORIES", "PolicyFactory", "policy_names", "resolve_policy"]

PolicyFactory = Callable[[Dict[TierKind, TierSpec]], MemoryPolicy]


def _default_alloc(specs: Dict[TierKind, TierSpec]) -> MemoryPolicy:
    """DRAM on demand, spill in tier order, class-oblivious (Fig. 7)."""
    return DefaultAllocationPolicy()


def _tiered_alloc(specs: Dict[TierKind, TierSpec]) -> MemoryPolicy:
    """Static tiered demand allocation, no page movement (Fig. 1)."""
    return DefaultAllocationPolicy((DRAM, PMEM, CXL))


def _uniform_interleave(specs: Dict[TierKind, TierSpec]) -> MemoryPolicy:
    """Interleave every allocation evenly across tiers (Fig. 7)."""
    return UniformInterleavePolicy()


def _weighted_interleave(specs: Dict[TierKind, TierSpec]) -> MemoryPolicy:
    """Bandwidth-proportional interleaving — the "weighted interleaving"
    the paper notes can further improve Uniform Allocation (Fig. 7)."""
    weights = {
        t: specs[t].bandwidth for t in MEMORY_TIERS if specs[t].capacity > 0
    }
    return UniformInterleavePolicy(weights)


def _pin(tier: TierKind) -> PolicyFactory:
    """Degenerate single-tier policy, used by the validation matrix."""

    def factory(specs: Dict[TierKind, TierSpec]) -> MemoryPolicy:
        return DefaultAllocationPolicy(order=(tier,))

    return factory


def _no_proactive(specs: Dict[TierKind, TierSpec]) -> MemoryPolicy:
    """IMME ablation: disable proactive swapping (§III-C4)."""
    cfg = MovementConfig(proactive_threshold=1.0, proactive_target=1.0)
    return TieredMemoryManager(specs, movement_config=cfg)


def _no_pinning(specs: Dict[TierKind, TierSpec]) -> MemoryPolicy:
    """IMME ablation: LAT/SHL allocations lose their guaranteed slice."""
    return TieredMemoryManager(specs, pin_fraction=0.0)


def _no_striping(specs: Dict[TierKind, TierSpec]) -> MemoryPolicy:
    """IMME ablation: Algorithm 1's BW branch collapses to DRAM-only."""
    mgr = TieredMemoryManager(specs)
    mgr.allocator.bw_fractions = {DRAM: 1.0}
    return mgr


POLICY_FACTORIES: Dict[str, PolicyFactory] = {
    "default-alloc": _default_alloc,
    "tiered-alloc": _tiered_alloc,
    "uniform-interleave": _uniform_interleave,
    "weighted-interleave": _weighted_interleave,
    "pin-dram": _pin(DRAM),
    "pin-pmem": _pin(PMEM),
    "pin-cxl": _pin(CXL),
    "no-proactive": _no_proactive,
    "no-pinning": _no_pinning,
    "no-striping": _no_striping,
}


def policy_names() -> list[str]:
    return sorted(POLICY_FACTORIES)


def resolve_policy(name: str) -> PolicyFactory:
    try:
        return POLICY_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; registered policies: {policy_names()}"
        ) from None
