"""Named workload builders — the serializable face of task construction.

A :class:`~repro.scenarios.spec.WorkloadSpec` names one of the builders
registered here; the builder turns the spec's plain-data fields into the
actual :class:`~repro.workflows.task.TaskSpec` batch (and, for
open-system sources, per-task arrival times).  Builders are deterministic
functions of ``(spec, seed)`` so scenario cells stay hermetic: any
process that holds the spec reconstructs the byte-identical workload.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from ..core.flags import MemFlag
from ..util.rng import RngFactory
from ..util.units import GBps, GiB
from ..util.validation import require
from ..workflows.arrivals import poisson_arrivals
from ..workflows.ensembles import make_ensemble, paper_batch
from ..workflows.library import (
    data_compression_task,
    data_mining_task,
    deep_learning_task,
    paper_workload_suite,
    scientific_task,
    with_shared_input,
)
from ..workflows.patterns import HotColdPattern, UniformPattern
from ..workflows.task import TaskPhase, TaskSpec, WorkloadClass
from .spec import WorkloadSpec

__all__ = [
    "CLASS_ORDER",
    "VALIDATION_MIXES",
    "WORKLOAD_SOURCES",
    "Workload",
    "build_workload",
    "colocated_mix_tasks",
    "predictor_probe_task",
    "validation_probe_task",
    "workload_sources",
]

CLASS_ORDER = (WorkloadClass.DL, WorkloadClass.DM, WorkloadClass.DC, WorkloadClass.SC)

#: (tasks, arrival times or None) — what every builder returns
Workload = Tuple[List[TaskSpec], Optional[List[float]]]

_Builder = Callable[[WorkloadSpec, int], Workload]


def _class_counts(w: WorkloadSpec, default: int = 0) -> dict:
    counts = w.mix()
    return counts if counts else {cls: default for cls in CLASS_ORDER}


def colocated_mix_tasks(
    instances_per_class,
    *,
    scale: float,
    seed: int = 0,
    classes=CLASS_ORDER,
) -> List[TaskSpec]:
    """N jittered instances of each studied workflow, submission-shuffled
    deterministically so no class systematically allocates first."""
    suite = paper_workload_suite(scale)
    factory = RngFactory(seed)
    specs: List[TaskSpec] = []
    for cls in classes:
        n = instances_per_class if isinstance(instances_per_class, int) else (
            instances_per_class.get(cls, 0)
        )
        if n > 0:
            specs.extend(make_ensemble(suite[cls], n, rng_factory=factory))
    order = factory.stream("submission-order").permutation(len(specs))
    return [specs[i] for i in order]


def _colocated_mix(w: WorkloadSpec, seed: int) -> Workload:
    counts = _class_counts(w, default=2)
    return colocated_mix_tasks(counts, scale=w.scale, seed=seed), None


def _paper_batch(w: WorkloadSpec, seed: int) -> Workload:
    require(w.total_instances > 0, "paper-batch needs total_instances > 0")
    mix = w.mix() or None
    batch = paper_batch(
        w.total_instances, scale=w.scale, mix=mix, rng_factory=RngFactory(seed)
    )
    return batch, None


def _class_ensemble(w: WorkloadSpec, seed: int) -> Workload:
    """``instances`` jittered members of one class; ``request_extra``
    builds the mid-run-expansion SC variant and ``limit_margin`` caps each
    member's ``memory_limit`` at ``footprint x (1 + margin)`` (ext-failures)."""
    require(bool(w.wclass), "class-ensemble needs wclass")
    require(w.instances > 0, "class-ensemble needs instances > 0")
    cls = WorkloadClass[w.wclass]
    if cls is WorkloadClass.SC and w.param("request_extra", False):
        base = scientific_task(scale=w.scale, request_extra=True)
    else:
        base = paper_workload_suite(w.scale)[cls]
    members = make_ensemble(base, w.instances, rng_factory=RngFactory(seed))
    margin = w.param("limit_margin")
    if margin is not None:
        members = [
            replace(m, memory_limit=int(m.footprint * (1.0 + float(margin))))
            for m in members
        ]
    return members, None


def _library_task(w: WorkloadSpec, seed: int) -> Workload:
    """A single un-jittered instance of one studied workflow."""
    require(bool(w.wclass), "library-task needs wclass")
    cls = WorkloadClass[w.wclass]
    return [paper_workload_suite(w.scale)[cls]], None


def _shared_input(w: WorkloadSpec, seed: int) -> Workload:
    """DM instances all reading one staged dataset (§III-C5 strategy 1)."""
    require(w.instances > 0, "shared-input needs instances > 0")
    input_bytes = int(w.param("input_bytes", 0)) or max(1, int(GiB(16) * w.scale))
    base = data_mining_task(scale=w.scale)
    members = [
        with_shared_input(m, str(w.param("dataset", "census-dataset")), input_bytes)
        for m in make_ensemble(base, w.instances, rng_factory=RngFactory(seed))
    ]
    return members, None


def _decomposition(w: WorkloadSpec, seed: int) -> Workload:
    """Two big multi-phase jobs plus a DM stream (ext-decomposition);
    the big jobs come first so harnesses can split them back out."""
    dm_instances = int(w.param("dm_instances", 6))
    big_jobs = [
        deep_learning_task("big-dl", scale=w.scale, epochs=int(w.param("epochs", 3))),
        data_compression_task("big-dc", scale=w.scale),
    ]
    dm_stream = make_ensemble(
        data_mining_task(scale=w.scale), dm_instances, rng_factory=RngFactory(seed)
    )
    return big_jobs + dm_stream, None


def _open_system(w: WorkloadSpec, seed: int) -> Workload:
    """Busy background jobs plus a Poisson DM stream with arrival times."""
    rate = float(w.param("rate", 0.1))
    stream_length = int(w.param("stream_length", 12))
    start = float(w.param("start", 5.0))
    background = [
        deep_learning_task("bg-dl", scale=w.scale),
        scientific_task("bg-sc", scale=w.scale),
    ]
    stream = make_ensemble(
        data_mining_task(scale=w.scale), stream_length, rng_factory=RngFactory(seed)
    )
    arrivals = [0.0] * len(background) + poisson_arrivals(
        rate,
        stream_length,
        rng_factory=RngFactory(seed),
        stream=f"open.{rate}",
        start=start,
    )
    return background + stream, arrivals


def _service_background(w: WorkloadSpec, seed: int) -> Workload:
    """Colocated jobs a service stream arrives on top of.

    ``instances_per_class`` names the long-lived background mix (all
    submitted at t=0); an empty mix means a pure open-loop run where the
    stream is the only load.  Only meaningful inside a service scenario —
    executed as a batch it is just a colocated mix (or a no-op).
    """
    counts = w.mix()
    if not counts:
        return [], None
    tasks = colocated_mix_tasks(counts, scale=w.scale, seed=seed)
    return tasks, [0.0] * len(tasks)


#: validation matrix sensitivity mixes: label -> (compute, lat, bw, demand B/s)
VALIDATION_MIXES: Dict[str, Tuple[float, float, float, float]] = {
    "compute": (1.0, 0.0, 0.0, 0.0),
    "latency": (0.3, 0.7, 0.0, 0.0),
    "bandwidth": (0.3, 0.0, 0.7, GBps(60.0)),
    "blend": (0.4, 0.4, 0.2, GBps(10.0)),
}


def validation_probe_task(name: str, mix: str, *, footprint: int) -> TaskSpec:
    """A single-phase task with a known closed-form slowdown (validation)."""
    compute, lat, bw, demand = VALIDATION_MIXES[mix]
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.GENERIC,
        footprint=footprint,
        wss=footprint,
        phases=(
            TaskPhase(
                name="steady",
                base_time=20.0,
                compute_frac=compute,
                lat_frac=lat,
                bw_frac=bw,
                demand_bandwidth=demand,
                pattern=UniformPattern(),
            ),
        ),
        flags=MemFlag.NONE,
        cores=1,
    )


def _validation_probe(w: WorkloadSpec, seed: int) -> Workload:
    from ..util.units import MiB

    mix = str(w.param("mix", "compute"))
    require(mix in VALIDATION_MIXES, f"unknown validation mix {mix!r}")
    name = str(w.param("name", f"v-{mix}"))
    return [validation_probe_task(name, mix, footprint=MiB(4))], None


def predictor_probe_task(name: str, scale: float) -> TaskSpec:
    """A DM-style task with a large, well-defined hot set and NO flags."""
    footprint = max(1, int(GiB(8) * scale))
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.GENERIC,  # no class default flags either
        footprint=footprint,
        wss=int(footprint * 0.75),
        phases=(
            TaskPhase(
                name="lookup",
                base_time=12.0,
                compute_frac=0.30,
                lat_frac=0.65,
                bw_frac=0.05,
                demand_bandwidth=GBps(2.0),
                pattern=HotColdPattern(hot_fraction=0.40, hot_share=0.90),
            ),
        ),
        flags=MemFlag.NONE,
        cores=2,
    )


def _predictor_probes(w: WorkloadSpec, seed: int) -> Workload:
    runs = int(w.param("runs", 4))
    require(runs > 0, "predictor-probes needs runs > 0")
    return [predictor_probe_task(f"probe-{i}", w.scale) for i in range(runs)], None


WORKLOAD_SOURCES: Dict[str, _Builder] = {
    "colocated-mix": _colocated_mix,
    "paper-batch": _paper_batch,
    "class-ensemble": _class_ensemble,
    "library-task": _library_task,
    "shared-input": _shared_input,
    "decomposition": _decomposition,
    "open-system": _open_system,
    "service-background": _service_background,
    "validation-probe": _validation_probe,
    "predictor-probes": _predictor_probes,
}


def workload_sources() -> list[str]:
    return sorted(WORKLOAD_SOURCES)


def build_workload(w: WorkloadSpec, seed: int) -> Workload:
    """Deterministically realize ``w`` into (tasks, arrival times or None)."""
    try:
        builder = WORKLOAD_SOURCES[w.source]
    except KeyError:
        raise KeyError(
            f"unknown workload source {w.source!r}; "
            f"registered sources: {workload_sources()}"
        ) from None
    return builder(w, seed)
