"""The seeded chaos process: fires scheduled faults as simulation events.

:class:`FaultInjector` walks a :class:`~repro.faults.spec.FaultSchedule`
from a :class:`~repro.sim.process.PeriodicProcess`, dispatches each fault
to the component that owns its recovery path (scheduler for node crashes,
node agent for tier faults, container runtime for pull failures), and
schedules the matching recovery ``duration`` seconds later.  Every random
choice — victim node, straggler pick, pull-failure draws — comes from
named :class:`~repro.util.rng.RngFactory` streams, so two runs with the
same seed inject the same faults into the same victims in the same order.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .. import obs
from ..containers.runtime import ContainerRuntime
from ..memory.tiers import CXL
from ..metrics.collector import MetricsRegistry
from ..resilience import invariants as inv
from ..runtime.node_agent import NodeAgent
from ..runtime.execution import TaskState
from ..scheduler.slurm import SlurmScheduler
from ..sim.engine import SimulationEngine
from ..sim.process import PeriodicProcess
from ..util.rng import RngFactory
from ..util.validation import require
from .spec import FaultKind, FaultSchedule, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministic fault-firing daemon for one environment."""

    def __init__(
        self,
        engine: SimulationEngine,
        agents: Sequence[NodeAgent],
        scheduler: SlurmScheduler,
        containers: ContainerRuntime,
        metrics: MetricsRegistry,
        schedule: FaultSchedule,
        *,
        seed: int = 0,
        interval: float = 1.0,
        tracer=None,
    ) -> None:
        require(len(agents) > 0, "injector needs at least one node")
        self.engine = engine
        self.agents = list(agents)
        self.scheduler = scheduler
        self.containers = containers
        self.metrics = metrics
        self.schedule = schedule
        self.tracer = tracer
        factory = RngFactory(seed)
        self._rng = factory.stream("fault-injector")
        #: dedicated stream for the container runtime's pull-failure draws
        self._pull_rng = factory.stream("fault-injector.pulls")
        self._pending = list(schedule)
        self._cursor = 0
        self._proc = PeriodicProcess(engine, interval, self._tick, "fault-injector")
        #: overlapping IMAGE_PULL_FAILURE windows are refcounted
        self._pull_fault_refs = 0
        self.fired = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._pending and not self._proc.running:
            self._proc.start()

    def stop(self) -> None:
        if self._proc.running:
            self._proc.stop()

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._pending)

    def _tick(self, now: float) -> None:
        while self._cursor < len(self._pending) and self._pending[self._cursor].time <= now:
            self.fire(self._pending[self._cursor])
            self._cursor += 1
        if self.exhausted:
            self._proc.stop()

    # ------------------------------------------------------------------ #
    # firing
    # ------------------------------------------------------------------ #
    def inject_now(self, fault: FaultSpec) -> None:
        """Fire one fault immediately (test/debug hook)."""
        self.fire(fault)

    def fire(self, fault: FaultSpec) -> None:
        handler = {
            FaultKind.NODE_CRASH: self._fire_node_crash,
            FaultKind.TIER_OFFLINE: self._fire_tier_offline,
            FaultKind.TIER_DEGRADED: self._fire_tier_degraded,
            FaultKind.CXL_LINK_FLAP: self._fire_cxl_flap,
            FaultKind.IMAGE_PULL_FAILURE: self._fire_pull_failure,
            FaultKind.TASK_STRAGGLER: self._fire_straggler,
        }[fault.kind]
        injected = handler(fault)
        if not injected:
            self._trace(fault, event="skipped")
            return
        self.fired += 1
        self.metrics.faults.record_injection(fault.kind.value)
        self._trace(fault, event="injected")
        checker = inv.active()
        if checker.enabled:
            # every injection is a conservation hazard: the fault's whole
            # recovery cascade has run by the time the handler returns
            checker.engine(self.engine)
            checker.scheduler(self.scheduler)
            for agent in self.agents:
                checker.memory(agent.memory)

    def _trace(self, fault: FaultSpec, **extra) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                self.engine.now,
                "fault",
                fault.kind.value,
                node=fault.node,
                tier=fault.tier.name if fault.tier is not None else None,
                duration=fault.duration,
                severity=fault.severity,
                **extra,
            )
        if obs.enabled():
            obs.event(
                self.engine.now,
                "fault",
                fault.kind.value,
                node=fault.node,
                tier=fault.tier.name if fault.tier is not None else None,
                **extra,
            )
            if extra.get("event") == "injected":
                obs.counter("faults.fired", 1, kind=fault.kind.value)

    def _recover(self, fault: FaultSpec, action, label: str) -> None:
        """Schedule the recovery action and account its MTTR sample."""
        t0 = self.engine.now

        def recovered() -> None:
            action()
            self.metrics.faults.recovery_times.append(self.engine.now - t0)
            self._trace(fault, event="recovered")

        self.engine.schedule(fault.duration, recovered, f"recover.{label}")

    def _pick_node(self, fault: FaultSpec, *, need_running: bool = False) -> Optional[int]:
        if fault.node is not None:
            if 0 <= fault.node < len(self.agents):
                return fault.node
            return None
        candidates = [
            i
            for i, a in enumerate(self.agents)
            if not a.down and (not need_running or a.running)
        ]
        if not candidates:
            return None
        return candidates[int(self._rng.integers(len(candidates)))]

    # ------------------------------------------------------------------ #
    # per-kind handlers (return False to skip an inapplicable fault)
    # ------------------------------------------------------------------ #
    def _fire_node_crash(self, fault: FaultSpec) -> bool:
        node = self._pick_node(fault)
        if node is None or self.agents[node].down:
            return False
        self.scheduler.node_failed(node, f"node crash at t={self.engine.now:g}")
        self._recover(fault, lambda: self.scheduler.node_restored(node), f"node{node}")
        return True

    def _fire_tier_offline(self, fault: FaultSpec) -> bool:
        node = self._pick_node(fault)
        if node is None:
            return False
        agent = self.agents[node]
        tier = fault.tier
        assert tier is not None
        if not agent.memory.tier_online(tier):
            return False
        agent.handle_tier_offline(tier)
        self._recover(
            fault, lambda: agent.handle_tier_online(tier), f"tier.{tier.name}.n{node}"
        )
        return True

    def _fire_tier_degraded(self, fault: FaultSpec) -> bool:
        node = self._pick_node(fault)
        if node is None:
            return False
        agent = self.agents[node]
        tier = fault.tier
        assert tier is not None
        agent.memory.set_tier_degraded(tier, fault.severity)
        agent.recompute_rates()
        agent.trace(
            "fault", agent.memory.node_id,
            event="tier-degraded", tier=tier.name, scale=fault.severity,
        )

        def restore() -> None:
            agent.memory.clear_tier_degradation(tier)
            agent.recompute_rates()

        self._recover(fault, restore, f"degrade.{tier.name}.n{node}")
        return True

    def _fire_cxl_flap(self, fault: FaultSpec) -> bool:
        node = self._pick_node(fault)
        if node is None:
            return False
        agent = self.agents[node]
        if not agent.memory.tier_online(CXL):
            return False
        agent.handle_tier_offline(CXL)
        self.containers.set_node_cxl(node, False)

        def restore() -> None:
            self.containers.set_node_cxl(node, True)
            agent.handle_tier_online(CXL)

        self._recover(fault, restore, f"cxl-flap.n{node}")
        return True

    def _fire_pull_failure(self, fault: FaultSpec) -> bool:
        self._pull_fault_refs += 1
        self.containers.set_pull_failures(fault.severity, self._pull_rng)

        def restore() -> None:
            self._pull_fault_refs -= 1
            if self._pull_fault_refs <= 0:
                self.containers.set_pull_failures(0.0)

        self._recover(fault, restore, "pull-failure")
        return True

    def _fire_straggler(self, fault: FaultSpec) -> bool:
        node = self._pick_node(fault, need_running=True)
        if node is None:
            return False
        agent = self.agents[node]
        running = sorted(
            name
            for name, te in agent.running.items()
            if te.state is TaskState.RUNNING
        )
        if not running:
            return False
        victim = running[int(self._rng.integers(len(running)))]
        te = agent.running[victim]
        te.rate_scale = fault.severity
        agent.on_task_change(te)
        agent.trace("fault", victim, event="straggler", scale=fault.severity)

        def restore() -> None:
            if te.state is TaskState.RUNNING:
                te.rate_scale = 1.0
                agent.on_task_change(te)

        self._recover(fault, restore, f"straggler.{victim}")
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<FaultInjector fired={self.fired}/{len(self._pending)} "
            f"cursor={self._cursor}>"
        )
