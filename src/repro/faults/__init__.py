"""Fault injection: declarative chaos schedules and their recovery paths."""

from .injector import FaultInjector
from .spec import FaultKind, FaultSchedule, FaultSpec

__all__ = ["FaultInjector", "FaultKind", "FaultSchedule", "FaultSpec"]
