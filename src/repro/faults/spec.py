"""Declarative fault specifications.

A fault schedule is data, not code: a sorted list of frozen
:class:`FaultSpec` records saying *what* breaks, *where*, *when*, and for
*how long*.  The :class:`~repro.faults.injector.FaultInjector` turns the
schedule into simulation events; keeping the two separate makes chaos
scenarios reviewable, serialisable, and — because random schedules are
drawn from named :class:`~repro.util.rng.RngFactory` streams — exactly
reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from ..memory.tiers import SWAP, TierKind
from ..util.rng import RngFactory
from ..util.validation import check_fraction, check_non_negative, require

__all__ = ["FaultKind", "FaultSpec", "FaultSchedule"]


class FaultKind(enum.Enum):
    """The disturbance taxonomy the chaos harness knows how to inject."""

    #: a whole node dies; running tasks are killed, memory is lost
    NODE_CRASH = "node-crash"
    #: a memory tier's device fails; pages evacuate to survivors
    TIER_OFFLINE = "tier-offline"
    #: a tier delivers only a fraction of its rated bandwidth
    TIER_DEGRADED = "tier-degraded"
    #: the node's shared-CXL link drops: local CXL pages evacuate and
    #: staged images degrade to network pulls
    CXL_LINK_FLAP = "cxl-link-flap"
    #: the registry refuses/corrupts network pulls with some probability
    IMAGE_PULL_FAILURE = "image-pull-failure"
    #: one running task slows to a fraction of its normal progress rate
    TASK_STRAGGLER = "task-straggler"


#: kinds that need a ``tier`` operand
_TIERED = (FaultKind.TIER_OFFLINE, FaultKind.TIER_DEGRADED)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled disturbance.

    ``severity`` is kind-specific: the surviving bandwidth fraction for
    ``TIER_DEGRADED``, the failure probability for ``IMAGE_PULL_FAILURE``,
    and the surviving progress-rate fraction for ``TASK_STRAGGLER``.
    ``node=None`` lets the injector pick a live node from its own stream.
    """

    kind: FaultKind
    time: float
    node: Optional[int] = None
    tier: Optional[TierKind] = None
    #: seconds until the matching recovery action fires
    duration: float = 30.0
    severity: float = 0.5

    def __post_init__(self) -> None:
        check_non_negative(self.time, "time")
        check_non_negative(self.duration, "duration")
        check_fraction(self.severity, "severity")
        if self.kind in _TIERED:
            require(self.tier is not None, f"{self.kind.value} needs a tier")
            require(self.tier != SWAP, "swap cannot fail (it is the backstop)")

    @property
    def sort_key(self) -> tuple[float, str, float]:
        return (self.time, self.kind.value, -1.0 if self.node is None else self.node)


class FaultSchedule:
    """An ordered collection of :class:`FaultSpec` records."""

    def __init__(self, faults: Optional[list[FaultSpec]] = None) -> None:
        self._faults: list[FaultSpec] = sorted(faults or [], key=lambda f: f.sort_key)

    def add(self, fault: FaultSpec) -> "FaultSchedule":
        self._faults.append(fault)
        self._faults.sort(key=lambda f: f.sort_key)
        return self

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __getitem__(self, i: int) -> FaultSpec:
        return self._faults[i]

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self._faults:
            out[f.kind.value] = out.get(f.kind.value, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        *,
        horizon: float,
        n_nodes: int,
        seed: int = 0,
        rates: Mapping[FaultKind, float],
        duration: float = 30.0,
        severity: float = 0.5,
        tier: TierKind = TierKind.CXL,
    ) -> "FaultSchedule":
        """Draw a Poisson fault schedule over ``[0, horizon)``.

        ``rates`` maps each fault kind to its mean arrival rate in faults
        per second; inter-arrival gaps are exponential, drawn from one
        named stream per kind so adding a kind never perturbs the others.
        """
        require(horizon > 0, "horizon must be positive")
        require(n_nodes > 0, "n_nodes must be positive")
        factory = RngFactory(seed)
        faults: list[FaultSpec] = []
        for kind in sorted(rates, key=lambda k: k.value):
            rate = rates[kind]
            if rate <= 0:
                continue
            rng = factory.stream(f"faults.{kind.value}")
            t = float(rng.exponential(1.0 / rate))
            while t < horizon:
                faults.append(
                    FaultSpec(
                        kind=kind,
                        time=t,
                        node=int(rng.integers(n_nodes)),
                        tier=tier if kind in _TIERED else None,
                        duration=duration,
                        severity=severity,
                    )
                )
                t += float(rng.exponential(1.0 / rate))
        return cls(faults)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<FaultSchedule n={len(self._faults)} kinds={self.kinds()}>"
