"""Extension experiment — containerized colocation vs bare-metal exclusivity.

The paper's premise (§I/§II-B): traditional HPC allocates whole nodes per
job, leaving memory stranded and cores idle; containerization "enables
efficient resource utilization by colocating multiple workflows on the
same host".  We run the same batch both ways on the same IMME cluster
(the registered ``ext-colocation`` scenarios — the ``exclusive`` flag is
part of the spec) and report makespan and core utilisation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..scenarios.build import realize
from ..scenarios.paper import ext_colocation_family
from ..scenarios.spec import ScenarioSpec
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_colocation"]


def _colocation_cell(scenario: ScenarioSpec) -> list[float]:
    """[makespan, core utilisation %, mean queue wait] for one mode."""
    realized = realize(scenario)
    batch = realized.tasks
    metrics = realized.execute()
    core_seconds = sum(
        t.execution_time * spec.cores
        for t, spec in zip((metrics.get(s.name) for s in batch), batch)
        if t.done
    )
    util = core_seconds / (
        metrics.makespan() * scenario.n_nodes * scenario.cores_per_node
    )
    completed = metrics.completed()
    mean_wait = sum(t.queue_wait for t in completed) / max(1, len(completed))
    return [metrics.makespan(), 100.0 * util, mean_wait]


def run_colocation(
    *,
    scale: float = SCALE,
    total_instances: int = 16,
    n_nodes: int = 2,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_colocation_family(
        scale=scale,
        total_instances=total_instances,
        n_nodes=n_nodes,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="ext-colocation",
        description=(
            f"Containerized colocation vs bare-metal exclusivity: "
            f"{total_instances} jobs on {n_nodes} nodes"
        ),
        xlabels=["makespan (s)", "mean core util (%)", "mean queue wait (s)"],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ext-colocation", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_colocation_cell, scenario)
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)

    speedup = result.value("bare-metal", "makespan (s)") / result.value(
        "containerized", "makespan (s)"
    )
    result.notes.append(
        f"colocation completes the batch {speedup:.1f}x faster by packing "
        "workflows onto shared nodes (§I's utilization premise)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_colocation().to_table())
