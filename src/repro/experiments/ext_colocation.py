"""Extension experiment — containerized colocation vs bare-metal exclusivity.

The paper's premise (§I/§II-B): traditional HPC allocates whole nodes per
job, leaving memory stranded and cores idle; containerization "enables
efficient resource utilization by colocating multiple workflows on the
same host".  We run the same batch both ways on the same IMME cluster and
report makespan and core utilisation.
"""

from __future__ import annotations

from ..envs.environments import EnvKind, make_environment
from ..metrics.collector import MetricsRegistry
from ..util.rng import RngFactory
from ..workflows.ensembles import paper_batch
from .common import CHUNK, SCALE, FigureResult

__all__ = ["run_colocation"]


def _core_utilization(metrics: MetricsRegistry, total_cores: int) -> float:
    """Busy core-seconds over available core-seconds for the batch."""
    done = metrics.completed()
    busy = sum(t.execution_time for t in done)  # 1 core-weight per task entry
    # weight by actual cores: execution_time already per task; recompute
    return busy / max(1e-9, metrics.makespan() * total_cores)


def run_colocation(
    *,
    scale: float = SCALE,
    total_instances: int = 16,
    n_nodes: int = 2,
    chunk_size: int = CHUNK,
    seed: int = 0,
) -> FigureResult:
    from ..workflows.task import WorkloadClass

    # long-job-heavy mix: exclusivity serialises these into waves
    mix = {
        WorkloadClass.DL: 2,
        WorkloadClass.SC: 6,
        WorkloadClass.DC: 4,
        WorkloadClass.DM: 4,
    }
    batch = paper_batch(
        total_instances, scale=scale, mix=mix, rng_factory=RngFactory(seed)
    )
    total = sum(s.max_footprint for s in batch)
    cores_per_node = 64

    result = FigureResult(
        figure="ext-colocation",
        description=(
            f"Containerized colocation vs bare-metal exclusivity: "
            f"{len(batch)} jobs on {n_nodes} nodes"
        ),
        xlabels=["makespan (s)", "mean core util (%)", "mean queue wait (s)"],
    )
    for label, exclusive in (("bare-metal", True), ("containerized", False)):
        env = make_environment(
            EnvKind.IMME,
            n_nodes=n_nodes,
            dram_capacity=int(total * 0.5 / n_nodes),
            chunk_size=chunk_size,
            cores_per_node=cores_per_node,
        )
        metrics = env.run_batch(batch, exclusive=exclusive, max_time=1e7)
        core_seconds = sum(
            t.execution_time * spec.cores
            for t, spec in zip(
                (metrics.get(s.name) for s in batch), batch
            )
            if t.done
        )
        util = core_seconds / (metrics.makespan() * n_nodes * cores_per_node)
        mean_wait = sum(t.queue_wait for t in metrics.completed()) / max(
            1, len(metrics.completed())
        )
        result.add_series(label, [metrics.makespan(), 100.0 * util, mean_wait])
        env.stop()

    speedup = result.value("bare-metal", "makespan (s)") / result.value(
        "containerized", "makespan (s)"
    )
    result.notes.append(
        f"colocation completes the batch {speedup:.1f}x faster by packing "
        "workflows onto shared nodes (§I's utilization premise)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_colocation().to_table())
