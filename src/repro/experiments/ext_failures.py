"""Extension experiment — workflow failures under fixed memory allocations.

Design objective 1 (§III-A): "reduce workflow failures due to limited
memory".  §IV-D1 observes that under IMME "workflows that require
additional memory continue to execute by expanding their memory footprint
on the tiered memory which would otherwise crash due to limited local
memory or fixed memory allocations".

We reproduce the mechanism directly: an ensemble of scientific workflows
runs with a cgroup ``memory.max`` equal to its requested allocation plus a
small margin, and every instance requests extra frontier memory mid-run
(the registered ``ext-failures`` scenarios).  Without tiered memory the
expansion lands in charged local memory/swap and the OOM killer fires;
with the Tiered Memory Manager the CAP-flagged expansion goes to CXL
outside the cap and every workflow survives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..scenarios.build import realize
from ..scenarios.paper import ext_failures_family
from ..scenarios.spec import ScenarioSpec
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_failures"]


def _failures_cell(scenario: ScenarioSpec) -> list[float]:
    """[completed, oom-killed, failed, makespan] for one environment."""
    metrics = realize(scenario).execute()
    completed = len(metrics.completed())
    # oom-killed counts actual cgroup OOM kills; "failed" is any failure
    return [
        float(completed),
        float(metrics.total_oom_kills()),
        float(len(metrics.failed())),
        metrics.makespan() if completed else 0.0,
    ]


def run_failures(
    *,
    scale: float = SCALE,
    instances: int = 6,
    limit_margin: float = 0.05,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_failures_family(
        scale=scale,
        instances=instances,
        limit_margin=limit_margin,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="ext-failures",
        description=(
            f"Workflow failures: {instances} SC instances with fixed memory "
            f"allocations (+{int(limit_margin * 100)}% margin), each requesting "
            "~25% extra memory mid-run"
        ),
        xlabels=["completed", "oom-killed", "failed", "makespan (s)"],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ext-failures", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_failures_cell, scenario)
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)
    result.notes.append(
        "CBE's expansions hit the container's fixed allocation (OOM kill); "
        "TME's oblivious demand allocation also places them in charged local "
        "memory; only the manager's CAP-flagged CXL expansion survives (§IV-D1)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_failures().to_table())
