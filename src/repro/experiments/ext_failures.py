"""Extension experiment — workflow failures under fixed memory allocations.

Design objective 1 (§III-A): "reduce workflow failures due to limited
memory".  §IV-D1 observes that under IMME "workflows that require
additional memory continue to execute by expanding their memory footprint
on the tiered memory which would otherwise crash due to limited local
memory or fixed memory allocations".

We reproduce the mechanism directly: an ensemble of scientific workflows
runs with a cgroup ``memory.max`` equal to its requested allocation plus a
small margin, and every instance requests extra frontier memory mid-run.
Without tiered memory the expansion lands in charged local memory/swap and
the OOM killer fires; with the Tiered Memory Manager the CAP-flagged
expansion goes to CXL outside the cap and every workflow survives.
"""

from __future__ import annotations

from dataclasses import replace

from ..envs.environments import EnvKind, make_environment
from ..util.rng import RngFactory
from ..workflows.ensembles import make_ensemble
from ..workflows.library import scientific_task
from .common import CHUNK, SCALE, FigureResult

__all__ = ["run_failures"]


def run_failures(
    *,
    scale: float = SCALE,
    instances: int = 6,
    limit_margin: float = 0.05,
    chunk_size: int = CHUNK,
    seed: int = 0,
) -> FigureResult:
    base = scientific_task(scale=scale, request_extra=True)
    members = [
        replace(m, memory_limit=int(m.footprint * (1.0 + limit_margin)))
        for m in make_ensemble(base, instances, rng_factory=RngFactory(seed))
    ]
    total = sum(m.footprint for m in members)

    result = FigureResult(
        figure="ext-failures",
        description=(
            f"Workflow failures: {instances} SC instances with fixed memory "
            f"allocations (+{int(limit_margin * 100)}% margin), each requesting "
            "~25% extra memory mid-run"
        ),
        xlabels=["completed", "oom-killed", "failed", "makespan (s)"],
    )
    for kind in (EnvKind.CBE, EnvKind.TME, EnvKind.IMME):
        env = make_environment(
            kind, dram_capacity=int(total * 1.2), chunk_size=chunk_size
        )
        metrics = env.run_batch(members, max_time=1e7)
        completed = len(metrics.completed())
        failed = len(metrics.failed())
        # oom-killed counts actual cgroup OOM kills; "failed" is any failure
        oom_killed = metrics.total_oom_kills()
        makespan = metrics.makespan() if completed else 0.0
        result.add_series(
            kind.name, [float(completed), float(oom_killed), float(failed), makespan]
        )
        env.stop()
    result.notes.append(
        "CBE's expansions hit the container's fixed allocation (OOM kill); "
        "TME's oblivious demand allocation also places them in charged local "
        "memory; only the manager's CAP-flagged CXL expansion survives (§IV-D1)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_failures().to_table())
