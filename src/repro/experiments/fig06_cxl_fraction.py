"""Figure 6 — varying the CXL share of workflow memory (10–50 %).

Each data point forces the node's DRAM down so the stated percentage of
the workload's memory *must* live on CXL.  TME places that share
obliviously (a fixed slice of every allocation); IMME picks *which* pages
go remote using workflow characteristics.  Paper shape: TME's execution
time climbs with the CXL share; IMME stays nearly flat, up to 80 % better.
"""

from __future__ import annotations

from ..envs.environments import EnvKind
from ..metrics.report import improvement
from .fig05_exec_time import DEFAULT_MIX
from .common import (
    SCALE,
    CHUNK,
    FigureResult,
    build_env,
    colocated_mix,
    per_class_exec_time,
    run_and_collect,
)

__all__ = ["run_fig06"]


def run_fig06(
    *,
    scale: float = SCALE,
    instances_per_class: "int | dict | None" = None,
    fractions: tuple[float, ...] = (0.10, 0.20, 0.30, 0.40, 0.50),
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
) -> FigureResult:
    if instances_per_class is None:
        instances_per_class = dict(DEFAULT_MIX)
    specs = colocated_mix(instances_per_class, scale=scale, seed=seed)
    result = FigureResult(
        figure="fig06",
        description="Fig 6: mean normalised slowdown vs. CXL share of workflow memory",
        xlabels=[f"{int(f * 100)}%" for f in fractions],
    )
    rows = {"TME": [], "IMME": []}
    for f in fractions:
        for kind in (EnvKind.TME, EnvKind.IMME):
            env = build_env(
                kind,
                specs,
                dram_fraction=dram_fraction,
                chunk_size=chunk_size,
                cxl_fraction=f if kind is EnvKind.TME else None,
            )
            metrics = run_and_collect(env, specs)
            times = per_class_exec_time(metrics)
            # normalised mean: every class weighs equally regardless of its
            # absolute duration (DM's seconds would otherwise vanish in DL's)
            ideal = {s.wclass: s.ideal_duration for s in specs}
            rows[kind.name].append(
                float(sum(times[c] / ideal[c] for c in times) / len(times))
            )
    for name, vals in rows.items():
        result.add_series(name, vals)

    gain = max(
        improvement(t, i) for t, i in zip(result.series["TME"], result.series["IMME"])
    )
    result.notes.append(f"IMME max improvement vs TME: {100 * gain:.0f}% (paper: up to 80%)")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig06().to_table())
