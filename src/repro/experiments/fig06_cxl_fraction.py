"""Figure 6 — varying the CXL share of workflow memory (10–50 %).

Each data point forces the node's DRAM down so the stated percentage of
the workload's memory *must* live on CXL.  TME places that share
obliviously (a fixed slice of every allocation); IMME picks *which* pages
go remote using workflow characteristics.  Paper shape: TME's execution
time climbs with the CXL share; IMME stays nearly flat, up to 80 % better.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..metrics.report import improvement
from ..scenarios.build import realize
from ..scenarios.paper import fig06_family
from ..scenarios.spec import ScenarioSpec
from .common import (
    SCALE,
    CHUNK,
    FigureResult,
    SweepSpec,
    family_provenance,
    per_class_exec_time,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_fig06"]


def _fig06_cell(scenario: ScenarioSpec) -> float:
    """Normalised mean slowdown: every class weighs equally regardless of
    its absolute duration (DM's seconds would otherwise vanish in DL's)."""
    realized = realize(scenario)
    times = per_class_exec_time(realized.execute())
    ideal = {s.wclass: s.ideal_duration for s in realized.tasks}
    return float(sum(times[c] / ideal[c] for c in times) / len(times))


def run_fig06(
    *,
    scale: float = SCALE,
    instances_per_class: "int | dict | None" = None,
    fractions: tuple[float, ...] = (0.10, 0.20, 0.30, 0.40, 0.50),
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = fig06_family(
        scale=scale,
        instances_per_class=instances_per_class,
        fractions=fractions,
        dram_fraction=dram_fraction,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="fig06",
        description="Fig 6: mean normalised slowdown vs. CXL share of workflow memory",
        xlabels=[f"{int(f * 100)}%" for f in fractions],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("fig06", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_fig06_cell, scenario)
    cells = sweep(spec, jobs=jobs, cache=cache)
    for kind in ("TME", "IMME"):
        result.add_series(kind, [cells[f"{kind}:{int(f * 100)}"] for f in fractions])

    gain = max(
        improvement(t, i) for t, i in zip(result.series["TME"], result.series["IMME"])
    )
    result.notes.append(f"IMME max improvement vs TME: {100 * gain:.0f}% (paper: up to 80%)")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig06().to_table())
