"""Figure 8 — available DRAM as a fraction of the working-set size.

Each workflow class runs with the node's DRAM capped at a percentage of
the workload's aggregate WSS, under IE (DRAM+swap only), TME and IMME.
Paper shape: the IE makespan explodes as DRAM shrinks (swap), tiered
memory absorbs most of it, and IMME's class-aware placement stays closest
to flat — with the latency-sensitive (DM) and capacity-hungry (SC)
classes showing the biggest IMME-vs-IE gaps (85 % / 71 % on average).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..envs.environments import EnvKind
from ..metrics.report import improvement
from ..workflows.task import WorkloadClass
from ..scenarios.paper import fig08_family
from .common import (
    SCALE,
    CHUNK,
    CLASS_ORDER,
    FigureResult,
    SweepSpec,
    family_provenance,
    scenario_makespan,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_fig08"]

ENVS = (EnvKind.IE, EnvKind.TME, EnvKind.IMME)


def run_fig08(
    *,
    scale: float = SCALE,
    instances_per_class: int = 2,
    fractions: tuple[float, ...] = (0.25, 0.50, 0.75, 1.00),
    chunk_size: int = CHUNK,
    seed: int = 0,
    classes: tuple[WorkloadClass, ...] = CLASS_ORDER,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = fig08_family(
        scale=scale,
        instances_per_class=instances_per_class,
        fractions=fractions,
        chunk_size=chunk_size,
        seed=seed,
        classes=classes,
    )
    result = FigureResult(
        figure="fig08",
        description="Fig 8: makespan (s) vs. DRAM as % of working-set size",
        xlabels=[f"{int(f * 100)}%" for f in fractions],
        provenance=family_provenance(family, seed),
    )
    gains_vs_ie: dict[WorkloadClass, list[float]] = {c: [] for c in classes}
    gains_vs_tme: dict[WorkloadClass, list[float]] = {c: [] for c in classes}
    spec = SweepSpec("fig08", base_seed=seed)
    for scenario in family:
        spec.add_scenario(scenario_makespan, scenario)
    cells = sweep(spec, jobs=jobs, cache=cache)
    for cls in classes:
        for kind in ENVS:
            result.add_series(
                f"{kind.name}:{cls.name}",
                [cells[f"{kind.name}:{cls.name}:{int(f * 100)}"] for f in fractions],
            )
    for cls in classes:
        for i in range(len(fractions)):
            ie = result.series[f"IE:{cls.name}"][i]
            tme = result.series[f"TME:{cls.name}"][i]
            ours = result.series[f"IMME:{cls.name}"][i]
            gains_vs_ie[cls].append(improvement(ie, ours))
            gains_vs_tme[cls].append(improvement(tme, ours))
    for cls in classes:
        mean_ie = 100 * sum(gains_vs_ie[cls]) / len(gains_vs_ie[cls])
        mean_tme = 100 * sum(gains_vs_tme[cls]) / len(gains_vs_tme[cls])
        result.notes.append(
            f"{cls.name}: IMME avg improvement vs IE {mean_ie:.0f}%, vs TME {mean_tme:.0f}% "
            f"(paper avgs vs IE: DL 25/DM 85/DC 35/SC 71; vs TME: DL 8/DM 31/DC 9/SC 22)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig08().to_table())
