"""Run every paper experiment and emit a combined report.

``python -m repro.experiments`` regenerates all figures at laptop scale
and prints their tables; ``--out FILE`` also writes a markdown report
(the source of EXPERIMENTS.md's measured numbers).  ``--jobs N`` fans
independent experiments out across ``N`` worker processes (0 = all
cores) — tables are byte-identical to the sequential run because results
are collected in registry order and every experiment is hermetic.

Hermeticity also makes results cacheable: by default every run consults
the content-addressed result cache (:mod:`repro.cache`), at two levels —
whole experiments here, and individual sweep cells inside the harnesses
that accept ``cache=``.  A warm re-run serves everything from disk with
byte-identical tables; editing any module in an experiment's import
closure (or bumping the repro version) invalidates exactly the entries
that depend on it.  ``--no-cache`` restores pure live execution,
``--cache-dir`` relocates the store, ``--cache-stats`` prints the
per-experiment hit/miss/invalidation counts.

Execution is supervised (:mod:`repro.resilience`): failing experiments
are retried with deterministic backoff (``--retries``), optionally
deadline-bounded (``--cell-timeout``), and quarantined instead of
killing the run — the process then exits non-zero with a per-experiment
failure table.  Progress is journaled durably next to the cache, so
``--resume`` continues a killed run, and ``--check-invariants`` turns
the simulator's conservation laws into hard runtime assertions.
"""

from __future__ import annotations

import argparse
import contextlib
import inspect
import sys
import time
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from .. import obs
from ..resilience import (
    InvariantChecker,
    RetryPolicy,
    RunJournal,
    SweepFailure,
    failure_table,
    invariants as _invariants,
    journal_path,
    supervised_map,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

from .cold_pages import run_cold_pages
from .common import FigureResult
from .fig01_motivation import run_fig01
from .fig05_exec_time import run_fig05
from .fig06_cxl_fraction import run_fig06
from .fig07_alloc_policy import run_fig07
from .fig08_dram_fraction import run_fig08
from .fig09_page_faults import run_fig09
from .ext_colocation import run_colocation
from .ext_decomposition import run_decomposition
from .ext_failures import run_failures
from .ext_open_system import run_open_system
from .ext_predictor import run_predictor_learning
from .ext_resilience import run_resilience
from .ext_shared_inputs import run_shared_inputs
from .ext_steady_state import run_steady_state
from .ext_utilization import run_utilization
from .fig10_scalability import run_fig10
from .ablations import run_ablations
from .validation import run_validation
from .fig11_concurrency import run_fig11

__all__ = ["ALL_EXPERIMENTS", "run_all", "main"]

ALL_EXPERIMENTS: dict[str, Callable[[], FigureResult]] = {
    "validation": run_validation,
    "fig01": run_fig01,
    "cold-pages": run_cold_pages,
    "fig05": run_fig05,
    "fig06": run_fig06,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "ext-shared-inputs": run_shared_inputs,
    "ext-failures": run_failures,
    "ext-resilience": run_resilience,
    "ext-open-system": run_open_system,
    "ext-steady-state": run_steady_state,
    "ext-colocation": run_colocation,
    "ext-predictor": run_predictor_learning,
    "ext-decomposition": run_decomposition,
    "ext-utilization": run_utilization,
    "ablations": run_ablations,
}


#: ``cache_dir`` sentinel: open the default store (REPRO_CACHE_DIR or
#: ``~/.cache/repro/cells``); pass ``None`` to disable caching entirely.
DEFAULT_CACHE = "auto"


def _open_cache(cache_dir: Optional[str]) -> "Optional[ResultCache]":
    if cache_dir is None:
        return None
    from ..cache.store import ResultCache, default_cache_dir

    return ResultCache(default_cache_dir() if cache_dir == DEFAULT_CACHE else cache_dir)


def _experiment_key(name: str, fn: Callable[..., FigureResult]):
    """Whole-experiment cache key (kwargs-free: ``jobs``/``cache`` never
    change the result), or ``None`` when no stable key exists."""
    from ..cache.keys import CacheKeyError, cell_keys

    try:
        return cell_keys(fn, {}, seed=0, extra={"experiment": name})
    except CacheKeyError:  # pragma: no cover - registry fns are plain
        return None


def _run_one(
    name: str, jobs: int = 1, cache_dir: Optional[str] = None
) -> tuple[FigureResult, float, Optional[dict[str, int]]]:
    """Run one experiment, forwarding ``jobs`` to harnesses whose inner
    sweeps accept it.  Top-level and picklable, so it can be a pool task.

    With a cache, the whole experiment's :class:`FigureResult` is served
    from disk when still valid; on a miss the harness runs (with per-cell
    caching when it accepts ``cache=``) and the result is written back.
    Returns ``(result, elapsed, cache stats or None)`` — stats come from
    this process's cache instance, so pool workers report their own.
    """
    fn = ALL_EXPERIMENTS[name]
    cache = _open_cache(cache_dir)
    t0 = time.perf_counter()

    def execute() -> FigureResult:
        kwargs: dict[str, Any] = {}
        params = inspect.signature(fn).parameters
        if jobs != 1 and "jobs" in params:
            kwargs["jobs"] = jobs
        if cache is not None and "cache" in params:
            kwargs["cache"] = cache
        if cache is not None:
            key = _experiment_key(name, fn)
            hit, result = cache.get(key)
            if not hit:
                result = fn(**kwargs)
                cache.put(key, result)
            return result
        return fn(**kwargs)

    # Each experiment runs under its own child telemetry context, merged
    # back with ``scope=name`` so counters carry an ``exp=`` label.  The
    # same path runs inline (merging into the run context) and in pool
    # workers (merging into the worker context, which the executor then
    # forwards), so ``obs summary`` rollups match for any ``jobs``.
    parent = obs.active()
    if parent.enabled:
        child = obs.Telemetry(run_id=name)
        with obs.session(child), obs.span("experiment", experiment=name):
            result = execute()
        parent.merge(child.snapshot(), scope=name)
    else:
        result = execute()
    elapsed = time.perf_counter() - t0
    stats = cache.stats.as_dict() if cache is not None else None
    return result, elapsed, stats


def _run_one_cell(item: "tuple[str, int, Optional[str]]") -> tuple[FigureResult, float, Optional[dict[str, int]]]:
    name, jobs, cache_dir = item
    return _run_one(name, jobs=jobs, cache_dir=cache_dir)


def _format_cache_stats(per_experiment: "dict[str, Optional[dict[str, int]]]") -> str:
    lines = ["result cache (hits / misses / invalidated / corrupt / written):"]
    total = {k: 0 for k in ("hits", "misses", "invalidations", "corrupt", "writes")}
    for name, stats in per_experiment.items():
        if stats is None:
            lines.append(f"  {name:<18} (cache disabled)")
            continue
        lines.append(
            f"  {name:<18} {stats['hits']:>4} / {stats['misses']:>4} / "
            f"{stats['invalidations']:>4} / {stats['corrupt']:>4} / {stats['writes']:>4}"
        )
        for k in total:
            total[k] += stats[k]
    lines.append(
        f"  {'total':<18} {total['hits']:>4} / {total['misses']:>4} / "
        f"{total['invalidations']:>4} / {total['corrupt']:>4} / {total['writes']:>4}"
    )
    return "\n".join(lines)


def run_all(
    names: Optional[Sequence[str]] = None,
    *,
    verbose: bool = True,
    jobs: int = 1,
    cache_dir: Optional[str] = DEFAULT_CACHE,
    cache_stats: bool = False,
    telemetry_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 2,
    cell_timeout: Optional[float] = None,
    check_invariants: bool = False,
) -> dict[str, FigureResult]:
    """Run the selected experiments (all by default), returning results.

    With ``jobs != 1`` and several experiments selected, whole experiments
    fan out across a process pool; a single selected experiment instead
    forwards ``jobs`` to its internal sweep.  Results (and printed tables)
    keep selection order either way.

    ``cache_dir`` controls the result cache: the default sentinel opens
    the standard store, a path opens that store, and ``None`` disables
    caching (pure live execution, zero cache overhead).  Cached re-runs
    produce byte-identical tables; ``cache_stats=True`` prints the
    per-experiment hit/miss/invalidation summary.

    ``telemetry_dir`` turns on the :mod:`repro.obs` layer for the run and
    writes the merged record (run.json, events.jsonl, trace.json,
    metrics.csv) under that directory.

    Execution is *supervised* (:mod:`repro.resilience`): each experiment
    gets up to ``retries`` attempts (deterministic backoff between them),
    optionally bounded by ``cell_timeout`` seconds of wall clock, and a
    failing experiment is quarantined instead of killing the run — the
    others complete, then a :class:`~repro.resilience.SweepFailure`
    carrying the per-experiment failures (and the partial results) is
    raised.  When caching is on, every commit is recorded in the fsync'd
    ``journal.jsonl`` next to the cache entries; ``resume=True`` replays
    that journal and serves journal-committed experiments straight from
    the cache without dispatching a worker, so a run killed mid-sweep
    (even SIGKILL) continues where it stopped with byte-identical output.
    ``check_invariants=True`` installs the runtime
    :class:`~repro.resilience.InvariantChecker` for the run (inherited by
    forked workers), turning the simulator's conservation laws into hard
    assertions.
    """
    selected = list(names) if names else list(ALL_EXPERIMENTS)
    for name in selected:
        if name not in ALL_EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; choose from {list(ALL_EXPERIMENTS)}")
    if resume and cache_dir is None:
        raise ValueError("resume=True needs the result cache; drop --no-cache")
    cache = _open_cache(cache_dir)
    telemetry = (
        obs.Telemetry("experiments", {"jobs": jobs, "selected": list(selected)})
        if telemetry_dir
        else obs.NULL
    )
    inner_jobs = jobs if (jobs != 1 and len(selected) == 1) else 1
    outer_jobs = 1 if inner_jobs != 1 else jobs
    resumed: dict[str, tuple[FigureResult, float, Optional[dict[str, int]]]] = {}
    with contextlib.ExitStack() as stack:
        stack.enter_context(obs.session(telemetry))
        stack.enter_context(obs.span("experiments", count=len(selected)))
        if check_invariants:
            # installed before the pool forks, so workers inherit it
            stack.enter_context(_invariants.session(InvariantChecker()))
        journal: Optional[RunJournal] = None
        committed: set[str] = set()
        if cache is not None:
            jpath = journal_path(cache.root)
            if resume:
                committed = RunJournal.load_state(jpath).committed & set(selected)
            journal = stack.enter_context(RunJournal(jpath))
        run_names: list[str] = []
        for name in selected:
            if name in committed:
                # journal says committed: serve from the content-addressed
                # cache without dispatching; a stale entry (code moved
                # underneath the result) degrades to a live recompute
                t0 = time.perf_counter()
                hit, result = cache.get(_experiment_key(name, ALL_EXPERIMENTS[name]))
                if hit:
                    stats = {k: 0 for k in ("hits", "misses", "invalidations",
                                            "corrupt", "writes", "uncacheable")}
                    stats["hits"] = 1
                    resumed[name] = (result, time.perf_counter() - t0, stats)
                    continue
            run_names.append(name)
        if journal is not None:
            journal.run_started(
                "experiments", run_names, resumed=sorted(resumed), jobs=jobs
            )
            for name in resumed:
                journal.cell_committed(name, cached=True)
        sup = supervised_map(
            _run_one_cell,
            [(name, inner_jobs, cache_dir) for name in run_names],
            keys=run_names,
            jobs=outer_jobs,
            deadline=cell_timeout,
            retry=RetryPolicy(max_attempts=max(1, retries)),
            journal=journal,
        )
        if journal is not None:
            journal.run_completed(failures=len(sup.failures))
    if telemetry_dir:
        paths = obs.write_run_dir(telemetry.snapshot(), telemetry_dir)
        print(f"telemetry: {paths['run']} (trace: {paths['trace']})")
    outcomes = dict(resumed)
    failed = {f.key for f in sup.failures}
    for name, outcome in zip(run_names, sup.results):
        if name not in failed:
            outcomes[name] = outcome
    results: dict[str, FigureResult] = {}
    per_experiment: dict[str, Optional[dict[str, int]]] = {}
    for name in selected:
        if name not in outcomes:
            continue
        result, elapsed, stats = outcomes[name]
        results[name] = result
        per_experiment[name] = stats
        if verbose:
            line = f"  [{name} regenerated in {elapsed:.1f}s"
            if name in resumed:
                line = f"  [{name} resumed from journal in {elapsed:.1f}s"
            if stats is not None:
                line += (
                    f"; cache: {stats['hits']} hits, {stats['misses']} misses"
                    + (f", {stats['invalidations']} invalidated" if stats["invalidations"] else "")
                )
            print(result.to_table())
            print(line + "]\n")
    if cache_stats:
        print(_format_cache_stats(per_experiment))
    if sup.failures:
        raise SweepFailure(sup.failures, results=results)
    return results


def to_markdown(results: dict[str, FigureResult]) -> str:
    lines = ["# Experiment report (auto-generated)", ""]
    for name, result in results.items():
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(result.to_table())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures at laptop scale.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="NAME",
        help=f"experiments to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--out", help="also write a markdown report to this path")
    parser.add_argument("--quiet", action="store_true", help="suppress per-figure tables")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent experiments (0 = all cores, default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result-cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro/cells)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache: recompute everything live",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print per-experiment cache hit/miss/invalidation counts",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="record spans/counters/events for the whole run and write "
             "run.json, events.jsonl, trace.json (Perfetto), metrics.csv "
             "under DIR",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay journal.jsonl and skip experiments already committed "
             "by an earlier (possibly killed) run",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="attempts per experiment before quarantine (default 2)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment wall-clock deadline; a hung experiment is "
             "killed and retried instead of hanging the run",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="assert runtime conservation invariants (bytes conserved, no "
             "task lost, event heap consistent) during the run",
    )
    args = parser.parse_args(argv)
    cache_dir = None if args.no_cache else (args.cache_dir or DEFAULT_CACHE)
    try:
        results = run_all(
            args.experiments or None,
            verbose=not args.quiet,
            jobs=args.jobs,
            cache_dir=cache_dir,
            cache_stats=args.cache_stats,
            telemetry_dir=args.telemetry,
            resume=args.resume,
            retries=args.retries,
            cell_timeout=args.cell_timeout,
            check_invariants=args.check_invariants,
        )
    except SweepFailure as exc:
        print(failure_table(exc.failures), file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted: progress is journaled; rerun with --resume", file=sys.stderr)
        return 130
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(to_markdown(results))
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
