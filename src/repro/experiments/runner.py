"""Run every paper experiment and emit a combined report.

``python -m repro.experiments`` regenerates all figures at laptop scale
and prints their tables; ``--out FILE`` also writes a markdown report
(the source of EXPERIMENTS.md's measured numbers).  ``--jobs N`` fans
independent experiments out across ``N`` worker processes (0 = all
cores) — tables are byte-identical to the sequential run because results
are collected in registry order and every experiment is hermetic.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Callable, Optional, Sequence

from ..parallel import map_ordered

from .cold_pages import run_cold_pages
from .common import FigureResult
from .fig01_motivation import run_fig01
from .fig05_exec_time import run_fig05
from .fig06_cxl_fraction import run_fig06
from .fig07_alloc_policy import run_fig07
from .fig08_dram_fraction import run_fig08
from .fig09_page_faults import run_fig09
from .ext_colocation import run_colocation
from .ext_decomposition import run_decomposition
from .ext_failures import run_failures
from .ext_open_system import run_open_system
from .ext_predictor import run_predictor_learning
from .ext_resilience import run_resilience
from .ext_shared_inputs import run_shared_inputs
from .ext_utilization import run_utilization
from .fig10_scalability import run_fig10
from .ablations import run_ablations
from .validation import run_validation
from .fig11_concurrency import run_fig11

__all__ = ["ALL_EXPERIMENTS", "run_all", "main"]

ALL_EXPERIMENTS: dict[str, Callable[[], FigureResult]] = {
    "validation": run_validation,
    "fig01": run_fig01,
    "cold-pages": run_cold_pages,
    "fig05": run_fig05,
    "fig06": run_fig06,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "ext-shared-inputs": run_shared_inputs,
    "ext-failures": run_failures,
    "ext-resilience": run_resilience,
    "ext-open-system": run_open_system,
    "ext-colocation": run_colocation,
    "ext-predictor": run_predictor_learning,
    "ext-decomposition": run_decomposition,
    "ext-utilization": run_utilization,
    "ablations": run_ablations,
}


def _run_one(name: str, jobs: int = 1) -> tuple[FigureResult, float]:
    """Run one experiment, forwarding ``jobs`` to harnesses whose inner
    sweeps accept it.  Top-level and picklable, so it can be a pool task."""
    fn = ALL_EXPERIMENTS[name]
    t0 = time.perf_counter()
    if jobs != 1 and "jobs" in inspect.signature(fn).parameters:
        result = fn(jobs=jobs)
    else:
        result = fn()
    return result, time.perf_counter() - t0


def _run_one_cell(name: str) -> tuple[FigureResult, float]:
    return _run_one(name)


def run_all(
    names: Optional[Sequence[str]] = None,
    *,
    verbose: bool = True,
    jobs: int = 1,
) -> dict[str, FigureResult]:
    """Run the selected experiments (all by default), returning results.

    With ``jobs != 1`` and several experiments selected, whole experiments
    fan out across a process pool; a single selected experiment instead
    forwards ``jobs`` to its internal sweep.  Results (and printed tables)
    keep selection order either way.
    """
    selected = list(names) if names else list(ALL_EXPERIMENTS)
    for name in selected:
        if name not in ALL_EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; choose from {list(ALL_EXPERIMENTS)}")
    if jobs != 1 and len(selected) == 1:
        outcomes = [_run_one(selected[0], jobs=jobs)]
    else:
        outcomes = map_ordered(_run_one_cell, selected, jobs=jobs)
    results: dict[str, FigureResult] = {}
    for name, (result, elapsed) in zip(selected, outcomes):
        results[name] = result
        if verbose:
            print(result.to_table())
            print(f"  [{name} regenerated in {elapsed:.1f}s]\n")
    return results


def to_markdown(results: dict[str, FigureResult]) -> str:
    lines = ["# Experiment report (auto-generated)", ""]
    for name, result in results.items():
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(result.to_table())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures at laptop scale.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="NAME",
        help=f"experiments to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--out", help="also write a markdown report to this path")
    parser.add_argument("--quiet", action="store_true", help="suppress per-figure tables")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent experiments (0 = all cores, default 1)",
    )
    args = parser.parse_args(argv)
    results = run_all(args.experiments or None, verbose=not args.quiet, jobs=args.jobs)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(to_markdown(results))
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
