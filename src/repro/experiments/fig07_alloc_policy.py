"""Figure 7 — impact of the page allocation policy.

Three allocation strategies over identical tiered hardware:

* **Default Allocation** — DRAM on demand, spill to CXL, oblivious to
  workflow class (great until a latency-sensitive footprint overflows),
* **Uniform Allocation** — interleave every allocation across tiers
  (helps bandwidth-intensive flows, hurts latency-sensitive ones),
* **Ours (Algorithm 1)** — flag-aware cascading/striping/CXL-direct.

Paper averages: ours −44 % vs Default, −8 % vs Uniform.
"""

from __future__ import annotations

import numpy as np

from ..envs.environments import EnvKind
from ..metrics.report import improvement
from ..policies.interleave import DefaultAllocationPolicy, UniformInterleavePolicy
from .fig05_exec_time import DEFAULT_MIX
from .common import (
    SCALE,
    CHUNK,
    CLASS_ORDER,
    FigureResult,
    build_env,
    colocated_mix,
    per_class_exec_time,
    run_and_collect,
)

__all__ = ["run_fig07"]


def run_fig07(
    *,
    scale: float = SCALE,
    instances_per_class: "int | dict | None" = None,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
) -> FigureResult:
    if instances_per_class is None:
        instances_per_class = dict(DEFAULT_MIX)
    specs = colocated_mix(instances_per_class, scale=scale, seed=seed)
    result = FigureResult(
        figure="fig07",
        description="Fig 7: mean execution time (s) per allocation policy",
        xlabels=[cls.name for cls in CLASS_ORDER],
    )
    def weighted_factory(tier_specs):
        """Bandwidth-proportional weights — the "weighted interleaving"
        the paper notes "can further improve" Uniform Allocation."""
        from repro.memory.tiers import MEMORY_TIERS

        weights = {
            t: tier_specs[t].bandwidth
            for t in MEMORY_TIERS
            if tier_specs[t].capacity > 0
        }
        return UniformInterleavePolicy(weights)

    policies = {
        "default-alloc": dict(
            kind=EnvKind.TME, policy_factory=lambda s: DefaultAllocationPolicy()
        ),
        "uniform-interleave": dict(
            kind=EnvKind.TME, policy_factory=lambda s: UniformInterleavePolicy()
        ),
        "weighted-interleave": dict(kind=EnvKind.TME, policy_factory=weighted_factory),
        "ours-alg1": dict(kind=EnvKind.IMME, policy_factory=None),
    }
    for name, cfg in policies.items():
        env = build_env(
            cfg["kind"],
            specs,
            dram_fraction=dram_fraction,
            chunk_size=chunk_size,
            policy_factory=cfg["policy_factory"],
        )
        metrics = run_and_collect(env, specs)
        times = per_class_exec_time(metrics)
        result.add_series(name, [times[cls] for cls in CLASS_ORDER])

    ours = np.array(result.series["ours-alg1"])
    for base in ("default-alloc", "uniform-interleave"):
        vals = np.array(result.series[base])
        mean_gain = float(np.mean([improvement(b, o) for b, o in zip(vals, ours)]))
        result.notes.append(
            f"ours avg improvement vs {base}: {100 * mean_gain:.0f}% "
            f"(paper: 44% vs default, 8% vs uniform)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig07().to_table())
