"""Figure 7 — impact of the page allocation policy.

Three allocation strategies over identical tiered hardware:

* **Default Allocation** — DRAM on demand, spill to CXL, oblivious to
  workflow class (great until a latency-sensitive footprint overflows),
* **Uniform Allocation** — interleave every allocation across tiers
  (helps bandwidth-intensive flows, hurts latency-sensitive ones),
* **Ours (Algorithm 1)** — flag-aware cascading/striping/CXL-direct.

The policies are the *named* registry entries
(:mod:`repro.scenarios.policies`), so every variant serializes and caches.
Paper averages: ours −44 % vs Default, −8 % vs Uniform.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..metrics.report import improvement
from ..scenarios.paper import fig07_family
from .common import (
    SCALE,
    CHUNK,
    CLASS_ORDER,
    FigureResult,
    SweepSpec,
    family_provenance,
    scenario_class_times,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_fig07"]


def run_fig07(
    *,
    scale: float = SCALE,
    instances_per_class: "int | dict | None" = None,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = fig07_family(
        scale=scale,
        instances_per_class=instances_per_class,
        dram_fraction=dram_fraction,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="fig07",
        description="Fig 7: mean execution time (s) per allocation policy",
        xlabels=[cls.name for cls in CLASS_ORDER],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("fig07", base_seed=seed)
    for scenario in family:
        spec.add_scenario(scenario_class_times, scenario)
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)

    ours = np.array(result.series["ours-alg1"])
    for base in ("default-alloc", "uniform-interleave"):
        vals = np.array(result.series[base])
        mean_gain = float(np.mean([improvement(b, o) for b, o in zip(vals, ours)]))
        result.notes.append(
            f"ours avg improvement vs {base}: {100 * mean_gain:.0f}% "
            f"(paper: 44% vs default, 8% vs uniform)"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig07().to_table())
