"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment follows the same recipe: build a workload (instances of
the four studied workflows), size the environments relative to the
workload's aggregate footprint (the ratios are what the policies react
to, so laptop-scale runs preserve the paper's shape), run each
environment, and extract per-class means.

``SCALE`` defaults to 1/64 of the paper's memory sizes; the figure
functions accept overrides so tests can run smaller still.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Sequence

import numpy as np

from ..envs.environments import EnvKind, Environment, make_environment
from ..memory.tiers import TierKind, TierSpec
from ..metrics.collector import MetricsRegistry
from ..metrics.report import format_table
from ..parallel import map_ordered
from ..policies.base import MemoryPolicy
from ..util.rng import RngFactory, derive_seed
from ..util.units import MiB
from ..util.validation import require
from ..workflows.ensembles import make_ensemble
from ..workflows.library import paper_workload_suite
from ..workflows.task import TaskSpec, WorkloadClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = [
    "SCALE",
    "CHUNK",
    "CLASS_ORDER",
    "FigureResult",
    "SweepCell",
    "SweepSpec",
    "cell_cache_key",
    "sweep",
    "colocated_mix",
    "build_env",
    "run_and_collect",
    "per_class_exec_time",
    "per_class_faults",
]

#: default memory scale relative to the paper's testbed sizes
SCALE = 1.0 / 64.0
#: default chunk size for scaled-down runs (4 MiB at full scale)
CHUNK = MiB(1)

CLASS_ORDER = (WorkloadClass.DL, WorkloadClass.DM, WorkloadClass.DC, WorkloadClass.SC)


@dataclass
class FigureResult:
    """One experiment's output: named series over shared x-labels."""

    figure: str
    description: str
    xlabels: list[str]
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, name: str, values: Sequence[float]) -> None:
        require(len(values) == len(self.xlabels), "series length must match xlabels")
        self.series[name] = [float(v) for v in values]

    def value(self, series: str, xlabel: str) -> float:
        return self.series[series][self.xlabels.index(xlabel)]

    def to_table(self, float_fmt: str = "{:.2f}") -> str:
        headers = [self.figure] + self.xlabels
        rows = [[name] + vals for name, vals in self.series.items()]
        body = format_table(headers, rows, title=self.description, float_fmt=float_fmt)
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body

    def to_csv(self) -> str:
        """Comma-separated export (series per row, header = xlabels).

        Values are written plain (no ``repr`` wrapping) so the file
        round-trips through any standard CSV reader via ``float()``.
        """
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow([self.figure] + self.xlabels)
        for name, vals in self.series.items():
            writer.writerow([name] + list(vals))
        return buf.getvalue()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_table()


# --------------------------------------------------------------------------- #
# parallel sweeps
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SweepCell:
    """One independent unit of a sweep: a picklable top-level callable plus
    keyword arguments.  Cells rebuild their own specs/environments from
    plain inputs, so they are hermetic and can run in any process."""

    key: str
    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(**self.kwargs)


@dataclass
class SweepSpec:
    """An ordered collection of independent cells sharing one base seed.

    Per-cell seeds come from :func:`~repro.util.rng.derive_seed` over
    ``"{sweep name}/{cell key}"``, so adding or reordering cells never
    perturbs the draws of existing ones — the same contract
    :class:`~repro.util.rng.RngFactory` gives named streams within a run.
    """

    name: str
    base_seed: int = 0
    cells: list[SweepCell] = field(default_factory=list)

    def cell_seed(self, key: str) -> int:
        """Deterministic seed for the cell named ``key``."""
        return derive_seed(self.base_seed, f"{self.name}/{key}")

    def add(self, key: str, fn: Callable[..., Any], **kwargs: Any) -> SweepCell:
        """Append a cell; duplicate keys are rejected to keep results addressable."""
        require(all(c.key != key for c in self.cells), f"duplicate cell key {key!r}")
        cell = SweepCell(key, fn, kwargs)
        self.cells.append(cell)
        return cell

    def add_seeded(self, key: str, fn: Callable[..., Any], **kwargs: Any) -> SweepCell:
        """Like :meth:`add`, injecting the derived per-cell ``seed`` kwarg."""
        return self.add(key, fn, seed=self.cell_seed(key), **kwargs)


def _run_sweep_cell(cell: SweepCell) -> Any:
    return cell.run()


def cell_cache_key(spec: SweepSpec, cell: SweepCell):
    """The cell's :class:`~repro.cache.CacheKey`, or ``None`` when some
    kwarg has no canonical form (the cell then always runs live)."""
    from ..cache.keys import CacheKeyError, cell_keys

    try:
        return cell_keys(
            cell.fn,
            cell.kwargs,
            seed=spec.cell_seed(cell.key),
            extra={"sweep": spec.name, "cell": cell.key, "base_seed": spec.base_seed},
        )
    except CacheKeyError:
        return None


def sweep(
    spec: SweepSpec,
    *,
    jobs: Optional[int] = None,
    cache: "Optional[ResultCache]" = None,
) -> dict[str, Any]:
    """Run every cell of ``spec`` and return ``{key: result}`` in cell order.

    ``jobs`` follows :func:`~repro.parallel.resolve_jobs` (``None``/1 →
    in-process, 0 → all cores).  Collection order is the cell order
    regardless of which worker finished first, so downstream tables are
    byte-identical to a sequential run.

    With a ``cache`` (:class:`~repro.cache.ResultCache`), cells whose
    stored result is still valid are served without dispatching a worker;
    only the misses execute, and their results are written back atomically
    from this process after ordered collection.
    """
    results = map_ordered(
        _run_sweep_cell,
        spec.cells,
        jobs=jobs,
        cache=cache,
        cache_key=None if cache is None else partial(cell_cache_key, spec),
    )
    return {cell.key: res for cell, res in zip(spec.cells, results)}


# --------------------------------------------------------------------------- #
# workload construction
# --------------------------------------------------------------------------- #

def colocated_mix(
    instances_per_class: "int | Mapping[WorkloadClass, int]" = 2,
    *,
    scale: float = SCALE,
    seed: int = 0,
    classes: Sequence[WorkloadClass] = CLASS_ORDER,
) -> list[TaskSpec]:
    """N jittered instances of each studied workflow, submission-shuffled
    deterministically so no class systematically allocates first."""
    suite = paper_workload_suite(scale)
    factory = RngFactory(seed)
    specs: list[TaskSpec] = []
    for cls in classes:
        n = instances_per_class if isinstance(instances_per_class, int) else (
            instances_per_class.get(cls, 0)
        )
        if n > 0:
            specs.extend(make_ensemble(suite[cls], n, rng_factory=factory))
    order = factory.stream("submission-order").permutation(len(specs))
    return [specs[i] for i in order]


def total_footprint(specs: Sequence[TaskSpec]) -> int:
    return sum(s.max_footprint for s in specs)


# --------------------------------------------------------------------------- #
# environment construction & execution
# --------------------------------------------------------------------------- #

def build_env(
    kind: EnvKind,
    specs: Sequence[TaskSpec],
    *,
    dram_fraction: float = 0.35,
    n_nodes: int = 1,
    chunk_size: int = CHUNK,
    cxl_fraction: Optional[float] = None,
    policy_factory: Optional[Callable[[dict[TierKind, TierSpec]], MemoryPolicy]] = None,
    ideal_headroom: float = 1.5,
    cores_per_node: int = 64,
    daemon_interval: float = 1.0,
    dram_per_node: Optional[int] = None,
) -> Environment:
    """Size an environment relative to the workload.

    Constrained environments get ``dram_fraction`` x the aggregate
    footprint of DRAM *per cluster* (split across nodes); the Ideal
    Environment gets ``ideal_headroom`` x so nothing ever swaps.
    ``dram_per_node`` overrides both — the fixed-hardware scaling of the
    cluster experiments (each added server brings its own 512 GB).
    """
    total = total_footprint(specs)
    if dram_per_node is not None:
        dram = int(dram_per_node)
    elif kind is EnvKind.IE:
        dram = int(total * ideal_headroom / n_nodes)
    else:
        dram = int(total * dram_fraction / n_nodes)
    dram = max(dram, 16 * chunk_size)
    return make_environment(
        kind,
        n_nodes=n_nodes,
        dram_capacity=dram,
        chunk_size=chunk_size,
        cxl_fraction=cxl_fraction,
        policy_factory=policy_factory,
        cores_per_node=cores_per_node,
        daemon_interval=daemon_interval,
    )


def run_and_collect(env: Environment, specs: Sequence[TaskSpec]) -> MetricsRegistry:
    metrics = env.run_batch(specs, max_time=1e7)
    env.stop()
    return metrics


# --------------------------------------------------------------------------- #
# extraction
# --------------------------------------------------------------------------- #

def per_class_exec_time(metrics: MetricsRegistry) -> dict[WorkloadClass, float]:
    out = {}
    for cls in CLASS_ORDER:
        done = [t.execution_time for t in metrics.completed() if t.wclass == cls.name]
        if done:
            out[cls] = float(np.mean(done))
    return out


def per_class_faults(metrics: MetricsRegistry) -> dict[WorkloadClass, tuple[int, int]]:
    return {cls: metrics.total_faults(cls.name) for cls in CLASS_ORDER}
