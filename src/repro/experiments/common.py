"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment follows the same recipe: build a workload (instances of
the four studied workflows), size the environments relative to the
workload's aggregate footprint (the ratios are what the policies react
to, so laptop-scale runs preserve the paper's shape), run each
environment, and extract per-class means.

``SCALE`` defaults to 1/64 of the paper's memory sizes; the figure
functions accept overrides so tests can run smaller still.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Sequence

import numpy as np

from .. import obs
from ..envs.environments import EnvKind, Environment
from ..memory.tiers import TierKind, TierSpec
from ..metrics.collector import MetricsRegistry
from ..metrics.report import format_table
from ..parallel import map_ordered
from ..policies.base import MemoryPolicy
from ..scenarios.build import environment_for_tasks, realize
from ..scenarios.spec import (
    DEFAULT_CHUNK,
    DEFAULT_SCALE,
    ScenarioSpec,
    TierSizing,
    WorkloadSpec,
)
from ..scenarios.workloads import CLASS_ORDER, colocated_mix_tasks
from ..util.rng import derive_seed
from ..util.validation import require
from ..workflows.task import TaskSpec, WorkloadClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache
    from ..scenarios.spec import ScenarioFamily

__all__ = [
    "SCALE",
    "CHUNK",
    "CLASS_ORDER",
    "FigureResult",
    "SweepCell",
    "SweepSpec",
    "cell_cache_key",
    "sweep",
    "colocated_mix",
    "build_env",
    "family_provenance",
    "run_and_collect",
    "scenario_class_times",
    "scenario_makespan",
    "per_class_exec_time",
    "per_class_faults",
]

#: default memory scale relative to the paper's testbed sizes
#: (canonical definition: :data:`repro.scenarios.spec.DEFAULT_SCALE`)
SCALE = DEFAULT_SCALE
#: default chunk size for scaled-down runs (4 MiB at full scale)
CHUNK = DEFAULT_CHUNK


@dataclass
class FigureResult:
    """One experiment's output: named series over shared x-labels."""

    figure: str
    description: str
    xlabels: list[str]
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: originating-scenario metadata (family name, scenario digest, seed);
    #: emitted with every export so a result file names its inputs
    provenance: dict[str, str] = field(default_factory=dict)

    def add_series(self, name: str, values: Sequence[float]) -> None:
        require(len(values) == len(self.xlabels), "series length must match xlabels")
        self.series[name] = [float(v) for v in values]

    def value(self, series: str, xlabel: str) -> float:
        return self.series[series][self.xlabels.index(xlabel)]

    def to_table(self, float_fmt: str = "{:.2f}") -> str:
        headers = [self.figure] + self.xlabels
        rows = [[name] + vals for name, vals in self.series.items()]
        body = format_table(headers, rows, title=self.description, float_fmt=float_fmt)
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        if self.provenance:
            body += "\n" + "\n".join(
                f"  provenance: {k}={v}" for k, v in sorted(self.provenance.items())
            )
        return body

    def to_csv(self) -> str:
        """Comma-separated export (series per row, header = xlabels).

        Values are written plain (no ``repr`` wrapping) so the file
        round-trips through any standard CSV reader via ``float()``.
        Provenance, when attached, is appended as ``#``-prefixed comment
        rows that standard readers can skip.
        """
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow([self.figure] + self.xlabels)
        for name, vals in self.series.items():
            writer.writerow([name] + list(vals))
        for key in sorted(self.provenance):
            writer.writerow([f"# {key}", self.provenance[key]])
        return buf.getvalue()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_table()


# --------------------------------------------------------------------------- #
# parallel sweeps
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SweepCell:
    """One independent unit of a sweep: a picklable top-level callable plus
    keyword arguments.  Cells rebuild their own specs/environments from
    plain inputs, so they are hermetic and can run in any process.

    ``scenario`` names the :class:`~repro.scenarios.ScenarioSpec` the cell
    realizes (when it realizes one); its digest becomes part of the cache
    content key so scenario edits invalidate exactly their own cells.
    """

    key: str
    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)
    scenario: Optional[ScenarioSpec] = None

    def run(self) -> Any:
        return self.fn(**self.kwargs)


@dataclass
class SweepSpec:
    """An ordered collection of independent cells sharing one base seed.

    Per-cell seeds come from :func:`~repro.util.rng.derive_seed` over
    ``"{sweep name}/{cell key}"``, so adding or reordering cells never
    perturbs the draws of existing ones — the same contract
    :class:`~repro.util.rng.RngFactory` gives named streams within a run.
    """

    name: str
    base_seed: int = 0
    cells: list[SweepCell] = field(default_factory=list)

    def cell_seed(self, key: str) -> int:
        """Deterministic seed for the cell named ``key``."""
        return derive_seed(self.base_seed, f"{self.name}/{key}")

    def add(
        self,
        key: str,
        fn: Callable[..., Any],
        *,
        scenario: Optional[ScenarioSpec] = None,
        **kwargs: Any,
    ) -> SweepCell:
        """Append a cell; duplicate keys are rejected to keep results addressable."""
        require(all(c.key != key for c in self.cells), f"duplicate cell key {key!r}")
        cell = SweepCell(key, fn, kwargs, scenario=scenario)
        self.cells.append(cell)
        return cell

    def add_scenario(
        self,
        fn: Callable[..., Any],
        scenario: ScenarioSpec,
        *,
        key: Optional[str] = None,
        **kwargs: Any,
    ) -> SweepCell:
        """Add a scenario-driven cell: keyed by the spec's member name
        (overridable via ``key`` when one spec feeds several cells), the
        spec passed to ``fn`` as the ``scenario`` kwarg and folded into the
        cache content key."""
        key = key if key is not None else scenario.member
        require(
            all(c.key != key for c in self.cells), f"duplicate cell key {key!r}"
        )
        cell = SweepCell(
            key, fn, {"scenario": scenario, **kwargs}, scenario=scenario
        )
        self.cells.append(cell)
        return cell

    def add_seeded(self, key: str, fn: Callable[..., Any], **kwargs: Any) -> SweepCell:
        """Like :meth:`add`, injecting the derived per-cell ``seed`` kwarg."""
        return self.add(key, fn, seed=self.cell_seed(key), **kwargs)


def _run_sweep_cell(cell: SweepCell) -> Any:
    with obs.span("sweep.cell", key=cell.key):
        return cell.run()


def cell_cache_key(spec: SweepSpec, cell: SweepCell):
    """The cell's :class:`~repro.cache.CacheKey`, or ``None`` when some
    kwarg has no canonical form (the cell then always runs live)."""
    from ..cache.keys import CacheKeyError, cell_keys

    try:
        return cell_keys(
            cell.fn,
            cell.kwargs,
            seed=spec.cell_seed(cell.key),
            extra={"sweep": spec.name, "cell": cell.key, "base_seed": spec.base_seed},
            scenario=cell.scenario,
        )
    except CacheKeyError:
        return None


def sweep(
    spec: SweepSpec,
    *,
    jobs: Optional[int] = None,
    cache: "Optional[ResultCache]" = None,
    retry: Optional[Any] = None,
    deadline: Optional[float] = None,
    journal: Optional[Any] = None,
) -> dict[str, Any]:
    """Run every cell of ``spec`` and return ``{key: result}`` in cell order.

    ``jobs`` follows :func:`~repro.parallel.resolve_jobs` (``None``/1 →
    in-process, 0 → all cores).  Collection order is the cell order
    regardless of which worker finished first, so downstream tables are
    byte-identical to a sequential run.

    With a ``cache`` (:class:`~repro.cache.ResultCache`), cells whose
    stored result is still valid are served without dispatching a worker;
    only the misses execute, and their results are written back atomically
    from this process after ordered collection.

    Passing any of ``retry`` (a :class:`~repro.resilience.RetryPolicy`),
    ``deadline`` (per-cell seconds), or ``journal`` (a
    :class:`~repro.resilience.RunJournal`) switches execution to
    :func:`~repro.resilience.supervised_map`: failing or hung cells are
    retried with deterministic backoff and quarantined when their budget
    is spent, and the sweep raises
    :class:`~repro.resilience.SweepFailure` (carrying the partial
    results) only after every other cell has finished.  The default path
    is byte-for-byte the unsupervised one — zero overhead when no
    resilience knob is used.
    """
    supervised = retry is not None or deadline is not None or journal is not None
    with obs.span("sweep", sweep=spec.name, cells=len(spec.cells)):
        if supervised:
            from ..resilience import SweepFailure, supervised_map

            sub = supervised_map(
                _run_sweep_cell,
                spec.cells,
                keys=[cell.key for cell in spec.cells],
                jobs=jobs,
                deadline=deadline,
                retry=retry,
                journal=journal,
                cache=cache,
                cache_key=None if cache is None else partial(cell_cache_key, spec),
            )
            if sub.failures:
                done = {
                    cell.key: res
                    for cell, res in zip(spec.cells, sub.results)
                    if all(f.key != cell.key for f in sub.failures)
                }
                raise SweepFailure(sub.failures, results=done)
            results = sub.results
        else:
            results = map_ordered(
                _run_sweep_cell,
                spec.cells,
                jobs=jobs,
                cache=cache,
                cache_key=None if cache is None else partial(cell_cache_key, spec),
            )
    return {cell.key: res for cell, res in zip(spec.cells, results)}


# --------------------------------------------------------------------------- #
# workload construction
# --------------------------------------------------------------------------- #

def colocated_mix(
    instances_per_class: "int | Mapping[WorkloadClass, int]" = 2,
    *,
    scale: float = SCALE,
    seed: int = 0,
    classes: Sequence[WorkloadClass] = CLASS_ORDER,
) -> list[TaskSpec]:
    """N jittered instances of each studied workflow, submission-shuffled
    deterministically so no class systematically allocates first.

    Thin wrapper over the scenario layer's named ``colocated-mix``
    builder — the single implementation both paths share.
    """
    return colocated_mix_tasks(
        instances_per_class, scale=scale, seed=seed, classes=tuple(classes)
    )


def total_footprint(specs: Sequence[TaskSpec]) -> int:
    return sum(s.max_footprint for s in specs)


# --------------------------------------------------------------------------- #
# environment construction & execution
# --------------------------------------------------------------------------- #

def build_env(
    kind: EnvKind,
    specs: Sequence[TaskSpec],
    *,
    dram_fraction: float = 0.35,
    n_nodes: int = 1,
    chunk_size: int = CHUNK,
    cxl_fraction: Optional[float] = None,
    policy_factory: Optional[Callable[[dict[TierKind, TierSpec]], MemoryPolicy]] = None,
    ideal_headroom: float = 1.5,
    cores_per_node: int = 64,
    daemon_interval: float = 1.0,
    dram_per_node: Optional[int] = None,
) -> Environment:
    """Size an environment relative to the workload.

    Constrained environments get ``dram_fraction`` x the aggregate
    footprint of DRAM *per cluster* (split across nodes); the Ideal
    Environment gets ``ideal_headroom`` x so nothing ever swaps.
    ``dram_per_node`` overrides both — the fixed-hardware scaling of the
    cluster experiments (each added server brings its own 512 GB).

    Thin wrapper over the scenario layer: the sizing knobs become an
    ad-hoc :class:`~repro.scenarios.ScenarioSpec` realized against the
    already-built workload, so harness and scenario paths share one
    environment-construction pipeline.  ``policy_factory`` stays a raw
    callable escape hatch; registered scenarios use policy *names*.
    """
    fraction = ideal_headroom if kind is EnvKind.IE else dram_fraction
    spec = ScenarioSpec(
        name=f"adhoc/{kind.name}",
        env=kind,
        workload=WorkloadSpec(),  # unused: tasks are supplied directly
        sizing=TierSizing(dram_fraction=fraction, dram_per_node=dram_per_node),
        n_nodes=n_nodes,
        cores_per_node=cores_per_node,
        chunk_size=chunk_size,
        daemon_interval=daemon_interval,
        cxl_fraction=cxl_fraction,
    )
    return environment_for_tasks(spec, specs, policy_factory=policy_factory)


def family_provenance(family: "ScenarioFamily", seed: Optional[int] = None) -> dict[str, str]:
    """Self-describing export metadata for a result produced from ``family``."""
    out = {"scenario_family": family.name, "scenario_digest": family.digest()}
    if seed is not None:
        out["seed"] = str(seed)
    return out


def run_and_collect(env: Environment, specs: Sequence[TaskSpec]) -> MetricsRegistry:
    metrics = env.run_batch(specs, max_time=1e7)
    env.stop()
    return metrics


# --------------------------------------------------------------------------- #
# generic scenario cells
# --------------------------------------------------------------------------- #
#
# Top-level (picklable) sweep cells shared by the harnesses whose per-cell
# result is a standard extraction.  The cell's whole input is the spec, so
# the cache addresses these purely by scenario digest.

def scenario_class_times(scenario: ScenarioSpec) -> list[float]:
    """Realize ``scenario``, run it, and return the per-class mean
    execution times in :data:`CLASS_ORDER`."""
    times = per_class_exec_time(realize(scenario).execute())
    return [times[cls] for cls in CLASS_ORDER]


def scenario_makespan(scenario: ScenarioSpec) -> float:
    """Realize ``scenario``, run it, and return the batch makespan."""
    return float(realize(scenario).execute().makespan())


# --------------------------------------------------------------------------- #
# extraction
# --------------------------------------------------------------------------- #

def per_class_exec_time(metrics: MetricsRegistry) -> dict[WorkloadClass, float]:
    out = {}
    for cls in CLASS_ORDER:
        done = [t.execution_time for t in metrics.completed() if t.wclass == cls.name]
        if done:
            out[cls] = float(np.mean(done))
    return out


def per_class_faults(metrics: MetricsRegistry) -> dict[WorkloadClass, tuple[int, int]]:
    return {cls: metrics.total_faults(cls.name) for cls in CLASS_ORDER}
