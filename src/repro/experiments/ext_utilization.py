"""Extension experiment — overall memory utilisation and throughput.

The abstract's first claim: "our approach improves tiered memory
utilization and application performance".  Raw DRAM occupancy is a
misleading metric (a thrashing CBE node is 100% full of the *wrong*
pages), so we report both sides:

* mean utilisation of DRAM and of all byte-addressable memory over the
  run (a :class:`~repro.metrics.timeline.UtilizationSampler`),
* productive throughput, workflows completed per simulated hour.

IMME should sustain comparable-or-higher occupancy while converting it
into strictly more completed work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..memory.tiers import CXL, DRAM, PMEM
from ..metrics.timeline import UtilizationSampler
from ..scenarios.build import realize
from ..scenarios.paper import ext_utilization_family
from ..scenarios.spec import ScenarioSpec
from .common import (
    CHUNK,
    SCALE,
    FigureResult,
    SweepSpec,
    family_provenance,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_utilization"]


def _utilization_cell(scenario: ScenarioSpec, sample_interval: float) -> list[float]:
    """[DRAM util %, tiered util %, jobs/hour] for one environment.

    Runs the batch manually so the sampler brackets exactly the run
    (started before submission, stopped before teardown).
    """
    realized = realize(scenario)
    env, specs = realized.env, realized.tasks
    sampler = UtilizationSampler(env.engine, env.topology.nodes, sample_interval)
    sampler.start()
    metrics = env.run_batch(specs, max_time=scenario.max_time)
    sampler.stop()
    dram_util = sampler.mean_utilization(DRAM)
    resident = sum(
        sampler.cluster_series(t).mean() if sampler.n_samples else 0.0
        for t in (DRAM, PMEM, CXL)
    )
    # normalise tiered residency against the *workload*, not the huge
    # nominal CXL pool: how much of the footprint stayed byte-addressable
    total_footprint = sum(s.max_footprint for s in specs)
    tiered_util = resident / total_footprint
    throughput = len(metrics.completed()) / metrics.makespan() * 3600.0
    env.stop()
    return [100.0 * dram_util, 100.0 * tiered_util, throughput]


def run_utilization(
    *,
    scale: float = SCALE,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    sample_interval: float = 2.0,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_utilization_family(
        scale=scale, dram_fraction=dram_fraction, chunk_size=chunk_size, seed=seed
    )
    result = FigureResult(
        figure="ext-utilization",
        description="Memory utilisation and productive throughput per environment",
        xlabels=["DRAM util (%)", "tiered util (%)", "jobs/hour"],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ext-utilization", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_utilization_cell, scenario, sample_interval=sample_interval)
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)
    result.notes.append(
        "CBE fills DRAM with thrash (high occupancy, low throughput); IMME "
        "keeps the footprint byte-addressable across tiers and completes the "
        "most work per hour"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_utilization().to_table())
