"""Extension experiment — the flag predictor learning from execution logs.

§III-C1: "If no flags are provided, then the Tiered Memory Manager assigns
either single or multiple flags to each workflow based on the previous
execution logs, heuristics, and predictor."

We submit the *same* latency-sensitive workflow repeatedly with **no
flags** (the registered ``ext-predictor`` scenario's ``predictor-probes``
workload).  The first run uses the conservative cold-start heuristic (a
small LAT slice, the rest CAP→CXL), so part of the hot set lands remote;
at completion the manager learns the workload's real heat profile
(§III-C2's 512 MB-of-40 GB example), and later runs place the measured hot
set in DRAM from the start.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..scenarios.build import realize
from ..scenarios.paper import ext_predictor_family
from ..scenarios.spec import ScenarioSpec
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_predictor_learning"]


def _predictor_cell(scenario: ScenarioSpec) -> list[float]:
    """Per-run execution times of the unflagged probe under one manager.

    The probes must run back to back (the manager's learning carries
    across runs), so they are submitted one at a time instead of batched.
    """
    realized = realize(scenario)
    env = realized.env
    series = []
    for task in realized.tasks:
        env.scheduler.submit(task)
        env.scheduler.run_to_completion(max_time=scenario.max_time)
        series.append(env.metrics.get(task.name).execution_time)
    env.stop()
    return series


def run_predictor_learning(
    *,
    scale: float = SCALE,
    runs: int = 4,
    chunk_size: int = CHUNK,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_predictor_family(scale=scale, runs=runs, chunk_size=chunk_size)
    result = FigureResult(
        figure="ext-predictor",
        description=(
            "Predictor learning: same unflagged workflow run repeatedly "
            "under IMME — execution time (s) per run"
        ),
        xlabels=[f"run-{i}" for i in range(runs)],
        provenance=family_provenance(family),
    )
    spec = SweepSpec("ext-predictor")
    spec.add_scenario(_predictor_cell, family.scenarios[0])
    series = sweep(spec, jobs=jobs, cache=cache)["ext-predictor"]
    result.add_series("IMME(no flags)", series)
    gain = (series[0] - series[-1]) / series[0] if series[0] else 0.0
    result.notes.append(
        f"run-0 pays the cold-start heuristic; the execution-log predictor "
        f"recovers {100 * gain:.0f}% by run-{runs - 1}"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_predictor_learning().to_table())
