"""Extension experiment — the flag predictor learning from execution logs.

§III-C1: "If no flags are provided, then the Tiered Memory Manager assigns
either single or multiple flags to each workflow based on the previous
execution logs, heuristics, and predictor."

We submit the *same* latency-sensitive workflow repeatedly with **no
flags**.  The first run uses the conservative cold-start heuristic (a
small LAT slice, the rest CAP→CXL), so part of the hot set lands remote;
at completion the manager learns the workload's real heat profile
(§III-C2's 512 MB-of-40 GB example), and later runs place the measured hot
set in DRAM from the start.
"""

from __future__ import annotations

from ..core.flags import MemFlag
from ..envs.environments import EnvKind, make_environment
from ..util.units import GBps
from ..workflows.patterns import HotColdPattern
from ..workflows.task import TaskPhase, TaskSpec, WorkloadClass
from .common import CHUNK, SCALE, FigureResult

__all__ = ["run_predictor_learning"]


def _probe_task(name: str, scale: float) -> TaskSpec:
    """A DM-style task with a large, well-defined hot set and NO flags."""
    from ..util.units import GiB

    footprint = max(1, int(GiB(8) * scale))
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.GENERIC,  # no class default flags either
        footprint=footprint,
        wss=int(footprint * 0.75),
        phases=(
            TaskPhase(
                name="lookup",
                base_time=12.0,
                compute_frac=0.30,
                lat_frac=0.65,
                bw_frac=0.05,
                demand_bandwidth=GBps(2.0),
                pattern=HotColdPattern(hot_fraction=0.40, hot_share=0.90),
            ),
        ),
        flags=MemFlag.NONE,
        cores=2,
    )


def run_predictor_learning(
    *,
    scale: float = SCALE,
    runs: int = 4,
    chunk_size: int = CHUNK,
) -> FigureResult:
    first = _probe_task("probe-0", scale)
    # DRAM big enough for the hot set (40%), far too small for everything
    env = make_environment(
        EnvKind.IMME,
        dram_capacity=int(first.footprint * 0.55),
        chunk_size=chunk_size,
    )
    result = FigureResult(
        figure="ext-predictor",
        description=(
            "Predictor learning: same unflagged workflow run repeatedly "
            "under IMME — execution time (s) per run"
        ),
        xlabels=[f"run-{i}" for i in range(runs)],
    )
    series = []
    for i in range(runs):
        spec = _probe_task(f"probe-{i}", scale)
        env.scheduler.submit(spec)
        env.scheduler.run_to_completion(max_time=1e7)
        series.append(env.metrics.get(spec.name).execution_time)
    result.add_series("IMME(no flags)", series)
    env.stop()
    gain = (series[0] - series[-1]) / series[0] if series[0] else 0.0
    result.notes.append(
        f"run-0 pays the cold-start heuristic; the execution-log predictor "
        f"recovers {100 * gain:.0f}% by run-{runs - 1}"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_predictor_learning().to_table())
