"""§II-C cold-page claim — BERT's early idle memory.

"During the initial 120 seconds of training BERT, ~55%-80% of the
allocated memory remains idle, thereby becoming cold memory pages."

We run the DL workload alone on an ideal node, pause the engine at sample
points, and measure the fraction of its mapped allocation that has never
been touched (zero temperature).
"""

from __future__ import annotations

from ..core.heatmap import idle_fraction
from ..envs.environments import EnvKind, make_environment
from ..workflows.library import deep_learning_task
from .common import SCALE, CHUNK, FigureResult

__all__ = ["run_cold_pages"]


def run_cold_pages(
    *,
    scale: float = SCALE,
    sample_times: tuple[float, ...] = (10.0, 30.0, 60.0, 90.0, 120.0),
    chunk_size: int = CHUNK,
) -> FigureResult:
    spec = deep_learning_task(scale=scale)
    env = make_environment(
        EnvKind.IE, dram_capacity=spec.max_footprint * 2, chunk_size=chunk_size
    )
    env.scheduler.submit(spec)
    result = FigureResult(
        figure="cold-pages",
        description="§II-C: fraction of BERT's allocation still idle (never touched)",
        xlabels=[f"t={int(t)}s" for t in sample_times],
    )
    series = []
    for t in sample_times:
        env.engine.run(until=t)
        ps = None
        for node in env.topology.nodes:
            ps = node.get_pageset(spec.name)
            if ps is not None:
                break
        assert ps is not None, "DL task should still be running at sample times"
        series.append(idle_fraction(ps))
    result.add_series("idle-fraction", series)
    env.scheduler.run_to_completion()
    env.stop()
    result.notes.append(
        "paper: ~55-80% of the allocation is idle during the first 120s of training"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_cold_pages().to_table(float_fmt="{:.3f}"))
