"""§II-C cold-page claim — BERT's early idle memory.

"During the initial 120 seconds of training BERT, ~55%-80% of the
allocated memory remains idle, thereby becoming cold memory pages."

We realize the registered ``cold-pages`` scenario (the DL workload alone
on an ideal node), pause the engine at sample points, and measure the
fraction of its mapped allocation that has never been touched (zero
temperature).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.heatmap import idle_fraction
from ..scenarios.build import realize
from ..scenarios.paper import cold_pages_family
from ..scenarios.spec import ScenarioSpec
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_cold_pages"]


def _cold_pages_cell(
    scenario: ScenarioSpec, sample_times: tuple[float, ...]
) -> list[float]:
    """Idle fraction of the DL task's allocation at each sample time."""
    realized = realize(scenario)
    env, spec = realized.env, realized.tasks[0]
    env.scheduler.submit(spec)
    series = []
    for t in sample_times:
        env.engine.run(until=t)
        ps = None
        for node in env.topology.nodes:
            ps = node.get_pageset(spec.name)
            if ps is not None:
                break
        assert ps is not None, "DL task should still be running at sample times"
        series.append(idle_fraction(ps))
    env.scheduler.run_to_completion()
    env.stop()
    return series


def run_cold_pages(
    *,
    scale: float = SCALE,
    sample_times: tuple[float, ...] = (10.0, 30.0, 60.0, 90.0, 120.0),
    chunk_size: int = CHUNK,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = cold_pages_family(scale=scale, chunk_size=chunk_size)
    result = FigureResult(
        figure="cold-pages",
        description="§II-C: fraction of BERT's allocation still idle (never touched)",
        xlabels=[f"t={int(t)}s" for t in sample_times],
        provenance=family_provenance(family),
    )
    spec = SweepSpec("cold-pages")
    spec.add_scenario(
        _cold_pages_cell, family.scenarios[0], sample_times=tuple(sample_times)
    )
    cells = sweep(spec, jobs=jobs, cache=cache)
    result.add_series("idle-fraction", cells["cold-pages"])
    result.notes.append(
        "paper: ~55-80% of the allocation is idle during the first 120s of training"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_cold_pages().to_table(float_fmt="{:.3f}"))
