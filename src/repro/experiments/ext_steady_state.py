"""Extension experiment — steady-state service comparison under rising load.

The batch experiments measure a closed system (fixed job set, makespan);
this one asks the operational question: what does each environment's
*steady state* look like under a sustained open-loop stream?  Every
(environment, rate) cell drives the cluster through :mod:`repro.service`
until ``max_arrivals`` DM-heavy arrivals have been offered, truncates the
warm-up transient (MSER-5 over windowed utilization), and reports the
post-warm-up windows.

The separation curve: as the offered rate rises, the constrained
baseline's DM p95 turnaround grows super-linearly (every arrival lands on
an already-reclaiming node) while IMME's tiered capacity holds it near
flat — the steady-state view of the paper's §IV-D colocation results.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Tuple

from ..envs.environments import EnvKind
from ..scenarios.build import run_service
from ..scenarios.paper import ext_steady_state_family
from ..scenarios.spec import ScenarioSpec
from ..service.metrics import ServiceReport
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_steady_state"]

_KINDS = (EnvKind.CBE, EnvKind.IMME)


def _steady_cell(scenario: ScenarioSpec) -> ServiceReport:
    """One (environment, rate) service run; the full windowed report is
    the cell value (it rides the result-cache codec unchanged)."""
    return run_service(scenario)


def _dm_p95(report: ServiceReport) -> float:
    try:
        return report.latency("DM").p95
    except KeyError:
        return math.nan


def run_steady_state(
    *,
    scale: float = SCALE,
    rates: Tuple[float, ...] = (0.05, 0.10, 0.20, 0.40),
    max_arrivals: int = 400,
    window: float = 100.0,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_steady_state_family(
        scale=scale,
        rates=rates,
        max_arrivals=max_arrivals,
        window=window,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="ext-steady-state",
        description=(
            f"Steady-state service: {max_arrivals} open-loop arrivals "
            "(3:1 DM:DC over DL+SC background) — post-warm-up DM p95 "
            "turnaround (s), utilization, and queue depth vs offered rate"
        ),
        xlabels=[f"{r:.2f}/s" for r in rates],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ext-steady-state", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_steady_cell, scenario)
    cells = sweep(spec, jobs=jobs, cache=cache)
    reports = {
        kind: [cells[f"{kind.name}:{rate:.2f}"] for rate in rates] for kind in _KINDS
    }
    for kind in _KINDS:
        result.add_series(kind.name, [_dm_p95(rep) for rep in reports[kind]])
        result.add_series(
            f"{kind.name} util", [rep.steady_utilization for rep in reports[kind]]
        )
        result.add_series(
            f"{kind.name} queue", [rep.steady_queue_depth for rep in reports[kind]]
        )
    ratios = [
        (rate, c / i)
        for rate, c, i in zip(rates, result.series["CBE"], result.series["IMME"])
        if math.isfinite(c) and math.isfinite(i) and i > 0
    ]
    if ratios:
        worst_rate, worst = max(ratios, key=lambda p: p[1])
        result.notes.append(
            f"DM p95 separation peaks at {worst:.1f}x (CBE/IMME) at "
            f"{worst_rate:.2f}/s offered"
        )
        if len(ratios) > 1 and all(
            b[1] >= a[1] * 0.999 for a, b in zip(ratios, ratios[1:])
        ):
            result.notes.append("separation grows monotonically with offered load")
    unconverged = [
        f"{kind.name}:{rate:.2f}"
        for kind in _KINDS
        for rate, rep in zip(rates, reports[kind])
        if not rep.converged
    ]
    if unconverged:
        result.notes.append(
            f"warm-up not converged (windowed metric still drifting): "
            f"{', '.join(unconverged)}"
        )
    shed = {
        f"{kind.name}:{rate:.2f}": rep.rejected
        for kind in _KINDS
        for rate, rep in zip(rates, reports[kind])
        if rep.rejected
    }
    if shed:
        result.notes.append(
            "shed arrivals: "
            + ", ".join(f"{k}={v}" for k, v in shed.items())
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_steady_state().to_table())
