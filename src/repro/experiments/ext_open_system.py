"""Extension experiment — open-system DM stream under increasing load.

Short-lived latency-sensitive jobs (the paper's dominant DM class) arrive
as a Poisson stream on a node already hosting long capacity/bandwidth
jobs.  As the offered rate grows, the constrained baseline's turnaround
explodes (each arrival triggers reclaim into an already-thrashing node)
while IMME absorbs the stream — the §IV-D4 "reduced startup + execution
time at scale" effect, viewed open-loop.  The arrival process lives in
the scenario's workload spec (``open-system`` source), so each
(environment, rate) point is one registered scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..envs.environments import EnvKind
from ..scenarios.build import realize
from ..scenarios.paper import ext_open_system_family
from ..scenarios.spec import ScenarioSpec
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_open_system"]


def _open_system_cell(scenario: ScenarioSpec) -> float:
    """Mean DM turnaround (s) for one (environment, offered rate)."""
    metrics = realize(scenario).execute()
    dm_turnaround = [t.turnaround for t in metrics.completed() if t.wclass == "DM"]
    return sum(dm_turnaround) / max(1, len(dm_turnaround))


def run_open_system(
    *,
    scale: float = SCALE,
    rates: tuple[float, ...] = (0.05, 0.10, 0.20),
    stream_length: int = 12,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_open_system_family(
        scale=scale,
        rates=rates,
        stream_length=stream_length,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="ext-open-system",
        description=(
            f"Open system: {stream_length} DM arrivals (Poisson) over busy "
            "background jobs — mean DM turnaround (s) vs offered rate"
        ),
        xlabels=[f"{r:.2f}/s" for r in rates],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ext-open-system", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_open_system_cell, scenario)
    cells = sweep(spec, jobs=jobs, cache=cache)
    for kind in (EnvKind.CBE, EnvKind.IMME):
        result.add_series(
            kind.name, [cells[f"{kind.name}:{rate:.2f}"] for rate in rates]
        )
    worst = max(
        c / i for c, i in zip(result.series["CBE"], result.series["IMME"])
    )
    result.notes.append(
        f"CBE's DM turnaround is up to {worst:.1f}x IMME's under the stream"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_open_system().to_table())
