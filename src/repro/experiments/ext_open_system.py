"""Extension experiment — open-system DM stream under increasing load.

Short-lived latency-sensitive jobs (the paper's dominant DM class) arrive
as a Poisson stream on a node already hosting long capacity/bandwidth
jobs.  As the offered rate grows, the constrained baseline's turnaround
explodes (each arrival triggers reclaim into an already-thrashing node)
while IMME absorbs the stream — the §IV-D4 "reduced startup + execution
time at scale" effect, viewed open-loop.
"""

from __future__ import annotations

from ..envs.environments import EnvKind, make_environment
from ..util.rng import RngFactory
from ..workflows.arrivals import poisson_arrivals
from ..workflows.ensembles import make_ensemble
from ..workflows.library import data_mining_task, deep_learning_task, scientific_task
from .common import CHUNK, SCALE, FigureResult

__all__ = ["run_open_system"]


def run_open_system(
    *,
    scale: float = SCALE,
    rates: tuple[float, ...] = (0.05, 0.10, 0.20),
    stream_length: int = 12,
    chunk_size: int = CHUNK,
    seed: int = 0,
) -> FigureResult:
    factory = RngFactory(seed)
    background = [
        deep_learning_task("bg-dl", scale=scale),
        scientific_task("bg-sc", scale=scale),
    ]
    stream = make_ensemble(
        data_mining_task(scale=scale), stream_length, rng_factory=factory
    )
    total = sum(s.max_footprint for s in background + stream)

    result = FigureResult(
        figure="ext-open-system",
        description=(
            f"Open system: {stream_length} DM arrivals (Poisson) over busy "
            "background jobs — mean DM turnaround (s) vs offered rate"
        ),
        xlabels=[f"{r:.2f}/s" for r in rates],
    )
    for kind in (EnvKind.CBE, EnvKind.IMME):
        series = []
        for rate in rates:
            env = make_environment(
                kind, dram_capacity=int(total * 0.30), chunk_size=chunk_size
            )
            arrivals = [0.0] * len(background) + poisson_arrivals(
                rate,
                stream_length,
                rng_factory=RngFactory(seed),
                stream=f"open.{rate}",
                start=5.0,
            )
            metrics = env.run_arrivals(background + stream, arrivals, max_time=1e7)
            dm_turnaround = [
                t.turnaround for t in metrics.completed() if t.wclass == "DM"
            ]
            series.append(sum(dm_turnaround) / max(1, len(dm_turnaround)))
            env.stop()
        result.add_series(kind.name, series)
    worst = max(
        c / i for c, i in zip(result.series["CBE"], result.series["IMME"])
    )
    result.notes.append(
        f"CBE's DM turnaround is up to {worst:.1f}x IMME's under the stream"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_open_system().to_table())
