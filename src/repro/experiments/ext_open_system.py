"""Extension experiment — open-system DM stream under increasing load.

Short-lived latency-sensitive jobs (the paper's dominant DM class) arrive
as a Poisson stream on a node already hosting long capacity/bandwidth
jobs.  As the offered rate grows, the constrained baseline's turnaround
explodes (each arrival triggers reclaim into an already-thrashing node)
while IMME absorbs the stream — the §IV-D4 "reduced startup + execution
time at scale" effect, viewed open-loop.

Each (environment, rate) point is one registered *service* scenario: the
arrival stream runs through :mod:`repro.service` (one pending arrival
event, admission hooks, windowed report) and the cell condenses the
report's DM turnaround distribution.  A cell where no DM task completed
reports NaN — never a fake 0.0 mean — and the summary note masks NaN
points instead of dividing by them.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Tuple

from ..envs.environments import EnvKind
from ..scenarios.build import run_service
from ..scenarios.paper import ext_open_system_family
from ..scenarios.spec import ScenarioSpec
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_open_system"]


def _open_system_cell(scenario: ScenarioSpec) -> Tuple[float, float]:
    """(mean, p95) DM turnaround (s) for one (environment, offered rate);
    (NaN, NaN) when no DM task completed."""
    report = run_service(scenario)
    try:
        dm = report.latency("DM")
    except KeyError:
        return (math.nan, math.nan)
    return (dm.mean, dm.p95)


def run_open_system(
    *,
    scale: float = SCALE,
    rates: tuple[float, ...] = (0.05, 0.10, 0.20),
    stream_length: int = 12,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_open_system_family(
        scale=scale,
        rates=rates,
        stream_length=stream_length,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="ext-open-system",
        description=(
            f"Open system: {stream_length} DM arrivals (Poisson, service "
            "mode) over busy background jobs — DM turnaround (s) vs offered rate"
        ),
        xlabels=[f"{r:.2f}/s" for r in rates],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ext-open-system", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_open_system_cell, scenario)
    cells = sweep(spec, jobs=jobs, cache=cache)
    for kind in (EnvKind.CBE, EnvKind.IMME):
        points = [cells[f"{kind.name}:{rate:.2f}"] for rate in rates]
        result.add_series(kind.name, [mean for mean, _ in points])
        result.add_series(f"{kind.name} p95", [p95 for _, p95 in points])
    ratios = [
        c / i
        for c, i in zip(result.series["CBE"], result.series["IMME"])
        if math.isfinite(c) and math.isfinite(i) and i > 0
    ]
    if ratios:
        result.notes.append(
            f"CBE's DM turnaround is up to {max(ratios):.1f}x IMME's under the stream"
        )
    else:
        result.notes.append("no rate produced DM completions in both environments")
    empty = [
        f"{kind.name}:{rate:.2f}"
        for kind in (EnvKind.CBE, EnvKind.IMME)
        for rate in rates
        if not math.isfinite(cells[f"{kind.name}:{rate:.2f}"][0])
    ]
    if empty:
        result.notes.append(f"cells with no DM completions (NaN): {', '.join(empty)}")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_open_system().to_table())
