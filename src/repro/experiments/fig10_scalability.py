"""Figure 10 — cluster-size scalability with the paper's 2000-instance mix.

The paper launches 150 DL + 1100 DM + 150 DC + 600 SC instances across a
growing cluster.  We run the same 150:1100:150:600 ratio scaled down (the
``total_instances`` knob) over 2/4/8 nodes.  Paper shape: makespan falls
with cluster size for every environment; CBE stays worst (contention at
every node); IMME wins overall — with a visible startup-time component
because shared CXL image staging removes the network pull storm
(improvements up to 51 %/76 %/32 % vs IE/CBE/TME).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..envs.environments import EnvKind
from ..metrics.report import improvement
from ..scenarios.build import realize
from ..scenarios.paper import fig10_family
from ..scenarios.spec import ScenarioSpec
from .common import (
    SCALE,
    CHUNK,
    FigureResult,
    SweepSpec,
    family_provenance,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_fig10"]

ENVS = (EnvKind.IE, EnvKind.CBE, EnvKind.TME, EnvKind.IMME)


def _fig10_cell(scenario: ScenarioSpec) -> tuple[float, float]:
    """(makespan, mean container startup) for one (environment, cluster size)."""
    metrics = realize(scenario).execute()
    return metrics.makespan(), metrics.mean_startup_time()


def run_fig10(
    *,
    scale: float = SCALE,
    total_instances: int = 48,
    node_counts: tuple[int, ...] = (2, 4, 8),
    dram_fraction: float = 0.30,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = fig10_family(
        scale=scale,
        total_instances=total_instances,
        node_counts=node_counts,
        dram_fraction=dram_fraction,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="fig10",
        description=(
            f"Fig 10: batch makespan (s), {total_instances} instances in the paper's "
            "150:1100:150:600 mix, vs. cluster size"
        ),
        xlabels=[f"{n}n" for n in node_counts],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("fig10", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_fig10_cell, scenario)
    cells = sweep(spec, jobs=jobs, cache=cache)
    startup = {}
    for kind in ENVS:
        series = [cells[f"{kind.name}:{n}n"][0] for n in node_counts]
        startup[kind.name] = cells[f"{kind.name}:{node_counts[-1]}n"][1]
        result.add_series(kind.name, series)

    gains = {
        base.name: max(
            improvement(result.series[base.name][i], result.series["IMME"][i])
            for i in range(len(node_counts))
        )
        for base in (EnvKind.IE, EnvKind.CBE, EnvKind.TME)
    }
    result.notes.append(
        "IMME max improvement vs IE/CBE/TME: "
        + ", ".join(f"{k}={100 * v:.0f}%" for k, v in gains.items())
        + " (paper: 51%/76%/32%)"
    )
    result.notes.append(
        "mean container startup at max nodes: "
        + ", ".join(f"{k}={v:.2f}s" for k, v in startup.items())
        + " (IMME reads images from shared CXL instead of pulling)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig10().to_table())
