"""Extension experiment — workflow deconstruction vs monolithic execution.

§I: deconstructed workflows "enable node-level colocation ... and address
stranded memory problems".  Two big multi-phase jobs (DL training, DC
compression) run alongside a stream of latency-sensitive DM work on one
memory-tight node — once as monoliths holding their full footprint for
their whole lifetime, once deconstructed into per-phase sub-tasks that
only hold what they touch.
"""

from __future__ import annotations

import numpy as np

from ..envs.environments import EnvKind, make_environment
from ..util.rng import RngFactory
from ..wms.decompose import decompose_task
from ..wms.planner import WorkflowManager
from ..workflows.dag import chain_workflow
from ..workflows.ensembles import make_ensemble
from ..workflows.library import data_compression_task, data_mining_task, deep_learning_task
from .common import CHUNK, SCALE, FigureResult

__all__ = ["run_decomposition"]


def run_decomposition(
    *,
    scale: float = SCALE,
    dm_instances: int = 6,
    dram_fraction: float = 0.35,
    chunk_size: int = CHUNK,
    seed: int = 0,
) -> FigureResult:
    big_jobs = [
        deep_learning_task("big-dl", scale=scale, epochs=3),
        data_compression_task("big-dc", scale=scale),
    ]
    dm_stream = make_ensemble(
        data_mining_task(scale=scale), dm_instances, rng_factory=RngFactory(seed)
    )
    total = sum(s.max_footprint for s in big_jobs + dm_stream)

    result = FigureResult(
        figure="ext-decomposition",
        description=(
            "Workflow deconstruction: big multi-phase jobs + DM stream on a "
            "memory-tight node"
        ),
        xlabels=["makespan (s)", "mean DM exec (s)", "peak big-job bytes (MiB)"],
    )
    for label, decomposed in (("monolithic", False), ("deconstructed", True)):
        env = make_environment(
            EnvKind.IMME,
            dram_capacity=int(total * dram_fraction),
            chunk_size=chunk_size,
        )
        mgr = WorkflowManager(env.scheduler)
        peak_big = 0
        if decomposed:
            for spec in big_jobs:
                mgr.submit(decompose_task(spec))
        else:
            for spec in big_jobs:
                mgr.submit(chain_workflow(f"{spec.name}.chain", [spec]))
        for spec in dm_stream:
            env.scheduler.submit(spec)
        while not (mgr.all_complete and env.scheduler.all_done):
            env.engine.step()
            big_resident = sum(
                ps.mapped_bytes
                for node in env.topology.nodes
                for ps in node.pagesets()
                if ps.owner.startswith("big-")
            )
            peak_big = max(peak_big, big_resident)
        metrics = env.metrics
        dm_times = [
            t.execution_time for t in metrics.completed() if t.wclass == "DM"
        ]
        result.add_series(
            label,
            [
                metrics.makespan(),
                float(np.mean(dm_times)),
                peak_big / (1 << 20),
            ],
        )
        env.stop()
    saved = result.value("monolithic", "peak big-job bytes (MiB)") - result.value(
        "deconstructed", "peak big-job bytes (MiB)"
    )
    result.notes.append(
        f"deconstruction un-strands ~{saved:.0f} MiB of peak residency for colocation"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_decomposition().to_table())
