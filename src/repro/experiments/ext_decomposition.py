"""Extension experiment — workflow deconstruction vs monolithic execution.

§I: deconstructed workflows "enable node-level colocation ... and address
stranded memory problems".  Two big multi-phase jobs (DL training, DC
compression) run alongside a stream of latency-sensitive DM work on one
memory-tight node (the registered ``ext-decomposition`` scenario) — once
as monoliths holding their full footprint for their whole lifetime, once
deconstructed into per-phase sub-tasks that only hold what they touch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..scenarios.build import realize
from ..scenarios.paper import ext_decomposition_family
from ..scenarios.spec import ScenarioSpec
from ..wms.decompose import decompose_task
from ..wms.planner import WorkflowManager
from ..workflows.dag import chain_workflow
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_decomposition"]

_LABELS = (("monolithic", False), ("deconstructed", True))


def _decomposition_cell(scenario: ScenarioSpec, decomposed: bool) -> list[float]:
    """[makespan, mean DM exec, peak big-job MiB] for one execution mode."""
    # the decomposition source puts the two big jobs first in the batch
    realized = realize(scenario)
    env = realized.env
    big_jobs, dm_stream = realized.tasks[:2], realized.tasks[2:]
    mgr = WorkflowManager(env.scheduler)
    peak_big = 0
    if decomposed:
        for spec in big_jobs:
            mgr.submit(decompose_task(spec))
    else:
        for spec in big_jobs:
            mgr.submit(chain_workflow(f"{spec.name}.chain", [spec]))
    for spec in dm_stream:
        env.scheduler.submit(spec)
    while not (mgr.all_complete and env.scheduler.all_done):
        env.engine.step()
        big_resident = sum(
            ps.mapped_bytes
            for node in env.topology.nodes
            for ps in node.pagesets()
            if ps.owner.startswith("big-")
        )
        peak_big = max(peak_big, big_resident)
    metrics = env.metrics
    dm_times = [t.execution_time for t in metrics.completed() if t.wclass == "DM"]
    out = [metrics.makespan(), float(np.mean(dm_times)), peak_big / (1 << 20)]
    env.stop()
    return out


def run_decomposition(
    *,
    scale: float = SCALE,
    dm_instances: int = 6,
    dram_fraction: float = 0.35,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_decomposition_family(
        scale=scale,
        dm_instances=dm_instances,
        dram_fraction=dram_fraction,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="ext-decomposition",
        description=(
            "Workflow deconstruction: big multi-phase jobs + DM stream on a "
            "memory-tight node"
        ),
        xlabels=["makespan (s)", "mean DM exec (s)", "peak big-job bytes (MiB)"],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ext-decomposition", base_seed=seed)
    for label, decomposed in _LABELS:
        spec.add_scenario(
            _decomposition_cell, family.scenarios[0], key=label, decomposed=decomposed
        )
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)
    saved = result.value("monolithic", "peak big-job bytes (MiB)") - result.value(
        "deconstructed", "peak big-job bytes (MiB)"
    )
    result.notes.append(
        f"deconstruction un-strands ~{saved:.0f} MiB of peak residency for colocation"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_decomposition().to_table())
