"""Extension experiment — shared read-only inputs on CXL (§III-C5 strat. 1).

An ensemble of data-mining instances all read the same input dataset
(e.g. the census data of the paper's DM workload).  Under IMME the dataset
is staged once in cluster-shared CXL and referenced by every instance;
every other environment gives each instance a private copy, multiplying
the memory footprint and the pressure-induced slowdown.

This isolates the shared-memory strategy the Fig. 10/11 results bundle
into their startup/exec improvements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..envs.environments import EnvKind
from ..scenarios.build import realize
from ..scenarios.paper import ext_shared_inputs_family
from ..scenarios.spec import ScenarioSpec
from ..util.units import GiB
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_shared_inputs"]


def _shared_inputs_cell(scenario: ScenarioSpec) -> list[float]:
    """[mean DM exec, peak resident MiB, staged copies] for one environment.

    Steps the engine manually to sample cluster residency at every event,
    which :meth:`Environment.run_batch` cannot do.
    """
    realized = realize(scenario)
    env, members = realized.env, realized.tasks
    env.scheduler.submit_batch(members)
    peak_resident = 0
    while not env.scheduler.all_done:
        env.engine.step()
        resident = sum(
            node.rss(t) for node in env.topology.nodes for t in (0, 1, 2)
        )
        peak_resident = max(peak_resident, resident)
    metrics = env.metrics
    copies = (
        1.0
        if env.shared_memory is not None and env.shared_memory.stage_count >= 1
        else float(len(members))
    )
    env.stop()
    return [
        metrics.mean_execution_time("DM"),
        peak_resident / (1 << 20),
        copies,
    ]


def run_shared_inputs(
    *,
    scale: float = SCALE,
    instances: int = 8,
    input_bytes: int | None = None,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_shared_inputs_family(
        scale=scale,
        instances=instances,
        input_bytes=input_bytes,
        chunk_size=chunk_size,
        seed=seed,
    )
    shown_bytes = input_bytes if input_bytes is not None else max(1, int(GiB(16) * scale))
    result = FigureResult(
        figure="ext-shared-inputs",
        description=(
            f"Shared-input extension: {instances} DM instances reading one "
            f"{shown_bytes >> 20} MiB dataset"
        ),
        xlabels=["exec time (s)", "resident bytes (MiB)", "staged copies"],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ext-shared-inputs", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_shared_inputs_cell, scenario)
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)
    saved = result.value(EnvKind.TME.name, "resident bytes (MiB)") - result.value(
        EnvKind.IMME.name, "resident bytes (MiB)"
    )
    result.notes.append(
        f"IMME stages the dataset once, saving ~{saved:.0f} MiB of per-node "
        "residency and the associated pressure"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_shared_inputs().to_table())
