"""Extension experiment — shared read-only inputs on CXL (§III-C5 strat. 1).

An ensemble of data-mining instances all read the same input dataset
(e.g. the census data of the paper's DM workload).  Under IMME the dataset
is staged once in cluster-shared CXL and referenced by every instance;
every other environment gives each instance a private copy, multiplying
the memory footprint and the pressure-induced slowdown.

This isolates the shared-memory strategy the Fig. 10/11 results bundle
into their startup/exec improvements.
"""

from __future__ import annotations

from ..envs.environments import EnvKind, make_environment
from ..util.rng import RngFactory
from ..util.units import GiB
from ..workflows.ensembles import make_ensemble
from ..workflows.library import data_mining_task, with_shared_input
from .common import CHUNK, SCALE, FigureResult

__all__ = ["run_shared_inputs"]


def run_shared_inputs(
    *,
    scale: float = SCALE,
    instances: int = 8,
    input_bytes: int | None = None,
    chunk_size: int = CHUNK,
    seed: int = 0,
) -> FigureResult:
    if input_bytes is None:
        input_bytes = max(1, int(GiB(16) * scale))
    base = data_mining_task(scale=scale)
    members = [
        with_shared_input(m, "census-dataset", input_bytes)
        for m in make_ensemble(base, instances, rng_factory=RngFactory(seed))
    ]
    private_total = sum(s.max_footprint for s in members)
    # size DRAM so the *private-copy* variant is heavily pressured while
    # the shared variant (one staged copy) fits comfortably
    dram = int(private_total * 0.30)

    result = FigureResult(
        figure="ext-shared-inputs",
        description=(
            f"Shared-input extension: {instances} DM instances reading one "
            f"{input_bytes >> 20} MiB dataset"
        ),
        xlabels=["exec time (s)", "resident bytes (MiB)", "staged copies"],
    )
    for kind in (EnvKind.TME, EnvKind.IMME):
        env = make_environment(kind, dram_capacity=dram, chunk_size=chunk_size)
        peak_resident = 0

        env.scheduler.submit_batch(members)
        while not env.scheduler.all_done:
            env.engine.step()
            resident = sum(
                node.rss(t) for node in env.topology.nodes for t in (0, 1, 2)
            )
            peak_resident = max(peak_resident, resident)
        metrics = env.metrics
        copies = (
            1.0
            if env.shared_memory is not None and env.shared_memory.stage_count >= 1
            else float(instances)
        )
        result.add_series(
            kind.name,
            [
                metrics.mean_execution_time("DM"),
                peak_resident / (1 << 20),
                copies,
            ],
        )
        env.stop()
    saved = result.value("TME", "resident bytes (MiB)") - result.value(
        "IMME", "resident bytes (MiB)"
    )
    result.notes.append(
        f"IMME stages the dataset once, saving ~{saved:.0f} MiB of per-node "
        "residency and the associated pressure"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_shared_inputs().to_table())
