"""Figure 5 — total execution time across the four environments.

Colocated instances of all four studied workflows run under IE, CBE, TME
and IMME.  Paper headline: IMME reduces execution time by up to 7 %, 87 %
and 25 % versus IE, CBE and TME respectively — i.e. CBE is the disaster
case, TME recovers most of it, IMME closes the rest and can even beat IE
for bandwidth-intensive workflows (multi-path tier striping).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..envs.environments import EnvKind
from ..metrics.report import improvement
from ..workflows.task import WorkloadClass
from .common import (
    SCALE,
    CHUNK,
    CLASS_ORDER,
    FigureResult,
    SweepSpec,
    build_env,
    colocated_mix,
    per_class_exec_time,
    run_and_collect,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_fig05", "ENV_ORDER"]

ENV_ORDER = (EnvKind.IE, EnvKind.CBE, EnvKind.TME, EnvKind.IMME)


#: default colocation mix: instance counts leaning toward the paper's
#: DM-heavy 150:1100:150:600 class ratio, sized so a single node sees real
#: bandwidth contention and memory pressure.
DEFAULT_MIX = {
    WorkloadClass.DL: 6,
    WorkloadClass.DM: 8,
    WorkloadClass.DC: 3,
    WorkloadClass.SC: 4,
}


def _fig05_cell(
    kind: EnvKind,
    instances_per_class: "int | dict[WorkloadClass, int]",
    scale: float,
    dram_fraction: float,
    chunk_size: int,
    seed: int,
) -> list[float]:
    """One environment's per-class mean execution times (hermetic: the
    workload is rebuilt deterministically from the seed in-process)."""
    specs = colocated_mix(instances_per_class, scale=scale, seed=seed)
    env = build_env(kind, specs, dram_fraction=dram_fraction, chunk_size=chunk_size)
    metrics = run_and_collect(env, specs)
    times = per_class_exec_time(metrics)
    return [times[cls] for cls in CLASS_ORDER]


def run_fig05(
    *,
    scale: float = SCALE,
    instances_per_class: "int | dict[WorkloadClass, int] | None" = None,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    if instances_per_class is None:
        instances_per_class = dict(DEFAULT_MIX)
    result = FigureResult(
        figure="fig05",
        description="Fig 5: mean workflow execution time (s) per environment",
        xlabels=[cls.name for cls in CLASS_ORDER],
    )
    spec = SweepSpec("fig05", base_seed=seed)
    for kind in ENV_ORDER:
        spec.add(
            kind.name,
            _fig05_cell,
            kind=kind,
            instances_per_class=instances_per_class,
            scale=scale,
            dram_fraction=dram_fraction,
            chunk_size=chunk_size,
            seed=seed,
        )
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)

    best = {}
    for base in (EnvKind.IE, EnvKind.CBE, EnvKind.TME):
        best[base.name] = max(
            improvement(result.value(base.name, c.name), result.value("IMME", c.name))
            for c in CLASS_ORDER
        )
    result.notes.append(
        "IMME max improvement vs IE/CBE/TME: "
        + ", ".join(f"{k}={100 * v:.0f}%" for k, v in best.items())
        + " (paper: 7%/87%/25%)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig05().to_table())
