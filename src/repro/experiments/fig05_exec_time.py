"""Figure 5 — total execution time across the four environments.

Colocated instances of all four studied workflows run under IE, CBE, TME
and IMME.  Paper headline: IMME reduces execution time by up to 7 %, 87 %
and 25 % versus IE, CBE and TME respectively — i.e. CBE is the disaster
case, TME recovers most of it, IMME closes the rest and can even beat IE
for bandwidth-intensive workflows (multi-path tier striping).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..envs.environments import EnvKind
from ..metrics.report import improvement
from ..scenarios.paper import DEFAULT_MIX, fig05_family
from ..workflows.task import WorkloadClass
from .common import (
    SCALE,
    CHUNK,
    CLASS_ORDER,
    FigureResult,
    SweepSpec,
    family_provenance,
    scenario_class_times,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_fig05", "DEFAULT_MIX", "ENV_ORDER"]

ENV_ORDER = (EnvKind.IE, EnvKind.CBE, EnvKind.TME, EnvKind.IMME)


def run_fig05(
    *,
    scale: float = SCALE,
    instances_per_class: "int | dict[WorkloadClass, int] | None" = None,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = fig05_family(
        scale=scale,
        instances_per_class=instances_per_class,
        dram_fraction=dram_fraction,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="fig05",
        description="Fig 5: mean workflow execution time (s) per environment",
        xlabels=[cls.name for cls in CLASS_ORDER],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("fig05", base_seed=seed)
    for scenario in family:
        spec.add_scenario(scenario_class_times, scenario)
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)

    best = {}
    for base in (EnvKind.IE, EnvKind.CBE, EnvKind.TME):
        best[base.name] = max(
            improvement(result.value(base.name, c.name), result.value("IMME", c.name))
            for c in CLASS_ORDER
        )
    result.notes.append(
        "IMME max improvement vs IE/CBE/TME: "
        + ", ".join(f"{k}={100 * v:.0f}%" for k, v in best.items())
        + " (paper: 7%/87%/25%)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig05().to_table())
