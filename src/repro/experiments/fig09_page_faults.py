"""Figure 9 — page-fault statistics under the page-movement policy.

The same constrained colocated mix runs under three movement regimes:
kernel LRU swapping (IE-style management on constrained DRAM), TME's
temperature promotion/demotion, and IMME's intelligent movement with
proactive swapping.  Paper shape: IMME (and to a lesser degree TME)
converts major faults into minor faults by keeping pages byte-addressable
on CXL or shadowed in the page cache, improving performance by ~46 %
versus default swapping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..metrics.report import improvement
from ..scenarios.build import realize
from ..scenarios.paper import fig09_family
from ..scenarios.spec import ScenarioSpec
from .common import (
    SCALE,
    CHUNK,
    CLASS_ORDER,
    FigureResult,
    SweepSpec,
    family_provenance,
    per_class_exec_time,
    per_class_faults,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_fig09"]


def _fig09_cell(scenario: ScenarioSpec) -> dict:
    """One environment's fault counts, mean exec time, and traffic."""
    realized = realize(scenario)
    metrics = realized.execute()
    faults = per_class_faults(metrics)
    times = per_class_exec_time(metrics)
    return {
        "major": [float(faults[c][0]) for c in CLASS_ORDER],
        "minor": [float(faults[c][1]) for c in CLASS_ORDER],
        "exec_mean": float(np.mean([times[c] for c in CLASS_ORDER])),
        "traffic": realized.env.node_traffic(),
    }


def run_fig09(
    *,
    scale: float = SCALE,
    instances_per_class: "int | dict | None" = None,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = fig09_family(
        scale=scale,
        instances_per_class=instances_per_class,
        dram_fraction=dram_fraction,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="fig09",
        description="Fig 9: page faults (majors/minors) and data movement per environment",
        xlabels=[cls.name for cls in CLASS_ORDER],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("fig09", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_fig09_cell, scenario)
    exec_means = {}
    traffic = {}
    for key, cell in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(f"{key}:major", cell["major"])
        result.add_series(f"{key}:minor", cell["minor"])
        exec_means[key] = cell["exec_mean"]
        traffic[key] = cell["traffic"]

    gain = improvement(exec_means["CBE"], exec_means["IMME"])
    result.notes.append(
        f"IMME mean-exec-time improvement vs default swapping: {100 * gain:.0f}% (paper: 46%)"
    )
    for name in ("CBE", "IMME"):
        t = traffic[name]
        result.notes.append(
            f"{name}: swapped-out {t['swapped_out_bytes'] >> 20} MiB, "
            f"migrated-to-CXL {t['migrated_to_cxl_bytes'] >> 20} MiB, "
            f"page-cache inserts {t['page_cache_inserts']}"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig09().to_table())
