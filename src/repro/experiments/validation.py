"""Simulator validation — closed-form vs simulated slowdowns.

Before trusting the figure reproductions, verify the substrate: for a
single uncontended task pinned to one tier, the rate model's slowdown has
a closed form,

``slowdown = compute + lat·(L_tier/L_dram) + bw·max(1, demand/bw_tier)``

and the end-to-end simulated execution time must match
``base_time × slowdown`` exactly (no contention, no movement, no faults).
This experiment runs that matrix — tier × sensitivity mix, the registered
``validation`` scenario family — through the full stack (scheduler,
containers, executor) and reports predicted-vs-simulated error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..memory.tiers import CXL, DRAM, PMEM, TierKind
from ..scenarios.build import realize
from ..scenarios.paper import validation_family
from ..scenarios.spec import ScenarioSpec
from ..scenarios.workloads import VALIDATION_MIXES
from .common import CHUNK, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_validation"]

TIERS = (DRAM, PMEM, CXL)


def _validation_cell(scenario: ScenarioSpec) -> float:
    """Simulated/predicted execution-time ratio for one (tier, mix) probe."""
    tier = TierKind[scenario.member.split(":", 1)[0]]
    compute, lat, bw, demand = VALIDATION_MIXES[str(scenario.workload.param("mix"))]
    realized = realize(scenario)
    task = realized.tasks[0]
    metrics = realized.execute()
    simulated = metrics.get(task.name).execution_time
    specs = realized.env.topology.node(0).specs
    lat_mult = specs[tier].latency / specs[DRAM].latency
    bw_mult = max(1.0, demand / specs[tier].bandwidth) if demand else 1.0
    predicted = task.phases[0].base_time * (compute + lat * lat_mult + bw * bw_mult)
    return float(simulated / predicted)


def run_validation(
    *,
    chunk_size: int = CHUNK,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = validation_family(chunk_size=chunk_size)
    result = FigureResult(
        figure="validation",
        description=(
            "Simulator validation: simulated/predicted execution-time ratio "
            "for single tasks pinned per tier (exact model: ratio = 1)"
        ),
        xlabels=list(VALIDATION_MIXES),
        provenance=family_provenance(family),
    )
    spec = SweepSpec("validation")
    for scenario in family:
        spec.add_scenario(_validation_cell, scenario)
    cells = sweep(spec, jobs=jobs, cache=cache)
    for tier in TIERS:
        result.add_series(
            tier.name, [cells[f"{tier.name}:{mix}"] for mix in VALIDATION_MIXES]
        )
    worst = max(abs(v - 1.0) for vals in result.series.values() for v in vals)
    result.notes.append(f"worst relative model error: {100 * worst:.2f}%")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_validation().to_table(float_fmt="{:.4f}"))
