"""Simulator validation — closed-form vs simulated slowdowns.

Before trusting the figure reproductions, verify the substrate: for a
single uncontended task pinned to one tier, the rate model's slowdown has
a closed form,

``slowdown = compute + lat·(L_tier/L_dram) + bw·max(1, demand/bw_tier)``

and the end-to-end simulated execution time must match
``base_time × slowdown`` exactly (no contention, no movement, no faults).
This experiment runs that matrix — tier × sensitivity mix — through the
full stack (scheduler, containers, executor) and reports
predicted-vs-simulated error.
"""

from __future__ import annotations

from ..core.flags import MemFlag
from ..envs.environments import EnvKind, EnvironmentConfig, Environment
from ..memory.tiers import CXL, DRAM, PMEM, TierKind
from ..policies.interleave import DefaultAllocationPolicy
from ..util.units import GBps, MiB
from ..workflows.patterns import UniformPattern
from ..workflows.task import TaskPhase, TaskSpec, WorkloadClass
from .common import CHUNK, FigureResult

__all__ = ["run_validation"]

#: (label, compute, lat, bw, demand bytes/s)
MIXES = (
    ("compute", 1.0, 0.0, 0.0, 0.0),
    ("latency", 0.3, 0.7, 0.0, 0.0),
    ("bandwidth", 0.3, 0.0, 0.7, GBps(60.0)),
    ("blend", 0.4, 0.4, 0.2, GBps(10.0)),
)

TIERS = (DRAM, PMEM, CXL)


def _spec(name: str, mix) -> TaskSpec:
    _, compute, lat, bw, demand = mix
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.GENERIC,
        footprint=MiB(4),
        wss=MiB(4),
        phases=(
            TaskPhase(
                name="steady",
                base_time=20.0,
                compute_frac=compute,
                lat_frac=lat,
                bw_frac=bw,
                demand_bandwidth=demand,
                pattern=UniformPattern(),
            ),
        ),
        flags=MemFlag.NONE,
        cores=1,
    )


def _predicted(mix, tier: TierKind, specs) -> float:
    _, compute, lat, bw, demand = mix
    lat_mult = specs[tier].latency / specs[DRAM].latency
    bw_mult = max(1.0, demand / specs[tier].bandwidth) if demand else 1.0
    return compute + lat * lat_mult + bw * bw_mult


def run_validation(*, chunk_size: int = CHUNK) -> FigureResult:
    result = FigureResult(
        figure="validation",
        description=(
            "Simulator validation: simulated/predicted execution-time ratio "
            "for single tasks pinned per tier (exact model: ratio = 1)"
        ),
        xlabels=[m[0] for m in MIXES],
    )
    for tier in TIERS:
        series = []
        for mix in MIXES:
            # pin the whole allocation to `tier` via a degenerate policy
            config = EnvironmentConfig(
                kind=EnvKind.TME,
                dram_capacity=MiB(64),
                pmem_capacity=MiB(64),
                cxl_capacity=MiB(64),
                chunk_size=chunk_size,
                policy_factory=lambda s, t=tier: DefaultAllocationPolicy(order=(t,)),
            )
            env = Environment(config)
            spec = _spec(f"v-{tier.name}-{mix[0]}", mix)
            metrics = env.run_batch([spec], max_time=1e6)
            simulated = metrics.get(spec.name).execution_time
            predicted = 20.0 * _predicted(mix, tier, env.topology.node(0).specs)
            series.append(simulated / predicted)
            env.stop()
        result.add_series(tier.name, series)
    worst = max(abs(v - 1.0) for vals in result.series.values() for v in vals)
    result.notes.append(f"worst relative model error: {100 * worst:.2f}%")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_validation().to_table(float_fmt="{:.4f}"))
