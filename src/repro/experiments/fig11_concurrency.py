"""Figure 11 — concurrent workflow invocations (batch-size sweep).

Batches of 100/200/400/800 instances (scaled via ``instance_counts``) in
the paper's class mix run on a fixed cluster.  Paper shape: execution time
grows with concurrency (contention); IMME's multi-tier allocation and
movement keep the growth shallow with ≈4 % runtime overhead versus TME at
the high end, and improvements up to 19 %/48 %/4 % vs IE/CBE/TME.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..envs.environments import EnvKind
from ..metrics.report import improvement
from ..scenarios.paper import fig11_family
from .common import (
    SCALE,
    CHUNK,
    FigureResult,
    SweepSpec,
    family_provenance,
    scenario_makespan,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_fig11"]

ENVS = (EnvKind.IE, EnvKind.CBE, EnvKind.TME, EnvKind.IMME)


def run_fig11(
    *,
    scale: float = SCALE,
    instance_counts: tuple[int, ...] = (8, 16, 32, 64),
    n_nodes: int = 4,
    dram_fraction: float = 0.30,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = fig11_family(
        scale=scale,
        instance_counts=instance_counts,
        n_nodes=n_nodes,
        dram_fraction=dram_fraction,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="fig11",
        description=f"Fig 11: batch makespan (s) vs. concurrent instances ({n_nodes} nodes)",
        xlabels=[str(c) for c in instance_counts],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("fig11", base_seed=seed)
    for scenario in family:
        spec.add_scenario(scenario_makespan, scenario)
    cells = sweep(spec, jobs=jobs, cache=cache)
    for kind in ENVS:
        result.add_series(kind.name, [cells[f"{kind.name}:{c}"] for c in instance_counts])

    gains = {
        base.name: max(
            improvement(result.series[base.name][i], result.series["IMME"][i])
            for i in range(len(instance_counts))
        )
        for base in (EnvKind.IE, EnvKind.CBE, EnvKind.TME)
    }
    result.notes.append(
        "IMME max improvement vs IE/CBE/TME: "
        + ", ".join(f"{k}={100 * v:.0f}%" for k, v in gains.items())
        + " (paper: 19%/48%/4%)"
    )
    # the paper's "negligible (4%) runtime overhead as workflows scale up":
    # IMME's makespan growth from the smallest to the largest batch should
    # track TME's (its data movement machinery adds no super-linear cost)
    growth = {
        name: result.series[name][-1] / result.series[name][0] for name in ("TME", "IMME")
    }
    rel_overhead = growth["IMME"] / growth["TME"] - 1.0
    result.notes.append(
        f"IMME scale-up growth vs TME's: {100 * rel_overhead:+.1f}% "
        "(paper reports <=4% runtime overhead at scale)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig11().to_table())
