"""Ablation harness — switch off one IMME mechanism at a time.

DESIGN.md §6's list, runnable as ``python -m repro.experiments ablations``:

* ``no-proactive`` — disable proactive swapping (§III-C4): movement
  becomes purely reactive and no page-cache shadows exist,
* ``no-pinning`` — ``pin_fraction=0``: LAT/SHL allocations lose their
  guaranteed slice (Fig. 4),
* ``no-staging`` — no shared-CXL image staging (§III-C5): startup pays
  network pulls,
* ``no-striping`` — Algorithm 1's BW branch collapses to DRAM-only
  cascading: no multi-path bandwidth aggregation.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.manager import TieredMemoryManager
from ..core.movement import MovementConfig
from ..envs.environments import EnvKind
from ..memory.tiers import DRAM, TierKind, TierSpec
from ..policies.base import MemoryPolicy
from .common import CHUNK, SCALE, FigureResult, build_env, colocated_mix
from .fig05_exec_time import DEFAULT_MIX

__all__ = ["run_ablations"]


def _no_proactive(specs: dict[TierKind, TierSpec]) -> MemoryPolicy:
    cfg = MovementConfig(proactive_threshold=1.0, proactive_target=1.0)
    return TieredMemoryManager(specs, movement_config=cfg)


def _no_pinning(specs: dict[TierKind, TierSpec]) -> MemoryPolicy:
    return TieredMemoryManager(specs, pin_fraction=0.0)


def _no_striping(specs: dict[TierKind, TierSpec]) -> MemoryPolicy:
    mgr = TieredMemoryManager(specs)
    mgr.allocator.bw_fractions = {DRAM: 1.0}
    return mgr


_VARIANTS: dict[str, tuple[Optional[Callable], bool]] = {
    # name -> (policy factory override, stage images?)
    "full-imme": (None, True),
    "no-proactive": (_no_proactive, True),
    "no-pinning": (_no_pinning, True),
    "no-staging": (None, False),
    "no-striping": (_no_striping, True),
}


def run_ablations(
    *,
    scale: float = SCALE,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
) -> FigureResult:
    specs = colocated_mix(dict(DEFAULT_MIX), scale=scale, seed=seed)
    result = FigureResult(
        figure="ablations",
        description="IMME ablations: one mechanism removed at a time",
        xlabels=["DM exec (s)", "DL exec (s)", "startup (s)", "pc-inserts"],
    )
    for name, (factory, stage) in _VARIANTS.items():
        env = build_env(
            EnvKind.IMME,
            specs,
            dram_fraction=dram_fraction,
            chunk_size=chunk_size,
            policy_factory=factory,
        )
        env.config.stage_images = stage
        metrics = env.run_batch(specs, max_time=1e7)
        traffic = env.node_traffic()
        result.add_series(
            name,
            [
                metrics.mean_execution_time("DM"),
                metrics.mean_execution_time("DL"),
                metrics.mean_startup_time(),
                float(traffic["page_cache_inserts"]),
            ],
        )
        env.stop()
    result.notes.append(
        "expected: no-proactive zeroes pc-inserts; no-pinning/no-proactive "
        "never improve DM; no-staging inflates startup; no-striping slows DL"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_ablations().to_table())
