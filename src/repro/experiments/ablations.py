"""Ablation harness — switch off one IMME mechanism at a time.

DESIGN.md §6's list, runnable as ``python -m repro.experiments ablations``:

* ``no-proactive`` — disable proactive swapping (§III-C4): movement
  becomes purely reactive and no page-cache shadows exist,
* ``no-pinning`` — ``pin_fraction=0``: LAT/SHL allocations lose their
  guaranteed slice (Fig. 4),
* ``no-staging`` — no shared-CXL image staging (§III-C5): startup pays
  network pulls,
* ``no-striping`` — Algorithm 1's BW branch collapses to DRAM-only
  cascading: no multi-path bandwidth aggregation.

Each variant is a registered scenario (named policy override or
``stage_images`` flip), so the whole ablation grid serializes and caches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..scenarios.build import realize
from ..scenarios.paper import ablations_family
from ..scenarios.spec import ScenarioSpec
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_ablations"]


def _ablation_cell(scenario: ScenarioSpec) -> list[float]:
    """DM/DL exec means, mean startup, and page-cache inserts for one variant."""
    realized = realize(scenario)
    metrics = realized.execute()
    traffic = realized.env.node_traffic()
    return [
        metrics.mean_execution_time("DM"),
        metrics.mean_execution_time("DL"),
        metrics.mean_startup_time(),
        float(traffic["page_cache_inserts"]),
    ]


def run_ablations(
    *,
    scale: float = SCALE,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ablations_family(
        scale=scale, dram_fraction=dram_fraction, chunk_size=chunk_size, seed=seed
    )
    result = FigureResult(
        figure="ablations",
        description="IMME ablations: one mechanism removed at a time",
        xlabels=["DM exec (s)", "DL exec (s)", "startup (s)", "pc-inserts"],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ablations", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_ablation_cell, scenario)
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)
    result.notes.append(
        "expected: no-proactive zeroes pc-inserts; no-pinning/no-proactive "
        "never improve DM; no-staging inflates startup; no-striping slows DL"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_ablations().to_table())
