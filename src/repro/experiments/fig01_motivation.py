"""Figure 1 — motivation: impact of tiered memory on containerized workflows.

Three memory configurations over the same memory-constrained node:

* **swap-constrained** — DRAM + disk swap only (pages spill to swap),
* **tiered-alloc** — PMem/CXL present, demand allocation, but *no* page
  movement between tiers,
* **tiered+migration** — same tiers with temperature-driven
  promotion/demotion (pages actively migrate to CXL instead of swap).

Expected shape (paper §II-C): every workflow collapses under swap; static
tiered allocation recovers most of the loss; active migration recovers
more, with bandwidth-intensive workflows benefiting the most.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..scenarios.paper import fig01_family
from .common import (
    SCALE,
    CHUNK,
    CLASS_ORDER,
    FigureResult,
    SweepSpec,
    family_provenance,
    scenario_class_times,
    sweep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_fig01"]


def run_fig01(
    *,
    scale: float = SCALE,
    instances_per_class: "int | dict | None" = None,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = fig01_family(
        scale=scale,
        instances_per_class=instances_per_class,
        dram_fraction=dram_fraction,
        chunk_size=chunk_size,
        seed=seed,
    )
    result = FigureResult(
        figure="fig01",
        description="Fig 1: workflow execution time (s) under three memory configurations",
        xlabels=[cls.name for cls in CLASS_ORDER],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("fig01", base_seed=seed)
    for scenario in family:
        spec.add_scenario(scenario_class_times, scenario)
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)

    for cls in CLASS_ORDER:
        swap = result.value("swap-constrained", cls.name)
        mig = result.value("tiered+migration", cls.name)
        result.notes.append(f"{cls.name}: tiered+migration is {swap / mig:.1f}x faster than swap")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig01().to_table())
