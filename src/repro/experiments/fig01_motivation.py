"""Figure 1 — motivation: impact of tiered memory on containerized workflows.

Three memory configurations over the same memory-constrained node:

* **swap-constrained** — DRAM + disk swap only (pages spill to swap),
* **tiered-alloc** — PMem/CXL present, demand allocation, but *no* page
  movement between tiers,
* **tiered+migration** — same tiers with temperature-driven
  promotion/demotion (pages actively migrate to CXL instead of swap).

Expected shape (paper §II-C): every workflow collapses under swap; static
tiered allocation recovers most of the loss; active migration recovers
more, with bandwidth-intensive workflows benefiting the most.
"""

from __future__ import annotations

from ..envs.environments import EnvKind
from ..memory.tiers import CXL, DRAM, PMEM
from ..policies.interleave import DefaultAllocationPolicy
from .fig05_exec_time import DEFAULT_MIX
from .common import (
    SCALE,
    CHUNK,
    CLASS_ORDER,
    FigureResult,
    build_env,
    colocated_mix,
    per_class_exec_time,
    run_and_collect,
)

__all__ = ["run_fig01"]


def run_fig01(
    *,
    scale: float = SCALE,
    instances_per_class: "int | dict | None" = None,
    dram_fraction: float = 0.25,
    chunk_size: int = CHUNK,
    seed: int = 0,
) -> FigureResult:
    if instances_per_class is None:
        instances_per_class = dict(DEFAULT_MIX)
    specs = colocated_mix(instances_per_class, scale=scale, seed=seed)
    result = FigureResult(
        figure="fig01",
        description="Fig 1: workflow execution time (s) under three memory configurations",
        xlabels=[cls.name for cls in CLASS_ORDER],
    )

    configs = {
        "swap-constrained": dict(kind=EnvKind.CBE),
        "tiered-alloc": dict(
            kind=EnvKind.TME,
            policy_factory=lambda specs_: DefaultAllocationPolicy((DRAM, PMEM, CXL)),
        ),
        "tiered+migration": dict(kind=EnvKind.TME),
    }
    for name, cfg in configs.items():
        env = build_env(
            cfg["kind"],
            specs,
            dram_fraction=dram_fraction,
            chunk_size=chunk_size,
            policy_factory=cfg.get("policy_factory"),
        )
        metrics = run_and_collect(env, specs)
        times = per_class_exec_time(metrics)
        result.add_series(name, [times[cls] for cls in CLASS_ORDER])

    for cls in CLASS_ORDER:
        swap = result.value("swap-constrained", cls.name)
        mig = result.value("tiered+migration", cls.name)
        result.notes.append(f"{cls.name}: tiered+migration is {swap / mig:.1f}x faster than swap")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig01().to_table())
