"""Extension experiment — survival under an injected fault schedule.

The chaos companion to ``ext_failures``: the same memory-capped scientific
ensemble (each instance requests ~25% extra memory mid-run) runs while a
deterministic :class:`~repro.faults.FaultSchedule` disturbs the cluster —
a registry outage, a straggling task, a degraded PMem device, a node
crash, and a CXL link flap.  The schedule is *named* in the scenario
(``fault_schedule="default-chaos"``), so the whole disturbance replay
serializes with the spec.  CBE/TME instances die to the OOM killer
exactly as in ``ext_failures``; IMME's CAP expansions land in uncharged
CXL, so its workflows survive the memory pressure and the recovery paths
(requeue with backoff, tier evacuation, pull retry/fallback) carry them
through the faults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..scenarios.build import default_chaos_schedule, realize
from ..scenarios.paper import ext_resilience_family
from ..scenarios.spec import ScenarioSpec
from .common import CHUNK, SCALE, FigureResult, SweepSpec, family_provenance, sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.store import ResultCache

__all__ = ["run_resilience", "default_chaos_schedule"]


def _resilience_cell(scenario: ScenarioSpec) -> list[float]:
    """[completed, failed, requeues, faults, mttr, makespan] per environment."""
    metrics = realize(scenario).execute()
    completed = len(metrics.completed())
    return [
        float(completed),
        float(len(metrics.failed())),
        float(metrics.faults.job_requeues),
        float(metrics.faults.total_injected),
        metrics.faults.mttr,
        metrics.makespan() if completed else 0.0,
    ]


def run_resilience(
    *,
    scale: float = SCALE,
    instances: int = 4,
    limit_margin: float = 0.05,
    chunk_size: int = CHUNK,
    seed: int = 0,
    n_nodes: int = 2,
    fault_seed: int = 7,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> FigureResult:
    family = ext_resilience_family(
        scale=scale,
        instances=instances,
        limit_margin=limit_margin,
        chunk_size=chunk_size,
        seed=seed,
        n_nodes=n_nodes,
        fault_seed=fault_seed,
    )
    n_faults = len(default_chaos_schedule(n_nodes))
    result = FigureResult(
        figure="ext-resilience",
        description=(
            f"Survival under faults: {instances} memory-capped SC instances on "
            f"{n_nodes} nodes through {n_faults} injected faults "
            "(registry outage, straggler, degraded PMem, node crash, CXL flap)"
        ),
        xlabels=["completed", "failed", "requeues", "faults", "mttr (s)", "makespan (s)"],
        provenance=family_provenance(family, seed),
    )
    spec = SweepSpec("ext-resilience", base_seed=seed)
    for scenario in family:
        spec.add_scenario(_resilience_cell, scenario)
    for key, series in sweep(spec, jobs=jobs, cache=cache).items():
        result.add_series(key, series)
    result.notes.append(
        "every fault either recovers (requeue within max_retries, tier "
        "evacuation, pull retry/fallback) or is recorded as a failed job; "
        "only IMME also survives the memory cap (§IV-D1 + §III-A objective 1)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_resilience().to_table())
