"""Extension experiment — survival under an injected fault schedule.

The chaos companion to ``ext_failures``: the same memory-capped scientific
ensemble (each instance requests ~25% extra memory mid-run) runs while a
deterministic :class:`~repro.faults.FaultSchedule` disturbs the cluster —
a registry outage, a straggling task, a degraded PMem device, a node
crash, and a CXL link flap.  CBE/TME instances die to the OOM killer
exactly as in ``ext_failures``; IMME's CAP expansions land in uncharged
CXL, so its workflows survive the memory pressure and the recovery paths
(requeue with backoff, tier evacuation, pull retry/fallback) carry them
through the faults.
"""

from __future__ import annotations

from dataclasses import replace

from ..envs.environments import EnvKind, make_environment
from ..faults.spec import FaultKind, FaultSchedule, FaultSpec
from ..memory.tiers import PMEM
from ..util.rng import RngFactory
from ..workflows.ensembles import make_ensemble
from ..workflows.library import scientific_task
from .common import CHUNK, SCALE, FigureResult

__all__ = ["run_resilience", "default_chaos_schedule"]


def default_chaos_schedule(n_nodes: int) -> FaultSchedule:
    """The fixed disturbance scenario the experiment replays per env."""
    return FaultSchedule(
        [
            # registry outage while the first pulls are in flight
            FaultSpec(FaultKind.IMAGE_PULL_FAILURE, time=0.0, duration=30.0, severity=0.6),
            # one early task limps at 40% speed for a while
            FaultSpec(FaultKind.TASK_STRAGGLER, time=20.0, duration=40.0, severity=0.4),
            # a PMem DIMM on node 0 drops to half bandwidth
            FaultSpec(
                FaultKind.TIER_DEGRADED, time=35.0, node=0, tier=PMEM,
                duration=30.0, severity=0.5,
            ),
            # the last node dies mid-run and comes back 45 s later
            FaultSpec(FaultKind.NODE_CRASH, time=50.0, node=n_nodes - 1, duration=45.0),
            # node 0 loses its CXL link: pages evacuate, staging degrades
            FaultSpec(FaultKind.CXL_LINK_FLAP, time=140.0, node=0, duration=20.0),
        ]
    )


def run_resilience(
    *,
    scale: float = SCALE,
    instances: int = 4,
    limit_margin: float = 0.05,
    chunk_size: int = CHUNK,
    seed: int = 0,
    n_nodes: int = 2,
    fault_seed: int = 7,
) -> FigureResult:
    base = scientific_task(scale=scale, request_extra=True)
    members = [
        replace(m, memory_limit=int(m.footprint * (1.0 + limit_margin)))
        for m in make_ensemble(base, instances, rng_factory=RngFactory(seed))
    ]
    total = sum(m.footprint for m in members)
    schedule = default_chaos_schedule(n_nodes)

    result = FigureResult(
        figure="ext-resilience",
        description=(
            f"Survival under faults: {instances} memory-capped SC instances on "
            f"{n_nodes} nodes through {len(schedule)} injected faults "
            "(registry outage, straggler, degraded PMem, node crash, CXL flap)"
        ),
        xlabels=["completed", "failed", "requeues", "faults", "mttr (s)", "makespan (s)"],
    )
    for kind in (EnvKind.CBE, EnvKind.TME, EnvKind.IMME):
        env = make_environment(
            kind,
            n_nodes=n_nodes,
            dram_capacity=int(total * 1.2 / n_nodes),
            chunk_size=chunk_size,
        )
        env.inject_faults(schedule, seed=fault_seed)
        metrics = env.run_batch(members, max_time=1e7)
        completed = len(metrics.completed())
        makespan = metrics.makespan() if completed else 0.0
        result.add_series(
            kind.name,
            [
                float(completed),
                float(len(metrics.failed())),
                float(metrics.faults.job_requeues),
                float(metrics.faults.total_injected),
                metrics.faults.mttr,
                makespan,
            ],
        )
        env.stop()
    result.notes.append(
        "every fault either recovers (requeue within max_retries, tier "
        "evacuation, pull retry/fallback) or is recorded as a failed job; "
        "only IMME also survives the memory cap (§IV-D1 + §III-A objective 1)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_resilience().to_table())
