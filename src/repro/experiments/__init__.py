"""Per-figure experiment harnesses (see DESIGN.md's experiment index).

Each ``run_figXX`` regenerates the corresponding paper figure's series at
laptop scale and returns a :class:`~repro.experiments.common.FigureResult`
whose table mirrors what the figure plots.
"""

from .ablations import run_ablations
from .cold_pages import run_cold_pages
from .common import CHUNK, SCALE, FigureResult, build_env, colocated_mix
from .ext_colocation import run_colocation
from .ext_decomposition import run_decomposition
from .ext_failures import run_failures
from .ext_open_system import run_open_system
from .ext_predictor import run_predictor_learning
from .ext_resilience import run_resilience
from .ext_shared_inputs import run_shared_inputs
from .ext_utilization import run_utilization
from .fig01_motivation import run_fig01
from .fig05_exec_time import run_fig05
from .fig06_cxl_fraction import run_fig06
from .fig07_alloc_policy import run_fig07
from .fig08_dram_fraction import run_fig08
from .fig09_page_faults import run_fig09
from .fig10_scalability import run_fig10
from .validation import run_validation
from .fig11_concurrency import run_fig11

__all__ = [
    "CHUNK",
    "SCALE",
    "FigureResult",
    "build_env",
    "colocated_mix",
    "run_ablations",
    "run_cold_pages",
    "run_colocation",
    "run_decomposition",
    "run_failures",
    "run_open_system",
    "run_predictor_learning",
    "run_resilience",
    "run_shared_inputs",
    "run_utilization",
    "run_fig01",
    "run_fig05",
    "run_fig06",
    "run_fig07",
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_validation",
    "run_fig11",
]
