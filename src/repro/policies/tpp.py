"""TPP-style tiered demand policy — the Tiered Memory Environment (TME).

Models "tiered memory for memory allocation with default Linux page
promotion and demotion based on page temperatures" (§IV-C3): allocation
falls through DRAM → CXL → PMem on demand, a NUMA-balancing-style daemon
promotes hot slow-tier pages into DRAM and demotes cold DRAM pages under
pressure.  Crucially it is **workflow-oblivious**: it neither protects
latency-sensitive pages nor stripes bandwidth-intensive allocations —
the two behaviours the paper's IMME adds.

``cxl_fraction`` forces a fixed share of every allocation onto CXL —
the Fig. 6 sweep ("each data point represents the percentage of workflow
memory allocated from the CXL memory tier").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import obs
from ..memory.pageset import UNMAPPED, PageSet
from ..memory.tiers import CXL, DRAM, PMEM, TierKind
from ..util.validation import check_fraction, require
from .base import AllocationRequest, MemoryPolicy, PolicyContext, cascade_place
from .linux import global_coldest

__all__ = ["TieredDemandPolicy"]


class TieredDemandPolicy(MemoryPolicy):
    """Demand allocation over tiers with temperature promotion/demotion."""

    name = "tiered-tpp"

    def __init__(
        self,
        alloc_order: tuple[TierKind, ...] = (DRAM, CXL, PMEM),
        *,
        high_watermark: float = 0.92,
        low_watermark: float = 0.85,
        promote_budget_fraction: float = 0.002,
        promote_threshold: float = 0.05,
        cxl_fraction: Optional[float] = None,
        scan_noise: float = 0.35,
    ) -> None:
        require(len(alloc_order) > 0, "alloc_order must name at least one tier")
        check_fraction(high_watermark, "high_watermark")
        check_fraction(low_watermark, "low_watermark")
        require(low_watermark <= high_watermark, "low watermark must not exceed high")
        check_fraction(promote_budget_fraction, "promote_budget_fraction")
        if cxl_fraction is not None:
            check_fraction(cxl_fraction, "cxl_fraction")
        check_fraction(scan_noise, "scan_noise")
        self.scan_noise = scan_noise
        self.alloc_order = tuple(alloc_order)
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.promote_budget_fraction = promote_budget_fraction
        self.promote_threshold = promote_threshold
        self.cxl_fraction = cxl_fraction

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def place(self, ctx: PolicyContext, ps: PageSet, request: AllocationRequest) -> None:
        idx = ctx.region_chunks(ps, request.region)
        unmapped = idx[ps.tier[idx] == UNMAPPED]
        if unmapped.size == 0:
            return
        if self.cxl_fraction:
            # Oblivious split: a fixed share of every allocation goes to
            # CXL, strided uniformly across the address range — the policy
            # has no idea which pages are hot, so the share clips hot and
            # cold pages alike (the Fig. 6 degradation).
            n_cxl = int(round(unmapped.size * self.cxl_fraction))
            if n_cxl > 0:
                stride_pick = np.linspace(0, unmapped.size - 1, n_cxl).astype(np.int64)
                mask = np.zeros(unmapped.size, dtype=bool)
                mask[stride_pick] = True
                tail, head = unmapped[mask], unmapped[~mask]
            else:
                tail, head = unmapped[:0], unmapped
            if tail.size:
                cascade_place(ctx, ps, tail, (CXL,) + tuple(
                    t for t in self.alloc_order if t != CXL
                ))
            if head.size:
                cascade_place(ctx, ps, head, self.alloc_order)
        else:
            cascade_place(ctx, ps, unmapped, self.alloc_order)

    # ------------------------------------------------------------------ #
    # movement daemon
    # ------------------------------------------------------------------ #
    def tick(self, ctx: PolicyContext) -> None:
        self._demote_under_pressure(ctx)
        self._promote_hot(ctx)

    def _demote_under_pressure(self, ctx: PolicyContext) -> None:
        mem = ctx.memory
        cap = mem.capacity(DRAM)
        if cap <= 0 or mem.rss(DRAM) <= self.high_watermark * cap:
            return
        target = int(mem.rss(DRAM) - self.low_watermark * cap)
        self.make_room(ctx, target)

    def _promote_hot(self, ctx: PolicyContext) -> None:
        """Promote the hottest slow-tier chunks into free DRAM (budgeted)."""
        mem = ctx.memory
        cap = mem.capacity(DRAM)
        if cap <= 0:
            return
        budget_bytes = int(cap * self.promote_budget_fraction)
        for ps in list(mem.pagesets()):
            if budget_bytes <= 0:
                break
            room = mem.free(DRAM) // ps.chunk_size
            if room <= 0:
                break
            max_chunks = min(room, budget_bytes // ps.chunk_size)
            for tier in (CXL, PMEM):
                if max_chunks <= 0:
                    break
                hot = ps.hottest_in(tier, max_chunks)
                hot = hot[ps.temperature[hot] >= self.promote_threshold]
                if hot.size == 0:
                    continue
                moved = mem.migrate(ps, hot, DRAM)
                # NUMA-hinting promotion shows up as minor faults
                ctx.record_minor(ps.owner, int(hot.size))
                obs.counter("policy.promotions", int(hot.size), policy=self.name)
                budget_bytes -= moved
                max_chunks -= hot.size

    def make_room(self, ctx: PolicyContext, nbytes: int, protect: Optional[str] = None) -> int:
        """Demote the globally-coldest DRAM chunks to the next tier with
        room; fall through to swap only when every tier is full."""
        if nbytes <= 0:
            return 0
        mem = ctx.memory
        any_ps = next(iter(mem.pagesets()), None)
        if any_ps is None:
            return 0
        chunk_size = any_ps.chunk_size
        need_chunks = -(-nbytes // chunk_size)
        freed = 0
        victims = global_coldest(ctx, DRAM, need_chunks, scan_noise=self.scan_noise)
        demote_order = [t for t in self.alloc_order if t != DRAM]
        for ps, idx in victims:
            remaining = idx
            for tier in demote_order:
                if remaining.size == 0:
                    break
                room = max(0, mem.free(tier)) // ps.chunk_size
                take = remaining[: int(room)]
                if take.size:
                    freed += mem.migrate(ps, take, tier)
                    obs.counter("policy.demotions", int(take.size), policy=self.name)
                    remaining = remaining[take.size:]
            if remaining.size:
                freed += mem.swap_out(ps, remaining)
                obs.counter("policy.swap_outs", int(remaining.size), policy=self.name)
        return freed
