"""Interleaving allocation baselines (Fig. 7's comparison policies).

* :class:`UniformInterleavePolicy` — deal chunks round-robin across the
  byte-addressable tiers regardless of workflow characteristics (the
  kernel's ``MPOL_INTERLEAVE`` over NUMA nodes, §II's "interleaving").
* Weighted interleave (``weights=...``) — the ``MPOL_WEIGHTED_INTERLEAVE``
  variant the paper notes "does not consider the characteristic for all
  workflow types".
* :class:`DefaultAllocationPolicy` — Fig. 7's "Default Allocation":
  system memory first, then CXL, "based on demand without catering to the
  class it belongs to".
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from .. import obs
from ..memory.pageset import UNMAPPED, PageSet
from ..memory.tiers import CXL, DRAM, MEMORY_TIERS, TierKind
from ..util.validation import check_non_negative, require
from .base import (
    AllocationRequest,
    MemoryPolicy,
    PolicyContext,
    cascade_place,
    stripe_assignment,
)

__all__ = ["UniformInterleavePolicy", "DefaultAllocationPolicy"]


class UniformInterleavePolicy(MemoryPolicy):
    """Round-robin chunk placement across tiers, optionally weighted.

    With ``weights=None`` every byte-addressable tier with capacity gets
    an equal share of each allocation; with weights, shares are
    proportional.  Placement is static — there is no movement daemon —
    which is what makes it workflow-oblivious.
    """

    name = "uniform-interleave"

    def __init__(self, weights: Optional[Mapping[TierKind, float]] = None) -> None:
        if weights is not None:
            for t, w in weights.items():
                check_non_negative(w, f"weight[{t.name}]")
            require(sum(weights.values()) > 0, "at least one interleave weight must be positive")
            self.weights = dict(weights)
            self.name = "weighted-interleave"
        else:
            self.weights = None

    def place(self, ctx: PolicyContext, ps: PageSet, request: AllocationRequest) -> None:
        idx = ctx.region_chunks(ps, request.region)
        unmapped = idx[ps.tier[idx] == UNMAPPED]
        if unmapped.size == 0:
            return
        mem = ctx.memory
        tiers = [t for t in MEMORY_TIERS if mem.capacity(t) > 0]
        if self.weights is not None:
            tiers = [t for t in tiers if self.weights.get(t, 0.0) > 0]
        require(len(tiers) > 0, "no byte-addressable tier has capacity")
        if self.weights is None:
            w = np.full(len(tiers), 1.0 / len(tiers))
        else:
            raw = np.array([self.weights.get(t, 0.0) for t in tiers], dtype=np.float64)
            w = raw / raw.sum()
        # exact proportional counts (largest remainder), spread evenly so
        # each tier's share interleaves across the footprint rather than
        # forming contiguous blocks
        raw_counts = w * unmapped.size
        counts = np.floor(raw_counts).astype(np.int64)
        for k in np.argsort(raw_counts - counts)[::-1][: unmapped.size - int(counts.sum())]:
            counts[k] += 1
        assignment = stripe_assignment(list(counts))
        obs.counter("policy.interleave_placements", int(unmapped.size), policy=self.name)
        for k, tier in enumerate(tiers):
            mine = unmapped[assignment == k]
            if mine.size == 0:
                continue
            room = max(0, mem.free(tier)) // ps.chunk_size
            head, overflow = mine[: int(room)], mine[int(min(room, mine.size)):]
            if head.size:
                mem.place(ps, head, tier)
            if overflow.size:
                fallback = tuple(t for t in tiers if t != tier)
                cascade_place(ctx, ps, overflow, fallback)


class DefaultAllocationPolicy(MemoryPolicy):
    """Fig. 7's "Default Allocation": DRAM on demand, then CXL, oblivious
    to workflow class.  No movement daemon."""

    name = "default-alloc"

    def __init__(self, order: tuple[TierKind, ...] = (DRAM, CXL)) -> None:
        require(len(order) > 0, "order must name at least one tier")
        self.order = tuple(order)

    def place(self, ctx: PolicyContext, ps: PageSet, request: AllocationRequest) -> None:
        idx = ctx.region_chunks(ps, request.region)
        unmapped = idx[ps.tier[idx] == UNMAPPED]
        if unmapped.size:
            cascade_place(ctx, ps, unmapped, self.order)
