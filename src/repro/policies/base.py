"""Policy abstractions.

A *memory policy* makes three kinds of decisions for one node:

* **placement** — which tier backs each chunk of a new allocation
  (:meth:`MemoryPolicy.place`),
* **movement** — periodic promotion/demotion/eviction at daemon ticks
  (:meth:`MemoryPolicy.tick`),
* **fault handling** — what happens when a task touches swap-resident
  chunks (:meth:`MemoryPolicy.fault_in`).

Baselines (:mod:`repro.policies.linux`, :mod:`repro.policies.tpp`,
:mod:`repro.policies.interleave`) and the paper's contribution
(:class:`repro.core.manager.TieredMemoryManager`) all implement this
interface, which is what lets every experiment swap environments freely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..core.flags import MemFlag
from ..memory.pageset import UNMAPPED, PageSet
from ..memory.system import NodeMemorySystem
from ..memory.tiers import DRAM, MEMORY_TIERS, SWAP, TierKind
from ..util.errors import OutOfMemoryError
from ..util.validation import check_positive, require

__all__ = [
    "AllocationRequest",
    "PolicyContext",
    "MemoryPolicy",
    "cascade_place",
    "stripe_assignment",
]


def stripe_assignment(counts: "list[int]") -> np.ndarray:
    """Proportional round-robin group assignment.

    Given per-group counts, returns an array of group indices of length
    ``sum(counts)`` where each group's members are spread evenly across
    the whole range (true interleaving with exact counts) — the layout
    both ``MPOL_INTERLEAVE`` baselines and Algorithm 1's BW striping use.

    >>> stripe_assignment([2, 2]).tolist()
    [0, 1, 0, 1]
    """
    ids = []
    keys = []
    for k, c in enumerate(counts):
        require(c >= 0, "counts must be non-negative")
        if c == 0:
            continue
        ids.append(np.full(c, k, dtype=np.int64))
        keys.append((np.arange(c, dtype=np.float64) + 0.5) / c)
    if not ids:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(np.concatenate(keys), kind="stable")
    return np.concatenate(ids)[order]


@dataclass(frozen=True)
class AllocationRequest:
    """One allocation call: ``region`` chunks of ``ps`` need backing.

    ``flags`` carries the Table-I advisory hints (possibly ``NONE``);
    baseline policies ignore them — that obliviousness is exactly what the
    evaluation compares against.
    """

    owner: str
    region: int
    nbytes: int
    flags: MemFlag = MemFlag.NONE

    def __post_init__(self) -> None:
        check_positive(self.nbytes, "nbytes")


@dataclass
class PolicyContext:
    """Everything a policy may see or touch on one node.

    ``record_major`` / ``record_minor`` feed the owning task's fault
    counters (Fig. 9); the node agent wires them to task metrics.
    ``rng`` drives any stochastic policy behaviour (e.g. the kernel
    baseline's scan-noise victim selection) deterministically per node.
    """

    memory: NodeMemorySystem
    now: Callable[[], float] = lambda: 0.0
    record_major: Callable[[str, int], None] = lambda owner, n: None
    record_minor: Callable[[str, int], None] = lambda owner, n: None
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    #: owners of tasks currently in a latency-critical running phase
    active_owners: set[str] = field(default_factory=set)

    def region_chunks(self, ps: PageSet, region: int) -> np.ndarray:
        return np.flatnonzero(ps.region == region)


class MemoryPolicy(ABC):
    """Interface every per-node memory-management policy implements."""

    #: human-readable policy name (used in experiment reports)
    name: str = "abstract"

    @abstractmethod
    def place(self, ctx: PolicyContext, ps: PageSet, request: AllocationRequest) -> None:
        """Back the unmapped chunks of ``request.region`` with memory.

        Must leave every chunk of the region mapped (possibly to swap) or
        raise :class:`~repro.util.errors.OutOfMemoryError`.
        """

    def tick(self, ctx: PolicyContext) -> None:
        """Periodic daemon work (promotion/demotion/eviction).  Default: none."""

    def fault_in(self, ctx: PolicyContext, ps: PageSet, idx: np.ndarray) -> None:
        """Handle the task touching swap-resident chunks ``idx``.

        The default implementation mirrors the kernel: chunks with a
        page-cache shadow are minor faults and simply re-map (swap→DRAM is
        free, the data is already there); the rest are major faults pulled
        into the fastest tier with room, evicting via :meth:`make_room`.
        """
        idx = np.asarray(idx, dtype=np.int64)
        swapped = idx[ps.tier[idx] == int(SWAP)]
        if swapped.size == 0:
            return
        shadowed = swapped[ps.in_page_cache[swapped]]
        hard = swapped[~ps.in_page_cache[swapped]]
        if shadowed.size:
            ctx.record_minor(ps.owner, int(shadowed.size))
            self._pull_in(ctx, ps, shadowed)
        if hard.size:
            ctx.record_major(ps.owner, int(hard.size))
            self._pull_in(ctx, ps, hard)

    def _pull_in(self, ctx: PolicyContext, ps: PageSet, idx: np.ndarray) -> None:
        """Bring swap chunks into byte-addressable tiers, fastest first."""
        mem = ctx.memory
        remaining = idx
        for tier in self.fault_in_order(ctx):
            if remaining.size == 0:
                return
            room = max(0, mem.free(tier)) // ps.chunk_size
            if tier == DRAM and room < remaining.size:
                self.make_room(ctx, (remaining.size - room) * ps.chunk_size, protect=ps.owner)
                room = max(0, mem.free(tier)) // ps.chunk_size
            take = remaining[: int(room)]
            if take.size:
                mem.migrate(ps, take, tier)
                remaining = remaining[take.size:]
        # whatever could not be pulled in stays in swap (it will keep
        # paying the swap-access penalty — thrashing)

    def fault_in_order(self, ctx: PolicyContext) -> tuple[TierKind, ...]:
        """Tier preference when servicing faults; capacity-gated."""
        return tuple(t for t in MEMORY_TIERS if ctx.memory.capacity(t) > 0)

    def make_room(self, ctx: PolicyContext, nbytes: int, protect: Optional[str] = None) -> int:
        """Try to free ``nbytes`` of DRAM.  Default: no eviction (returns 0)."""
        return 0

    def release(self, ctx: PolicyContext, ps: PageSet, idx: np.ndarray) -> None:
        """Free backing for chunks ``idx`` (``free_TM`` / task teardown)."""
        idx = np.asarray(idx, dtype=np.int64)
        mapped = idx[ps.tier[idx] != UNMAPPED]
        if mapped.size == 0:
            return
        mem = ctx.memory
        counts = np.bincount(ps.tier[mapped].astype(np.int64), minlength=len(TierKind))
        # NodeMemorySystem has no public "unmap with accounting" beyond
        # unregister; go through its internals deliberately kept here:
        mem._used -= counts * ps.chunk_size  # noqa: SLF001 - policy/system contract
        shadowed = mapped[ps.in_page_cache[mapped]]
        if shadowed.size:
            mem._drop_shadows(ps, shadowed)  # noqa: SLF001
        ps.unmap(mapped)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.name!r}>"


def cascade_place(
    ctx: PolicyContext,
    ps: PageSet,
    idx: np.ndarray,
    order: tuple[TierKind, ...],
    *,
    allow_swap: bool = True,
) -> dict[TierKind, int]:
    """Fill chunks ``idx`` through ``order``, overflowing tier by tier.

    The workhorse shared by the demand baselines and Algorithm 1's
    cascading branch.  Returns bytes placed per tier.  Falls through to
    swap when byte-addressable tiers are full (the constrained-baseline
    behaviour) unless ``allow_swap`` is False.
    """
    idx = np.asarray(idx, dtype=np.int64)
    placed: dict[TierKind, int] = {}
    remaining = idx
    mem = ctx.memory
    tiers = list(order) + ([SWAP] if allow_swap and SWAP not in order else [])
    for tier in tiers:
        if remaining.size == 0:
            break
        room = mem.free(tier) // ps.chunk_size
        take = remaining[: max(0, int(room))]
        if take.size:
            mem.place(ps, take, tier)
            placed[tier] = placed.get(tier, 0) + int(take.size) * ps.chunk_size
            remaining = remaining[take.size:]
    if remaining.size:
        raise OutOfMemoryError(
            f"node {mem.node_id}: no tier can back {remaining.size} chunks for {ps.owner!r}"
        )
    return placed
