"""AutoNUMA-style baseline (§II: "approaches, such as AutoNUMA, TPP,
weighted interleaving, etc. [are] sub-optimal on a tiered memory system").

Models kernel NUMA balancing applied to a CXL-as-NUMA-node system:

* demand allocation falling through the tiers,
* *sampled* hint-fault promotion — each scan period only a fraction of a
  task's slow-tier pages are unmapped for hint faults, so only sampled
  pages can prove their heat and migrate (promotion is slower and noisier
  than TPP's temperature scan),
* no tier-aware demotion: under DRAM pressure the kernel reclaims to
  **swap** (historic AutoNUMA predates demotion paths) — the behaviour
  that makes it strictly worse than TPP on tiered memory.
"""

from __future__ import annotations

from ..memory.pageset import UNMAPPED, PageSet
from ..memory.tiers import CXL, DRAM, PMEM, TierKind
from ..util.validation import check_fraction, require
from .base import AllocationRequest, MemoryPolicy, PolicyContext, cascade_place
from .linux import global_coldest

__all__ = ["AutoNumaPolicy"]


class AutoNumaPolicy(MemoryPolicy):
    """NUMA-balancing promotion over demand placement, swap-only reclaim."""

    name = "autonuma"

    def __init__(
        self,
        alloc_order: tuple[TierKind, ...] = (DRAM, CXL, PMEM),
        *,
        sample_fraction: float = 0.10,
        promote_threshold: float = 0.05,
        high_watermark: float = 0.96,
        low_watermark: float = 0.90,
        scan_noise: float = 0.35,
    ) -> None:
        require(len(alloc_order) > 0, "alloc_order must name at least one tier")
        check_fraction(sample_fraction, "sample_fraction")
        check_fraction(high_watermark, "high_watermark")
        check_fraction(low_watermark, "low_watermark")
        require(low_watermark <= high_watermark, "low watermark above high")
        check_fraction(scan_noise, "scan_noise")
        self.alloc_order = tuple(alloc_order)
        self.sample_fraction = sample_fraction
        self.promote_threshold = promote_threshold
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.scan_noise = scan_noise

    # ------------------------------------------------------------------ #
    def place(self, ctx: PolicyContext, ps: PageSet, request: AllocationRequest) -> None:
        idx = ctx.region_chunks(ps, request.region)
        unmapped = idx[ps.tier[idx] == UNMAPPED]
        if unmapped.size:
            cascade_place(ctx, ps, unmapped, self.alloc_order)

    def tick(self, ctx: PolicyContext) -> None:
        self._scan_and_promote(ctx)
        self._reclaim_under_pressure(ctx)

    def _scan_and_promote(self, ctx: PolicyContext) -> None:
        """Hint-fault sampling: a random slice of each task's slow-tier
        pages is checked; hot sampled pages migrate to DRAM if room."""
        mem = ctx.memory
        for ps in list(mem.pagesets()):
            room = max(0, mem.free(DRAM)) // ps.chunk_size
            if room <= 0:
                return
            for tier in (CXL, PMEM):
                cand = ps.chunks_in(tier)
                if cand.size == 0:
                    continue
                n_sample = max(1, int(cand.size * self.sample_fraction))
                sampled = ctx.rng.choice(cand, size=min(n_sample, cand.size), replace=False)
                hot = sampled[ps.temperature[sampled] >= self.promote_threshold]
                take = hot[: int(room)]
                if take.size:
                    mem.migrate(ps, take, DRAM)
                    # hint faults are minor faults
                    ctx.record_minor(ps.owner, int(take.size))
                    room -= take.size
                if room <= 0:
                    return

    def _reclaim_under_pressure(self, ctx: PolicyContext) -> None:
        mem = ctx.memory
        cap = mem.capacity(DRAM)
        if cap <= 0 or mem.rss(DRAM) <= self.high_watermark * cap:
            return
        self.make_room(ctx, int(mem.rss(DRAM) - self.low_watermark * cap))

    def make_room(self, ctx: PolicyContext, nbytes: int, protect=None) -> int:
        """Kernel reclaim without demotion: victims go straight to swap."""
        if nbytes <= 0:
            return 0
        mem = ctx.memory
        any_ps = next(iter(mem.pagesets()), None)
        if any_ps is None:
            return 0
        need_chunks = -(-nbytes // any_ps.chunk_size)
        freed = 0
        for ps, idx in global_coldest(ctx, DRAM, need_chunks, scan_noise=self.scan_noise):
            freed += mem.swap_out(ps, idx)
        return freed
