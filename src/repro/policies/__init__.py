"""Baseline memory-management policies and the policy interface."""

from .autonuma import AutoNumaPolicy
from .base import (
    AllocationRequest,
    MemoryPolicy,
    PolicyContext,
    cascade_place,
    stripe_assignment,
)
from .interleave import DefaultAllocationPolicy, UniformInterleavePolicy
from .linux import LinuxSwapPolicy, global_coldest
from .tpp import TieredDemandPolicy

__all__ = [
    "AllocationRequest",
    "MemoryPolicy",
    "PolicyContext",
    "cascade_place",
    "stripe_assignment",
    "AutoNumaPolicy",
    "DefaultAllocationPolicy",
    "UniformInterleavePolicy",
    "LinuxSwapPolicy",
    "global_coldest",
    "TieredDemandPolicy",
]
