"""Linux-kernel baseline: demand DRAM allocation with LRU swapping.

This is the memory management of the paper's Ideal Environment (where
DRAM never fills) and Constrained Baseline Environment (where it
constantly does): pages live in DRAM; under pressure, kswapd-style
reclaim walks the (approximate) LRU — here, the coldest chunks by
temperature — and pushes victims to disk-based swap *regardless of the
workflow they belong to* (§III-C3: the kernel "is agnostic to the
underlying heterogeneous memory tiers").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import obs
from ..memory.pageset import PageSet
from ..memory.tiers import DRAM, TierKind
from ..util.validation import check_fraction, require
from .base import AllocationRequest, MemoryPolicy, PolicyContext, cascade_place

__all__ = ["LinuxSwapPolicy", "global_coldest"]


def global_coldest(
    ctx: PolicyContext,
    tier: TierKind,
    max_chunks: int,
    *,
    include_pinned: bool = False,
    skip_owners: frozenset[str] = frozenset(),
    scan_noise: float = 0.0,
) -> list[tuple[PageSet, np.ndarray]]:
    """Select up to ``max_chunks`` victims in ``tier``, coldest first,
    across every pageset on the node (the global LRU scan).

    ``scan_noise`` models the kernel's scan-based two-list LRU, which has
    *no frequency information*: with probability ``scan_noise`` a victim
    slot is filled by a uniformly-random resident chunk instead of the
    coldest one, so under heavy reclaim pressure even hot pages of
    latency-sensitive workflows get "blindly swapped out" (§III-C3) —
    the failure mode Algorithm 2 exists to prevent.

    Returns ``(pageset, chunk_indices)`` pairs; per-pageset candidate
    lists are merged by temperature so the cold part is globally coldest.
    """
    if max_chunks <= 0:
        return []
    arena = ctx.memory.arena
    if arena is not None:
        # the arena kernel reproduces this function exactly — including the
        # single rng.choice() draw for scan noise, so RNG streams match
        return arena.global_coldest(
            tier,
            max_chunks,
            ctx.rng,
            include_pinned=include_pinned,
            skip_owners=skip_owners,
            scan_noise=scan_noise,
        )
    n_noise = int(round(max_chunks * scan_noise)) if scan_noise > 0 else 0
    n_cold = max_chunks - n_noise
    entries: list[tuple[float, int, PageSet, int]] = []
    pools: list[tuple[PageSet, np.ndarray]] = []
    for order_key, ps in enumerate(ctx.memory.pagesets()):
        if ps.owner in skip_owners:
            continue
        cand = ps.coldest_in(tier, max_chunks, include_pinned=include_pinned)
        for i in cand:
            entries.append((float(ps.temperature[i]), order_key, ps, int(i)))
        if n_noise and cand.size:
            pools.append((ps, cand))
    entries.sort(key=lambda e: (e[0], e[1], e[3]))
    grouped: dict[str, tuple[PageSet, set[int]]] = {}

    def take(ps: PageSet, i: int) -> None:
        grouped.setdefault(ps.owner, (ps, set()))[1].add(i)

    for _, _, ps, i in entries[:n_cold]:
        take(ps, i)
    if n_noise and pools:
        # uniformly-random victims over all candidate chunks on the node
        sizes = np.array([c.size for _, c in pools], dtype=np.int64)
        total = int(sizes.sum())
        picks = ctx.rng.choice(total, size=min(n_noise, total), replace=False)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        for p in picks:
            k = int(np.searchsorted(offsets, p, side="right")) - 1
            ps, cand = pools[k]
            take(ps, int(cand[p - offsets[k]]))
    return [
        (ps, np.asarray(sorted(idx), dtype=np.int64)) for ps, idx in grouped.values()
    ]


class LinuxSwapPolicy(MemoryPolicy):
    """Demand DRAM allocation + watermark-driven LRU swap (IE / CBE).

    Parameters
    ----------
    high_watermark / low_watermark:
        kswapd analogue: when DRAM rss exceeds ``high`` × capacity at a
        daemon tick, the coldest chunks are swapped out until rss falls to
        ``low`` × capacity.
    scan_noise:
        fraction of victims chosen without frequency information (see
        :func:`global_coldest`); 0 gives an oracle LRU.
    """

    name = "linux-lru"

    def __init__(
        self,
        high_watermark: float = 0.96,
        low_watermark: float = 0.90,
        scan_noise: float = 0.35,
    ) -> None:
        check_fraction(high_watermark, "high_watermark")
        check_fraction(low_watermark, "low_watermark")
        check_fraction(scan_noise, "scan_noise")
        require(low_watermark <= high_watermark, "low watermark must not exceed high")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.scan_noise = scan_noise

    # ------------------------------------------------------------------ #
    def place(self, ctx: PolicyContext, ps: PageSet, request: AllocationRequest) -> None:
        idx = ctx.region_chunks(ps, request.region)
        unmapped = idx[ps.tier[idx] == -1]
        if unmapped.size == 0:
            return
        mem = ctx.memory
        shortfall = unmapped.size * ps.chunk_size - mem.free(DRAM)
        if shortfall > 0:
            # direct reclaim before falling through to swap placement
            self.make_room(ctx, shortfall)
        cascade_place(ctx, ps, unmapped, (DRAM,))

    def tick(self, ctx: PolicyContext) -> None:
        mem = ctx.memory
        cap = mem.capacity(DRAM)
        if cap <= 0:
            return
        if mem.rss(DRAM) > self.high_watermark * cap:
            target = int(mem.rss(DRAM) - self.low_watermark * cap)
            self.make_room(ctx, target)

    def make_room(self, ctx: PolicyContext, nbytes: int, protect: Optional[str] = None) -> int:
        """Swap out the globally-coldest DRAM chunks to free ``nbytes``.

        The kernel protects nothing here — latency-sensitive workflows'
        pages are fair game, which is precisely the failure mode
        Algorithm 2 exists to fix.
        """
        if nbytes <= 0:
            return 0
        mem = ctx.memory
        chunk = next(iter(mem.pagesets()), None)
        if chunk is None:
            return 0
        chunk_size = chunk.chunk_size
        need_chunks = -(-nbytes // chunk_size)
        freed = 0
        victims = global_coldest(ctx, DRAM, need_chunks, scan_noise=self.scan_noise)
        for ps, idx in victims:
            freed += mem.swap_out(ps, idx)
            obs.counter("policy.swap_outs", int(idx.size), policy=self.name)
        return freed
