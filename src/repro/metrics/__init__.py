"""Measurement collection, timelines, and report formatting."""

from .collector import FaultStats, MetricsRegistry, TaskMetrics
from .report import (
    best_of,
    format_pct,
    format_series,
    format_table,
    improvement,
    render_gantt,
)
from .timeline import UtilizationSampler

__all__ = [
    "FaultStats",
    "MetricsRegistry",
    "TaskMetrics",
    "UtilizationSampler",
    "best_of",
    "format_pct",
    "format_series",
    "format_table",
    "improvement",
    "render_gantt",
]
