"""Measurement collection, timelines, and report formatting."""

from .collector import MetricsRegistry, TaskMetrics
from .report import (
    best_of,
    format_pct,
    format_series,
    format_table,
    improvement,
    render_gantt,
)
from .timeline import UtilizationSampler

__all__ = [
    "MetricsRegistry",
    "TaskMetrics",
    "UtilizationSampler",
    "best_of",
    "format_pct",
    "format_series",
    "format_table",
    "improvement",
    "render_gantt",
]
