"""Per-task and per-experiment measurement collection.

The evaluation (§IV-B) studies: total workflow execution time, page-fault
counts, batch makespan, data swapped to disk vs. moved to CXL, and startup
time.  :class:`TaskMetrics` accumulates the per-task views;
:class:`MetricsRegistry` aggregates them and snapshots node-level traffic
counters into an experiment-level record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..memory.system import NodeMemorySystem
from ..memory.tiers import CXL
from ..util.validation import require

__all__ = ["TaskMetrics", "FaultStats", "MetricsRegistry"]


@dataclass
class TaskMetrics:
    """Lifecycle timestamps and fault counters for one task instance."""

    owner: str
    wclass: str = "GENERIC"
    submitted_at: float = 0.0
    scheduled_at: Optional[float] = None
    container_ready_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    failed: bool = False
    failure_reason: str = ""
    major_faults: int = 0
    minor_faults: int = 0
    #: cgroup OOM-kill count (from :class:`~repro.containers.cgroup.MemoryCgroup`)
    oom_kills: int = 0
    #: scheduler requeues after fault-induced interruptions
    retries: int = 0
    phase_durations: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def queue_wait(self) -> float:
        require(self.scheduled_at is not None, f"{self.owner}: never scheduled")
        return self.scheduled_at - self.submitted_at

    @property
    def startup_time(self) -> float:
        """Container cold-start: scheduling to runnable (image ready)."""
        require(self.container_ready_at is not None, f"{self.owner}: container never ready")
        require(self.scheduled_at is not None, f"{self.owner}: never scheduled")
        return self.container_ready_at - self.scheduled_at

    @property
    def execution_time(self) -> float:
        """Start-of-execution to completion (the per-workflow Fig. 5 metric)."""
        require(self.finished_at is not None, f"{self.owner}: never finished")
        require(self.started_at is not None, f"{self.owner}: never started")
        return self.finished_at - self.started_at

    @property
    def turnaround(self) -> float:
        """Submission to completion, startup and queueing included."""
        require(self.finished_at is not None, f"{self.owner}: never finished")
        return self.finished_at - self.submitted_at

    @property
    def done(self) -> bool:
        return self.finished_at is not None and not self.failed


@dataclass
class FaultStats:
    """Experiment-level resilience counters (the ``ext_resilience`` series).

    Populated by the fault injector, the scheduler's requeue path, the
    node agents' evacuation path, and the container runtime's pull
    retries.  All counters stay zero when no faults are injected.
    """

    #: injections by fault kind (``FaultKind.value`` → count)
    injected: dict[str, int] = field(default_factory=dict)
    #: running tasks killed by a fault (node crash / stranded evacuation)
    tasks_interrupted: int = 0
    #: jobs put back on the queue after a fault-induced failure
    job_requeues: int = 0
    #: jobs that exhausted ``max_retries`` and were marked failed
    retries_exhausted: int = 0
    #: image pulls retried after a transient pull failure
    pull_retries: int = 0
    #: shared-CXL staging reads degraded to a network pull
    pull_fallbacks: int = 0
    #: tier-offline events that triggered a page evacuation
    tier_evacuations: int = 0
    #: bytes moved off failing tiers onto survivors
    evacuated_bytes: int = 0
    #: per-fault time from injection to recovery completion (feeds MTTR)
    recovery_times: list[float] = field(default_factory=list)

    def record_injection(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def mttr(self) -> float:
        """Mean time to recovery over every recovered fault (0 if none)."""
        if not self.recovery_times:
            return 0.0
        return float(np.mean(self.recovery_times))


class MetricsRegistry:
    """All task metrics of one experiment run, plus node-level roll-ups."""

    def __init__(self) -> None:
        self._tasks: dict[str, TaskMetrics] = {}
        self.faults = FaultStats()

    def task(self, owner: str, wclass: str = "GENERIC") -> TaskMetrics:
        tm = self._tasks.get(owner)
        if tm is None:
            tm = TaskMetrics(owner=owner, wclass=wclass)
            self._tasks[owner] = tm
        return tm

    def get(self, owner: str) -> TaskMetrics:
        require(owner in self._tasks, f"no metrics for task {owner!r}")
        return self._tasks[owner]

    def tasks(self) -> Iterable[TaskMetrics]:
        return self._tasks.values()

    def __len__(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    def completed(self) -> list[TaskMetrics]:
        return [t for t in self._tasks.values() if t.done]

    def failed(self) -> list[TaskMetrics]:
        return [t for t in self._tasks.values() if t.failed]

    def makespan(self) -> float:
        """First submission to last completion across the batch."""
        done = self.completed()
        require(len(done) > 0, "no completed tasks")
        start = min(t.submitted_at for t in done)
        end = max(t.finished_at for t in done)  # type: ignore[arg-type]
        return end - start

    def total_oom_kills(self) -> int:
        """Cluster-wide OOM kills, sourced from the cgroup counters."""
        return sum(t.oom_kills for t in self._tasks.values())

    def total_retries(self) -> int:
        return sum(t.retries for t in self._tasks.values())

    def goodput(self) -> float:
        """Completed workflows per simulated hour of makespan.

        The survival-oriented throughput figure for the resilience
        experiments; 0 when nothing completed.
        """
        done = self.completed()
        if not done:
            return 0.0
        span = self.makespan()
        if span <= 0:
            return 0.0
        return len(done) / span * 3600.0

    def mean_execution_time(self, wclass: Optional[str] = None) -> float:
        pool = [
            t.execution_time
            for t in self.completed()
            if wclass is None or t.wclass == wclass
        ]
        require(len(pool) > 0, f"no completed tasks for class {wclass!r}")
        return float(np.mean(pool))

    def total_faults(self, wclass: Optional[str] = None) -> tuple[int, int]:
        majors = sum(
            t.major_faults for t in self._tasks.values() if wclass is None or t.wclass == wclass
        )
        minors = sum(
            t.minor_faults for t in self._tasks.values() if wclass is None or t.wclass == wclass
        )
        return majors, minors

    def mean_startup_time(self) -> float:
        pool = [t.startup_time for t in self.completed()]
        require(len(pool) > 0, "no completed tasks")
        return float(np.mean(pool))

    # ------------------------------------------------------------------ #
    # percentile aggregates
    # ------------------------------------------------------------------ #
    #: the latency metrics summarised by :meth:`percentiles` and
    #: :meth:`to_table` — name → per-task accessor.  ``turnaround``
    #: (submission to finish) is the service layer's headline metric;
    #: batch outcomes report the same tails so the two modes compare.
    LATENCY_METRICS = ("queue_wait", "startup_time", "execution_time", "turnaround")
    #: reported quantiles (tail behaviour, not just means — §IV-B studies
    #: interference, which shows up in the tail first)
    QUANTILES = (50.0, 95.0, 99.0)

    def latency_samples(self, metric: str, wclass: Optional[str] = None) -> list[float]:
        """Per-completed-task samples of one latency metric, optionally
        restricted to a workload class."""
        require(metric in self.LATENCY_METRICS, f"unknown latency metric {metric!r}")
        return [
            float(getattr(t, metric))
            for t in self.completed()
            if wclass is None or t.wclass == wclass
        ]

    def percentiles(
        self, metric: str, wclass: Optional[str] = None
    ) -> tuple[float, float, float]:
        """(p50, p95, p99) of a latency metric; requires completed tasks."""
        pool = self.latency_samples(metric, wclass)
        require(len(pool) > 0, f"no completed tasks for class {wclass!r}")
        p50, p95, p99 = np.percentile(np.asarray(pool, dtype=float), self.QUANTILES)
        return float(p50), float(p95), float(p99)

    def workload_classes(self) -> list[str]:
        """Workload classes with at least one completed task, sorted."""
        return sorted({t.wclass for t in self.completed()})

    def percentile_rows(self) -> list[list[object]]:
        """``[class, metric, p50, p95, p99]`` rows across every class
        (plus an ``ALL`` roll-up when more than one class completed)."""
        classes = self.workload_classes()
        scopes: list[Optional[str]] = list(classes)
        if len(classes) > 1:
            scopes.append(None)
        rows: list[list[object]] = []
        for scope in scopes:
            for metric in self.LATENCY_METRICS:
                p50, p95, p99 = self.percentiles(metric, scope)
                rows.append([scope if scope is not None else "ALL", metric, p50, p95, p99])
        return rows

    def to_table(self, float_fmt: str = "{:.2f}") -> str:
        """Per-class latency percentile table (tail-aware summary)."""
        from .report import format_table

        return format_table(
            ["class", "metric", "p50", "p95", "p99"],
            self.percentile_rows(),
            title="per-class latency percentiles (s)",
            float_fmt=float_fmt,
        )

    def to_rows(self) -> list[dict[str, object]]:
        """Flat per-task export for spreadsheets / dataframes."""
        rows: list[dict[str, object]] = []
        for t in self._tasks.values():
            rows.append(
                {
                    "owner": t.owner,
                    "class": t.wclass,
                    "submitted_at": t.submitted_at,
                    "started_at": t.started_at,
                    "finished_at": t.finished_at,
                    "execution_time": t.execution_time if t.done else None,
                    "turnaround": t.turnaround if t.finished_at is not None else None,
                    "failed": t.failed,
                    "failure_reason": t.failure_reason,
                    "oom_kills": t.oom_kills,
                    "retries": t.retries,
                    "major_faults": t.major_faults,
                    "minor_faults": t.minor_faults,
                    "phases": len(t.phase_durations),
                }
            )
        return rows

    @staticmethod
    def node_traffic(nodes: Iterable[NodeMemorySystem]) -> dict[str, int]:
        """Cluster-wide data-movement roll-up (Fig. 9's swap/CXL series)."""
        out = {
            "swapped_out_bytes": 0,
            "swapped_in_bytes": 0,
            "migrated_to_cxl_bytes": 0,
            "total_migrated_bytes": 0,
            "page_cache_inserts": 0,
            "compactions": 0,
        }
        for node in nodes:
            s = node.stats
            out["swapped_out_bytes"] += s.swapped_out_bytes
            out["swapped_in_bytes"] += s.swapped_in_bytes
            out["migrated_to_cxl_bytes"] += int(s.migrated_bytes[:, int(CXL)].sum())
            out["total_migrated_bytes"] += s.total_migrated_bytes
            out["page_cache_inserts"] += s.page_cache_inserts
            out["compactions"] += s.compactions
        return out
