"""Per-task and per-experiment measurement collection.

The evaluation (§IV-B) studies: total workflow execution time, page-fault
counts, batch makespan, data swapped to disk vs. moved to CXL, and startup
time.  :class:`TaskMetrics` accumulates the per-task views;
:class:`MetricsRegistry` aggregates them and snapshots node-level traffic
counters into an experiment-level record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..memory.system import NodeMemorySystem
from ..memory.tiers import CXL
from ..util.validation import require

__all__ = ["TaskMetrics", "MetricsRegistry"]


@dataclass
class TaskMetrics:
    """Lifecycle timestamps and fault counters for one task instance."""

    owner: str
    wclass: str = "GENERIC"
    submitted_at: float = 0.0
    scheduled_at: Optional[float] = None
    container_ready_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    failed: bool = False
    failure_reason: str = ""
    major_faults: int = 0
    minor_faults: int = 0
    phase_durations: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def queue_wait(self) -> float:
        require(self.scheduled_at is not None, f"{self.owner}: never scheduled")
        return self.scheduled_at - self.submitted_at

    @property
    def startup_time(self) -> float:
        """Container cold-start: scheduling to runnable (image ready)."""
        require(self.container_ready_at is not None, f"{self.owner}: container never ready")
        require(self.scheduled_at is not None, f"{self.owner}: never scheduled")
        return self.container_ready_at - self.scheduled_at

    @property
    def execution_time(self) -> float:
        """Start-of-execution to completion (the per-workflow Fig. 5 metric)."""
        require(self.finished_at is not None, f"{self.owner}: never finished")
        require(self.started_at is not None, f"{self.owner}: never started")
        return self.finished_at - self.started_at

    @property
    def turnaround(self) -> float:
        """Submission to completion, startup and queueing included."""
        require(self.finished_at is not None, f"{self.owner}: never finished")
        return self.finished_at - self.submitted_at

    @property
    def done(self) -> bool:
        return self.finished_at is not None and not self.failed


class MetricsRegistry:
    """All task metrics of one experiment run, plus node-level roll-ups."""

    def __init__(self) -> None:
        self._tasks: dict[str, TaskMetrics] = {}

    def task(self, owner: str, wclass: str = "GENERIC") -> TaskMetrics:
        tm = self._tasks.get(owner)
        if tm is None:
            tm = TaskMetrics(owner=owner, wclass=wclass)
            self._tasks[owner] = tm
        return tm

    def get(self, owner: str) -> TaskMetrics:
        require(owner in self._tasks, f"no metrics for task {owner!r}")
        return self._tasks[owner]

    def tasks(self) -> Iterable[TaskMetrics]:
        return self._tasks.values()

    def __len__(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    def completed(self) -> list[TaskMetrics]:
        return [t for t in self._tasks.values() if t.done]

    def failed(self) -> list[TaskMetrics]:
        return [t for t in self._tasks.values() if t.failed]

    def makespan(self) -> float:
        """First submission to last completion across the batch."""
        done = self.completed()
        require(len(done) > 0, "no completed tasks")
        start = min(t.submitted_at for t in done)
        end = max(t.finished_at for t in done)  # type: ignore[arg-type]
        return end - start

    def mean_execution_time(self, wclass: Optional[str] = None) -> float:
        pool = [
            t.execution_time
            for t in self.completed()
            if wclass is None or t.wclass == wclass
        ]
        require(len(pool) > 0, f"no completed tasks for class {wclass!r}")
        return float(np.mean(pool))

    def total_faults(self, wclass: Optional[str] = None) -> tuple[int, int]:
        majors = sum(
            t.major_faults for t in self._tasks.values() if wclass is None or t.wclass == wclass
        )
        minors = sum(
            t.minor_faults for t in self._tasks.values() if wclass is None or t.wclass == wclass
        )
        return majors, minors

    def mean_startup_time(self) -> float:
        pool = [t.startup_time for t in self.completed()]
        require(len(pool) > 0, "no completed tasks")
        return float(np.mean(pool))

    def to_rows(self) -> list[dict[str, object]]:
        """Flat per-task export for spreadsheets / dataframes."""
        rows: list[dict[str, object]] = []
        for t in self._tasks.values():
            rows.append(
                {
                    "owner": t.owner,
                    "class": t.wclass,
                    "submitted_at": t.submitted_at,
                    "started_at": t.started_at,
                    "finished_at": t.finished_at,
                    "execution_time": t.execution_time if t.done else None,
                    "turnaround": t.turnaround if t.finished_at is not None else None,
                    "failed": t.failed,
                    "failure_reason": t.failure_reason,
                    "major_faults": t.major_faults,
                    "minor_faults": t.minor_faults,
                    "phases": len(t.phase_durations),
                }
            )
        return rows

    @staticmethod
    def node_traffic(nodes: Iterable[NodeMemorySystem]) -> dict[str, int]:
        """Cluster-wide data-movement roll-up (Fig. 9's swap/CXL series)."""
        out = {
            "swapped_out_bytes": 0,
            "swapped_in_bytes": 0,
            "migrated_to_cxl_bytes": 0,
            "total_migrated_bytes": 0,
            "page_cache_inserts": 0,
            "compactions": 0,
        }
        for node in nodes:
            s = node.stats
            out["swapped_out_bytes"] += s.swapped_out_bytes
            out["swapped_in_bytes"] += s.swapped_in_bytes
            out["migrated_to_cxl_bytes"] += int(s.migrated_bytes[:, int(CXL)].sum())
            out["total_migrated_bytes"] += s.total_migrated_bytes
            out["page_cache_inserts"] += s.page_cache_inserts
            out["compactions"] += s.compactions
        return out
