"""Time-series sampling of cluster memory state.

A :class:`UtilizationSampler` snapshots every node's per-tier residency on
a fixed simulated interval — the data behind utilisation-over-time plots
and the §II-C idle-memory analysis at cluster scope.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..memory.system import NodeMemorySystem
from ..memory.tiers import NUM_TIERS, TierKind
from ..sim.engine import SimulationEngine
from ..sim.process import PeriodicProcess
from ..util.validation import check_positive, require

__all__ = ["UtilizationSampler"]


class UtilizationSampler:
    """Periodic per-tier residency snapshots across a set of nodes."""

    def __init__(
        self,
        engine: SimulationEngine,
        nodes: Sequence[NodeMemorySystem],
        interval: float = 5.0,
    ) -> None:
        check_positive(interval, "interval")
        require(len(nodes) > 0, "need at least one node to sample")
        self.engine = engine
        self.nodes = list(nodes)
        self.interval = float(interval)
        self._times: list[float] = []
        self._samples: list[np.ndarray] = []
        self._proc = PeriodicProcess(engine, interval, self._sample, "utilization-sampler")

    def start(self) -> None:
        self._proc.start()

    def stop(self) -> None:
        self._proc.stop()

    def _sample(self, now: float) -> None:
        snap = np.zeros((len(self.nodes), NUM_TIERS), dtype=np.int64)
        for i, node in enumerate(self.nodes):
            for t in range(NUM_TIERS):
                snap[i, t] = node.rss(TierKind(t))
        self._times.append(now)
        self._samples.append(snap)

    # ------------------------------------------------------------------ #
    @property
    def n_samples(self) -> int:
        return len(self._times)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times[k], data[k, node, tier])`` in bytes."""
        if not self._times:
            return np.zeros(0), np.zeros((0, len(self.nodes), NUM_TIERS), dtype=np.int64)
        return np.asarray(self._times), np.stack(self._samples)

    def cluster_series(self, tier: TierKind) -> np.ndarray:
        """Cluster-wide resident bytes in ``tier`` per sample."""
        _, data = self.as_arrays()
        if data.size == 0:
            return np.zeros(0, dtype=np.int64)
        return data[:, :, int(tier)].sum(axis=1)

    def peak(self, tier: TierKind) -> int:
        series = self.cluster_series(tier)
        return int(series.max()) if series.size else 0

    def mean_utilization(self, tier: TierKind) -> float:
        """Mean cluster-wide utilisation of ``tier`` over the run."""
        cap = sum(node.capacity(tier) for node in self.nodes)
        if cap == 0:
            return 0.0
        series = self.cluster_series(tier)
        return float(series.mean() / cap) if series.size else 0.0
