"""Plain-text reporting helpers.

Benchmark harnesses print the same rows/series the paper's figures plot;
these helpers keep that output aligned and consistent without pulling in a
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "format_series",
    "improvement",
    "format_pct",
    "render_gantt",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [float_fmt.format(c) if isinstance(c, float) else str(c) for c in row]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """One figure series as ``name: x=y, x=y, ...``."""
    pairs = ", ".join(f"{x}={y:.2f}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def improvement(baseline: float, ours: float) -> float:
    """Relative reduction of ``ours`` vs ``baseline`` (the paper's
    "reduces execution time by X%" convention).  Positive = we are faster."""
    if baseline <= 0:
        return 0.0
    return (baseline - ours) / baseline


def format_pct(frac: float) -> str:
    return f"{100.0 * frac:.1f}%"


def best_of(results: Mapping[str, float]) -> str:
    """Name of the smallest value (who wins)."""
    return min(results, key=results.get)  # type: ignore[arg-type]


def render_gantt(
    rows: Sequence[tuple[str, float, float]],
    *,
    width: int = 60,
    end: "float | None" = None,
) -> str:
    """ASCII Gantt chart of ``(label, start, finish)`` intervals.

    Queue/startup time shows as leading whitespace; the bar covers the
    execution interval.  Used by examples and debugging sessions to see a
    batch's shape at a glance.

    >>> print(render_gantt([("a", 0, 5), ("b", 2, 8)], width=8))
    a |#####   | 0.0-5.0
    b |  ######| 2.0-8.0
    """
    if not rows:
        return "(no tasks)"
    horizon = end if end is not None else max(f for _, _, f in rows)
    horizon = max(horizon, 1e-12)
    label_w = max(len(label) for label, _, _ in rows)
    lines = []
    for label, start, finish in rows:
        a = int(round(width * max(0.0, start) / horizon))
        b = int(round(width * min(horizon, finish) / horizon))
        b = max(b, a + 1)
        bar = " " * a + "#" * (b - a) + " " * (width - b)
        lines.append(f"{label.ljust(label_w)} |{bar[:width]}| {start:.1f}-{finish:.1f}")
    return "\n".join(lines)
