"""Crash-safe, append-only run journal (``journal.jsonl``).

The journal is the durable record of a sweep's progress: one JSON object
per line, appended with flush + fsync so a SIGKILL at any instant loses
at most the line being written.  Readers tolerate exactly that failure
mode — a torn trailing line is skipped, never an error — which is the
same contract the result cache's atomic-rename writes give at file
granularity (see :mod:`repro.cache.store`).

Record kinds (the ``ev`` field):

* ``run-started`` — a run began; carries the run id and the planned cells,
* ``cell-started`` — a cell was dispatched (with its attempt number),
* ``cell-committed`` — a cell's result was persisted to the result cache
  (or computed live); carries the cell id so ``--resume`` can skip it,
* ``cell-failed`` / ``cell-quarantined`` — one attempt failed / the
  retry budget is spent,
* ``run-interrupted`` — a drain (SIGINT/SIGTERM) stopped the run early,
* ``run-completed`` — the run finished (possibly with quarantined cells).

``--resume`` replays the journal with :meth:`RunJournal.load_state` and
treats every committed cell as done: its result is served from the
content-addressed cache byte-identically, and only uncommitted cells
execute.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

__all__ = ["JournalState", "RunJournal", "journal_path"]

#: default journal file name, placed next to the result-cache entries
JOURNAL_NAME = "journal.jsonl"


def journal_path(cache_root: "str | Path") -> Path:
    """The journal's canonical location: inside the run's cache root."""
    return Path(cache_root).expanduser() / JOURNAL_NAME


@dataclass
class JournalState:
    """What a replayed journal says about prior progress."""

    committed: Set[str] = field(default_factory=set)
    quarantined: Set[str] = field(default_factory=set)
    interrupted: bool = False
    completed: bool = False
    runs: int = 0
    records: List[Dict[str, Any]] = field(default_factory=list)

    def is_committed(self, key: str) -> bool:
        return key in self.committed


class RunJournal:
    """Append-only journal for one run directory.

    Every :meth:`record` call appends one complete line and fsyncs it;
    the file handle stays open for the journal's lifetime so a sweep's
    worth of records costs one open.  Instances are *not* shared across
    processes — only the supervising parent writes (workers report back
    through the result queue), so there is a single writer per file and
    appends never interleave.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path).expanduser()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def record(self, ev: str, **data: Any) -> None:
        """Append one record durably (write + flush + fsync)."""
        entry = {"t": time.time(), "ev": ev, **data}
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def run_started(self, run_id: str, cells: List[str], **meta: Any) -> None:
        self.record("run-started", run=run_id, cells=cells, **meta)

    def cell_started(self, key: str, attempt: int = 1, **data: Any) -> None:
        self.record("cell-started", cell=key, attempt=attempt, **data)

    def cell_committed(self, key: str, *, cached: bool = False, **data: Any) -> None:
        self.record("cell-committed", cell=key, cached=cached, **data)

    def cell_failed(self, key: str, kind: str, attempt: int, error: str = "") -> None:
        self.record("cell-failed", cell=key, kind=kind, attempt=attempt, error=error)

    def cell_quarantined(self, key: str, kind: str, attempts: int, error: str = "") -> None:
        self.record("cell-quarantined", cell=key, kind=kind, attempts=attempts, error=error)

    def run_interrupted(self, reason: str, pending: List[str]) -> None:
        self.record("run-interrupted", reason=reason, pending=pending)

    def run_completed(self, *, failures: int = 0) -> None:
        self.record("run-completed", failures=failures)

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - close failures are benign
            pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    @staticmethod
    def load_state(path: "str | Path") -> JournalState:
        """Replay ``path`` into a :class:`JournalState`.

        A missing file is an empty state; a torn trailing line (the one
        write a SIGKILL can interrupt) is skipped.  A cell committed in
        *any* earlier run counts as committed — the content-addressed
        cache revalidates the stored result on read, so a stale commit
        degrades to a recompute, never a wrong answer.
        """
        state = JournalState()
        p = Path(path).expanduser()
        if not p.exists():
            return state
        with open(p, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write at the kill point
                if not isinstance(entry, dict):
                    continue
                state.records.append(entry)
                ev = entry.get("ev")
                cell = entry.get("cell")
                if ev == "run-started":
                    state.runs += 1
                    state.completed = False
                    state.interrupted = False
                elif ev == "cell-committed" and cell:
                    state.committed.add(cell)
                    state.quarantined.discard(cell)
                elif ev == "cell-quarantined" and cell:
                    state.quarantined.add(cell)
                elif ev == "run-interrupted":
                    state.interrupted = True
                elif ev == "run-completed":
                    state.completed = True
        return state

    def state(self) -> JournalState:
        """Replay this journal's own file (including past runs)."""
        self._fh.flush()
        return self.load_state(self.path)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RunJournal({str(self.path)!r})"
