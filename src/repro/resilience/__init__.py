"""Resilient sweep execution: supervision, retries, journal, invariants.

The layer that makes long sweeps crash-safe and self-healing:

* :func:`~repro.resilience.supervisor.supervised_map` — the supervised
  sibling of :func:`repro.parallel.map_ordered`: per-worker heartbeats,
  per-cell deadlines, pool replenishment, deterministic retry backoff,
  and poison-cell quarantine,
* :class:`~repro.resilience.journal.RunJournal` — the fsync'd
  append-only ``journal.jsonl`` that makes ``run_all --resume`` and
  ``scenarios run --resume`` safe against SIGKILL,
* :mod:`~repro.resilience.invariants` — the null-object-dispatched
  runtime invariant checker behind ``--check-invariants``.

See ``docs/robustness.md`` for the execution model.
"""

from . import invariants
from .invariants import (
    NULL_CHECKER,
    InvariantChecker,
    InvariantViolation,
    NullInvariantChecker,
)
from .journal import JournalState, RunJournal, journal_path
from .policy import CellFailure, RetryPolicy, SweepFailure, failure_table
from .supervisor import SupervisedResult, supervised_map

__all__ = [
    "CellFailure",
    "InvariantChecker",
    "InvariantViolation",
    "JournalState",
    "NULL_CHECKER",
    "NullInvariantChecker",
    "RetryPolicy",
    "RunJournal",
    "SupervisedResult",
    "SweepFailure",
    "failure_table",
    "invariants",
    "journal_path",
    "supervised_map",
]
