"""Retry policy and failure records for supervised sweeps.

A :class:`RetryPolicy` turns ``(cell key, attempt)`` into a backoff
delay: exponential growth capped at ``max_delay``, with *deterministic*
jitter derived from the cell key (via the same CRC-mixing
:func:`~repro.util.rng.derive_seed` the sweep layer uses for per-cell
seeds).  Two runs of the same sweep therefore retry the same cells after
the same delays — retries are part of the reproducible schedule, not a
source of run-to-run noise.

Cells that exhaust their attempt budget are *quarantined*: the sweep
records a :class:`CellFailure` and keeps going, and the caller receives
every failure at once in a :class:`SweepFailure` (plus the partial
results) instead of dying on the first bad cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..util.rng import derive_seed
from ..util.validation import require

__all__ = ["CellFailure", "RetryPolicy", "SweepFailure", "failure_table"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised sweep retries a failing cell.

    ``delay(key, attempt)`` for attempts ``1..max_attempts - 1`` gives the
    pause before redispatching; once ``max_attempts`` attempts have failed
    the cell is quarantined.  ``jitter`` is the +/- fraction applied to the
    exponential delay, drawn deterministically from ``(key, attempt)``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    growth: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be >= 1")
        require(self.base_delay >= 0, "base_delay must be >= 0")
        require(self.growth >= 1, "growth must be >= 1")
        require(self.max_delay >= self.base_delay, "max_delay must be >= base_delay")
        require(0 <= self.jitter <= 1, "jitter must be in [0, 1]")

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` of cell ``key`` (seconds)."""
        require(attempt >= 1, "attempt numbering starts at 1")
        raw = min(self.max_delay, self.base_delay * self.growth ** (attempt - 1))
        if not self.jitter or not raw:
            return raw
        # deterministic uniform in [-jitter, +jitter): reproducible across
        # processes and runs, unlike random.random()
        unit = derive_seed(attempt, key) % 10**9 / 10**9
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def exhausted(self, attempt: int) -> bool:
        return attempt >= self.max_attempts


@dataclass
class CellFailure:
    """One quarantined cell: what failed, how, and how often it was tried.

    ``kind`` is ``"error"`` (the cell raised), ``"timeout"`` (it blew its
    deadline and the worker was killed), ``"crash"`` (the worker process
    died underneath it), or ``"interrupted"`` (a drain abandoned it).
    """

    key: str
    kind: str
    attempts: int
    error: str = ""
    elapsed: float = 0.0
    context: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        msg = f"{self.key}: {self.kind} after {self.attempts} attempt(s)"
        if self.error:
            msg += f" — {self.error}"
        return msg


class SweepFailure(RuntimeError):
    """Raised after a supervised sweep *completes* with quarantined cells.

    Unlike a propagated worker exception, every other cell has already
    produced its result by the time this is raised; ``results`` carries
    them (keyed like the sweep's normal return value) and ``failures``
    carries one :class:`CellFailure` per quarantined cell.
    """

    def __init__(self, failures: Sequence[CellFailure], results: Optional[dict] = None):
        self.failures: List[CellFailure] = list(failures)
        self.results = dict(results or {})
        super().__init__(
            f"{len(self.failures)} cell(s) quarantined: "
            + ", ".join(f.key for f in self.failures)
        )


def failure_table(failures: Sequence[CellFailure], title: str = "quarantined cells") -> str:
    """Render the per-cell failure table ``run_all`` prints before exiting
    non-zero."""
    from ..metrics.report import format_table

    rows = [
        [f.key, f.kind, float(f.attempts), f.error[:60] or "-"]
        for f in failures
    ]
    return format_table(
        ["cell", "failure", "attempts", "error"],
        rows,
        title=title,
        float_fmt="{:.0f}",
    )
