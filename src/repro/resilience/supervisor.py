"""Supervised fork-pool execution: heartbeats, deadlines, retries,
quarantine, and graceful drains around an ordered map.

:func:`supervised_map` is the resilient sibling of
:func:`repro.parallel.map_ordered`.  The contract is the same — apply a
picklable callable to picklable items, collect results in input order —
but execution is supervised instead of fire-and-forget:

* **one task queue and one result pipe per worker** — the supervisor
  always knows which cell each worker holds, so a dead or hung worker
  implicates exactly one cell, and killing it cannot corrupt a channel
  another worker uses (a shared result queue would hand every worker the
  same write lock, and a worker dying inside it would wedge the rest of
  the pool);
* **heartbeat + deadline** — every supervision tick polls each worker's
  liveness (``Process.is_alive``) and its cell's age; a worker that died
  is reaped and its cell retried, one past its per-cell ``deadline`` is
  killed and its cell retried, and the pool is replenished either way
  instead of deadlocking;
* **retry with deterministic backoff** — failed attempts (raise, crash,
  timeout) are redispatched after :meth:`RetryPolicy.delay`, whose
  jitter is seeded from the cell key, so retry schedules reproduce;
* **poison-cell quarantine** — a cell that exhausts its attempts is
  recorded as a :class:`CellFailure` and the sweep *keeps going*; the
  caller gets every failure at the end instead of losing the run to the
  first bad cell;
* **crash-safe journal** — when a :class:`~repro.resilience.journal.RunJournal`
  is attached, every dispatch/commit/quarantine is fsync'd before the
  run proceeds, which is what makes ``--resume`` safe against SIGKILL;
* **graceful drain** — SIGINT/SIGTERM (first delivery) stops new
  dispatches, lets in-flight cells finish within a grace window, records
  the interruption point in the journal, then re-raises as
  ``KeyboardInterrupt``; a second signal aborts immediately.

Platforms without ``fork`` (and nested calls inside pool workers) fall
back to an in-process loop that keeps the retry/quarantine/journal
semantics but cannot preempt a hung cell — deadlines need workers.
"""

from __future__ import annotations

import heapq
import multiprocessing
import multiprocessing.connection as _mpc
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..obs import insight as _insight
from ..parallel import executor as _px
from ..util.validation import require
from .journal import RunJournal
from .policy import CellFailure, RetryPolicy

__all__ = ["SupervisedResult", "supervised_map"]

#: supervision loop tick (seconds): result-queue poll timeout and the
#: granularity of liveness/deadline sweeps
_TICK = 0.02

#: exit code a worker uses when even its error report cannot be sent
_EXIT_REPORT_FAILED = 81


@dataclass
class SupervisedResult:
    """Outcome of one supervised map.

    ``results`` is in input order with ``None`` holes for quarantined
    cells; ``failures`` has one entry per quarantined cell, in input
    order.  ``ok`` is True when nothing was quarantined.
    """

    results: List[Any]
    failures: List[CellFailure]

    @property
    def ok(self) -> bool:
        return not self.failures


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #

def _send_safe(result_conn: Any, message: Tuple) -> None:
    try:
        result_conn.send(message)
    except Exception:  # pragma: no cover - pipe torn down under us
        os._exit(_EXIT_REPORT_FAILED)


def _worker_loop(worker_id: int, task_q: Any, result_conn: Any, fn: Callable[[Any], Any]) -> None:
    """One supervised worker: take a cell, run it, report back.

    Reports travel over the worker's private result pipe — a single
    writer per channel, so nothing this worker does (including dying
    mid-send) can block another worker's reports.  Telemetry follows the
    executor's fork contract: the worker runs the cell under a fresh
    child context and ships the snapshot back with the result for the
    parent to merge.
    """
    _px._IN_WORKER = True  # nested map_ordered/supervised_map stay in-process
    while True:
        msg = task_q.get()
        if msg is None:
            break
        idx, attempt, item = msg
        try:
            worker_tel = obs.worker_telemetry()
            worker_ins = _insight.worker_insight()
            if worker_tel is None and worker_ins is None:
                payload: Any = fn(item)
            elif worker_tel is None:
                with _insight.session(worker_ins):
                    value = fn(item)
                payload = _px._Telemetered(value, None, worker_ins.snapshot())
            elif worker_ins is None:
                with obs.session(worker_tel):
                    value = fn(item)
                payload = _px._Telemetered(value, worker_tel.snapshot())
            else:
                with obs.session(worker_tel), _insight.session(worker_ins):
                    value = fn(item)
                payload = _px._Telemetered(
                    value, worker_tel.snapshot(), worker_ins.snapshot()
                )
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            _send_safe(
                result_conn,
                ("error", worker_id, idx, attempt, f"{type(exc).__name__}: {exc}"),
            )
            continue
        try:
            result_conn.send(("done", worker_id, idx, attempt, payload))
        except ValueError as exc:  # unpicklable result: report as a failure
            _send_safe(
                result_conn,
                ("error", worker_id, idx, attempt, f"result not picklable: {exc}"),
            )
        except Exception as exc:
            _send_safe(
                result_conn,
                ("error", worker_id, idx, attempt, f"result not sendable: {exc}"),
            )


# --------------------------------------------------------------------------- #
# supervisor side
# --------------------------------------------------------------------------- #

class _Worker:
    """Handle for one supervised worker process and its private channels."""

    __slots__ = ("id", "proc", "task_q", "result_r", "assignment", "assigned_at")

    def __init__(self, ctx: Any, worker_id: int, fn: Callable) -> None:
        self.id = worker_id
        self.task_q = ctx.SimpleQueue()
        self.result_r, result_w = ctx.Pipe(duplex=False)
        self.proc = ctx.Process(
            target=_worker_loop,
            args=(worker_id, self.task_q, result_w, fn),
            name=f"repro-supervised-{worker_id}",
            daemon=True,
        )
        self.assignment: Optional[Tuple[int, int]] = None
        self.assigned_at = 0.0
        self.proc.start()
        # drop the parent's copy of the write end: the worker is then the
        # pipe's only writer, so its death reads as a clean EOF here
        result_w.close()

    def assign(self, idx: int, attempt: int, item: Any) -> None:
        self.assignment = (idx, attempt)
        self.assigned_at = time.monotonic()
        self.task_q.put((idx, attempt, item))

    def kill(self) -> None:
        """Forcibly end the worker (hung cell): terminate, escalate, reap."""
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=1.0)
        if self.proc.is_alive():  # pragma: no cover - SIGTERM ignored
            self.proc.kill()
            self.proc.join(timeout=1.0)

    def retire(self) -> None:
        """End an idle worker cooperatively (sentinel, then escalate)."""
        try:
            self.task_q.put(None)
        except Exception:  # pragma: no cover - queue already broken
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.kill()

    def close_conn(self) -> None:
        try:
            self.result_r.close()
        except OSError:  # pragma: no cover - double close is benign
            pass


class _Supervisor:
    """State machine for one supervised map over the miss set."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        keys: Sequence[str],
        *,
        n_workers: int,
        deadline: Optional[float],
        retry: RetryPolicy,
        journal: Optional[RunJournal],
        drain_grace: float,
        on_commit: Optional[Callable[[str, Any], None]] = None,
    ) -> None:
        self.fn = fn
        self.items = list(items)
        self.keys = list(keys)
        self.n = len(self.items)
        self.n_workers = n_workers
        self.deadline = deadline
        self.retry = retry
        self.journal = journal
        self.drain_grace = drain_grace
        self.on_commit = on_commit
        self.results: List[Any] = [None] * self.n
        self.done = [False] * self.n
        self.failures: Dict[int, CellFailure] = {}
        self.first_started: Dict[int, float] = {}
        self.outstanding = self.n
        self.ready: deque[Tuple[int, int]] = deque((i, 1) for i in range(self.n))
        self.retry_heap: List[Tuple[float, int, int]] = []
        self.ctx = multiprocessing.get_context("fork")
        self.workers: Dict[int, _Worker] = {}
        self.idle: deque[int] = deque()
        self._next_worker_id = 0
        self.draining = False
        self.drain_reason = ""
        self.drain_started = 0.0

    # ------------------------------------------------------------------ #
    # pool management
    # ------------------------------------------------------------------ #
    def _spawn_worker(self) -> None:
        w = _Worker(self.ctx, self._next_worker_id, self.fn)
        self.workers[w.id] = w
        self.idle.append(w.id)
        self._next_worker_id += 1

    def _replace_worker(self, w: _Worker) -> None:
        """Drop a dead/killed worker and replenish the pool if needed."""
        w.assignment = None
        w.close_conn()
        self.workers.pop(w.id, None)
        if w.id in self.idle:
            self.idle = deque(i for i in self.idle if i != w.id)
        live = self.n_workers - len(self.workers)
        if live > 0 and not self.draining and self._work_remaining():
            self._spawn_worker()

    def _work_remaining(self) -> bool:
        in_flight = sum(1 for w in self.workers.values() if w.assignment is not None)
        return self.outstanding - in_flight > 0

    # ------------------------------------------------------------------ #
    # signals (graceful drain)
    # ------------------------------------------------------------------ #
    def _install_signals(self) -> List[Tuple[int, Any]]:
        if threading.current_thread() is not threading.main_thread():
            return []
        saved = []

        def handler(signum: int, _frame: Any) -> None:
            if self.draining:
                raise KeyboardInterrupt  # second signal: abort now
            self.draining = True
            self.drain_started = time.monotonic()
            self.drain_reason = signal.Signals(signum).name

        for sig in (signal.SIGINT, signal.SIGTERM):
            saved.append((sig, signal.signal(sig, handler)))
        return saved

    # ------------------------------------------------------------------ #
    # outcome handling
    # ------------------------------------------------------------------ #
    def _commit(self, idx: int, payload: Any) -> None:
        if self.done[idx] or idx in self.failures:
            return  # stale report for an already-settled cell
        if isinstance(payload, _px._Telemetered):
            if payload.record is not None:
                obs.active().merge(payload.record)
            if payload.insight is not None:
                _insight.active().merge(payload.insight)
            payload = payload.result
        self.results[idx] = payload
        self.done[idx] = True
        self.outstanding -= 1
        if self.on_commit is not None:
            self.on_commit(self.keys[idx], payload)

    def _attempt_failed(self, idx: int, attempt: int, kind: str, error: str) -> None:
        if self.done[idx] or idx in self.failures:
            return
        key = self.keys[idx]
        obs.counter("resilience.attempt_failures", kind=kind)
        if self.journal is not None:
            self.journal.cell_failed(key, kind, attempt, error)
        if kind == "interrupted" or self.retry.exhausted(attempt):
            elapsed = time.monotonic() - self.first_started.get(idx, time.monotonic())
            self.failures[idx] = CellFailure(
                key=key, kind=kind, attempts=attempt, error=error, elapsed=elapsed
            )
            self.outstanding -= 1
            obs.counter("resilience.quarantined")
            if self.journal is not None:
                self.journal.cell_quarantined(key, kind, attempt, error)
        else:
            obs.counter("resilience.retries")
            due = time.monotonic() + self.retry.delay(key, attempt)
            heapq.heappush(self.retry_heap, (due, idx, attempt + 1))

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run(self) -> SupervisedResult:
        saved_signals = self._install_signals()
        try:
            for _ in range(min(self.n_workers, self.n)):
                self._spawn_worker()
            while self.outstanding > 0:
                self._promote_due_retries()
                self._dispatch()
                self._harvest()
                self._sweep_workers()
                if self.draining:
                    self._drain_step()
            interrupted = self.draining
        finally:
            for sig, old in saved_signals:
                signal.signal(sig, old)
            self._shutdown_pool()
        if interrupted:
            if self.journal is not None:
                pending = [
                    self.keys[i]
                    for i in range(self.n)
                    if not self.done[i] and i not in self.failures
                ] + [f.key for f in self.failures.values() if f.kind == "interrupted"]
                self.journal.run_interrupted(self.drain_reason, pending)
            raise KeyboardInterrupt(f"supervised map drained on {self.drain_reason}")
        return SupervisedResult(
            results=self.results,
            failures=[self.failures[i] for i in sorted(self.failures)],
        )

    def _promote_due_retries(self) -> None:
        now = time.monotonic()
        while self.retry_heap and self.retry_heap[0][0] <= now:
            _, idx, attempt = heapq.heappop(self.retry_heap)
            self.ready.append((idx, attempt))

    def _dispatch(self) -> None:
        while self.ready and self.idle and not self.draining:
            idx, attempt = self.ready.popleft()
            if self.done[idx] or idx in self.failures:
                continue
            wid = self.idle.popleft()
            w = self.workers.get(wid)
            if w is None or not w.proc.is_alive():
                if w is not None:
                    self._replace_worker(w)
                self.ready.appendleft((idx, attempt))
                continue
            self.first_started.setdefault(idx, time.monotonic())
            if self.journal is not None:
                self.journal.cell_started(self.keys[idx], attempt)
            w.assign(idx, attempt, self.items[idx])

    def _harvest(self) -> None:
        conns = {w.result_r: w for w in self.workers.values()}
        if not conns:
            time.sleep(_TICK)
            return
        try:
            ready = _mpc.wait(list(conns), timeout=_TICK)
        except (OSError, InterruptedError):  # pragma: no cover - fd races
            return
        for conn in ready:
            self._receive(conns[conn])

    def _receive(self, w: _Worker, *, requeue: bool = True) -> bool:
        """Read one report off a worker's pipe; False when none can be.

        EOF (the worker died) and a torn trailing write (it died
        mid-send) both end the channel — the sweep reaps the process and
        retries its cell.  A report that arrives intact but cannot be
        decoded fails the attempt instead of stranding the cell.
        """
        try:
            msg = w.result_r.recv()
        except (EOFError, OSError):
            return False
        except Exception as exc:  # pragma: no cover - undecodable payload
            if w.assignment is not None:
                idx, attempt = w.assignment
                w.kill()
                self._replace_worker(w)
                self._attempt_failed(
                    idx, attempt, "error", f"undecodable worker report: {exc}"
                )
            return False
        kind, _wid, idx, attempt, payload = msg
        if w.assignment == (idx, attempt):
            w.assignment = None
            if requeue:
                self.idle.append(w.id)
        if kind == "done":
            self._commit(idx, payload)
        else:
            self._attempt_failed(idx, attempt, "error", str(payload))
        return True

    def _sweep_workers(self) -> None:
        now = time.monotonic()
        for w in list(self.workers.values()):
            if not w.proc.is_alive():
                w.proc.join(timeout=0.1)
                # a report may have raced death onto the pipe: drain it so
                # a cell that actually finished commits instead of retrying
                try:
                    while w.result_r.poll(0):
                        if not self._receive(w, requeue=False):
                            break
                except OSError:  # pragma: no cover - conn closed under us
                    pass
                code = w.proc.exitcode
                pending = w.assignment
                self._replace_worker(w)
                if pending is not None:
                    obs.counter("resilience.worker_crashes")
                    self._attempt_failed(
                        pending[0], pending[1], "crash",
                        f"worker died (exit code {code})",
                    )
            elif (
                w.assignment is not None
                and self.deadline is not None
                and now - w.assigned_at > self.deadline
            ):
                idx, attempt = w.assignment
                w.kill()
                self._replace_worker(w)
                obs.counter("resilience.timeouts")
                self._attempt_failed(
                    idx, attempt, "timeout",
                    f"exceeded per-cell deadline of {self.deadline:g}s",
                )

    def _drain_step(self) -> None:
        """Draining: abandon queued/retrying cells, bound in-flight time."""
        for idx, attempt in list(self.ready):
            self._attempt_failed(idx, attempt, "interrupted", "drained before dispatch")
        self.ready.clear()
        while self.retry_heap:
            _, idx, attempt = heapq.heappop(self.retry_heap)
            self._attempt_failed(idx, attempt, "interrupted", "drained before retry")
        grace_over = time.monotonic() - self.drain_started > self.drain_grace
        for w in list(self.workers.values()):
            if w.assignment is None:
                continue
            if grace_over:
                idx, attempt = w.assignment
                w.kill()
                self._replace_worker(w)
                self._attempt_failed(
                    idx, attempt, "interrupted", "killed by drain grace expiry"
                )

    def _shutdown_pool(self) -> None:
        for w in list(self.workers.values()):
            if w.assignment is None:
                w.retire()
            else:
                w.kill()
        for w in self.workers.values():
            if w.proc.is_alive():  # pragma: no cover - belt and braces
                w.kill()
            w.close_conn()
        self.workers.clear()


# --------------------------------------------------------------------------- #
# in-process fallback (no fork / nested / sequential)
# --------------------------------------------------------------------------- #

def _supervised_loop(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    keys: Sequence[str],
    retry: RetryPolicy,
    journal: Optional[RunJournal],
    on_commit: Optional[Callable[[str, Any], None]] = None,
) -> SupervisedResult:
    results: List[Any] = [None] * len(items)
    failures: List[CellFailure] = []
    for idx, item in enumerate(items):
        attempt = 1
        t0 = time.monotonic()
        while True:
            if journal is not None:
                journal.cell_started(keys[idx], attempt)
            try:
                results[idx] = fn(item)
                if on_commit is not None:
                    on_commit(keys[idx], results[idx])
                break
            except KeyboardInterrupt:
                if journal is not None:
                    journal.run_interrupted("SIGINT", [keys[i] for i in range(idx, len(items))])
                raise
            except Exception as exc:  # noqa: BLE001 - quarantine, don't die
                error = f"{type(exc).__name__}: {exc}"
                obs.counter("resilience.attempt_failures", kind="error")
                if journal is not None:
                    journal.cell_failed(keys[idx], "error", attempt, error)
                if retry.exhausted(attempt):
                    failures.append(
                        CellFailure(
                            key=keys[idx], kind="error", attempts=attempt,
                            error=error, elapsed=time.monotonic() - t0,
                        )
                    )
                    obs.counter("resilience.quarantined")
                    if journal is not None:
                        journal.cell_quarantined(keys[idx], "error", attempt, error)
                    break
                obs.counter("resilience.retries")
                time.sleep(retry.delay(keys[idx], attempt))
                attempt += 1
    return SupervisedResult(results=results, failures=failures)


# --------------------------------------------------------------------------- #
# public entry point
# --------------------------------------------------------------------------- #

def supervised_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    keys: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    deadline: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[RunJournal] = None,
    cache: Optional[Any] = None,
    cache_key: Optional[Callable[[Any], Any]] = None,
    drain_grace: float = 10.0,
) -> SupervisedResult:
    """Resilient ordered map: ``map_ordered`` plus supervision.

    Parameters mirror :func:`repro.parallel.map_ordered` (including the
    ``cache``/``cache_key`` memoization short-circuit), with the
    supervision knobs on top:

    ``keys``
        Stable per-item names for journal records, retry seeding, and
        failure reports; defaults to ``cell0..cellN``.
    ``deadline``
        Per-cell wall-clock budget in seconds.  Enforced only when cells
        run in supervised workers (a hung in-process cell cannot be
        preempted); forcing ``deadline`` with ``jobs=None`` still spawns
        a single supervised worker so the timeout bites.
    ``retry`` / ``journal`` / ``drain_grace``
        See the module docstring.

    Returns a :class:`SupervisedResult`; quarantined cells leave ``None``
    holes in ``results`` and one :class:`CellFailure` each in
    ``failures``.  The function only raises for caller errors and
    ``KeyboardInterrupt`` (after a drain) — cell failures never
    propagate as exceptions.
    """
    items = list(items)
    require(callable(fn), "fn must be callable")
    keys = [str(k) for k in keys] if keys is not None else [f"cell{i}" for i in range(len(items))]
    require(len(keys) == len(items), "keys must match items 1:1")
    require(len(set(keys)) == len(keys), "cell keys must be unique")
    retry = retry if retry is not None else RetryPolicy()

    results: List[Any] = [None] * len(items)
    miss_idx = list(range(len(items)))
    if cache is not None and cache_key is not None:
        miss_idx = []
        for i, item in enumerate(items):
            hit, value = cache.get(cache_key(item))
            if hit:
                results[i] = value
                if journal is not None:
                    journal.cell_committed(keys[i], cached=True)
            else:
                miss_idx.append(i)
    if not miss_idx:
        return SupervisedResult(results=results, failures=[])

    miss_items = [items[i] for i in miss_idx]
    miss_keys = [keys[i] for i in miss_idx]
    key_to_idx = {keys[i]: i for i in miss_idx}

    def commit_cb(key: str, value: Any) -> None:
        # cache first, journal second: a crash between the two degrades to
        # a recompute on resume, never to a committed-but-missing result
        if cache is not None and cache_key is not None:
            cache.put(cache_key(items[key_to_idx[key]]), value)
        if journal is not None:
            journal.cell_committed(key)

    n_workers = min(_px.resolve_jobs(jobs), len(miss_items))
    use_pool = (
        _px.supports_fork()
        and not _px._IN_WORKER
        and (n_workers > 1 or deadline is not None)
    )
    with obs.span(
        "supervised_map", cells=len(items), misses=len(miss_items), workers=n_workers
    ):
        if use_pool:
            sup = _Supervisor(
                fn, miss_items, miss_keys,
                n_workers=max(1, n_workers), deadline=deadline, retry=retry,
                journal=journal, drain_grace=drain_grace, on_commit=commit_cb,
            )
            sub = sup.run()
        else:
            sub = _supervised_loop(
                fn, miss_items, miss_keys, retry, journal, on_commit=commit_cb
            )

    failures: List[CellFailure] = list(sub.failures)
    failed_keys = {f.key for f in failures}
    for i, value in zip(miss_idx, sub.results):
        if keys[i] not in failed_keys:
            results[i] = value
    return SupervisedResult(results=results, failures=failures)
