"""Runtime invariant checker — conservation laws the simulator must hold.

The simulator's correctness rests on a handful of conservation
properties that faults (node crashes, tier evacuations, OOM kills) must
never break:

* **bytes are conserved** — a migration or evacuation moves chunks
  between tiers; it never creates or destroys accounted bytes,
* **no task is lost** — every submitted job is queued, starting,
  running, awaiting a requeue, or terminal; the scheduler's queue holds
  only pending jobs and holds each at most once,
* **the event heap is consistent** — the engine's O(1) live counter
  always matches a recount of the heap.

Checks are wired through the same null-object dispatch trick as
:mod:`repro.obs`: every call site asks the *active* checker, which is a
shared no-op :data:`NULL_CHECKER` unless a run enables checking
(``run_all --check-invariants``, ``scenarios run --check-invariants``,
or :func:`session` in tests).  Disabled cost is one attribute load plus
one no-op call — measured alongside the telemetry budget in
``benchmarks/bench_resilience.py``.

This module is deliberately import-light (stdlib + the error hierarchy
only) and duck-typed over the objects it inspects, so any layer of the
stack can call it without import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List

from ..util.errors import ReproError

__all__ = [
    "NULL_CHECKER",
    "InvariantChecker",
    "InvariantViolation",
    "NullInvariantChecker",
    "active",
    "enabled",
    "install",
    "session",
]


class InvariantViolation(ReproError):
    """A conservation property the simulator must hold was broken."""


class NullInvariantChecker:
    """Checker that checks nothing — the default active instance.

    Every method is a no-op; call sites guard heavyweight precomputation
    behind ``checker.enabled`` exactly as emission points do for
    :mod:`repro.obs`.
    """

    enabled = False

    def memory(self, mem: Any) -> None:
        pass

    def conservation(
        self, where: str, before: int, after: int, *, op: str, delta: int = 0
    ) -> None:
        pass

    def engine(self, engine: Any) -> None:
        pass

    def scheduler(self, sched: Any) -> None:
        pass

    def metrics(self, metrics: Any) -> None:
        pass


NULL_CHECKER = NullInvariantChecker()


class InvariantChecker(NullInvariantChecker):
    """The live checker: asserts, records, and (by default) raises.

    ``strict=False`` collects violations in :attr:`violations` instead of
    raising — what the chaos harness uses to keep a run alive while still
    counting every broken invariant.
    """

    enabled = True

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[str] = []
        self.checks = 0

    # ------------------------------------------------------------------ #
    def _fail(self, message: str) -> None:
        self.violations.append(message)
        from .. import obs

        obs.counter("invariants.violations")
        if self.strict:
            raise InvariantViolation(message)

    # ------------------------------------------------------------------ #
    # memory conservation
    # ------------------------------------------------------------------ #
    def memory(self, mem: Any) -> None:
        """Full accounting validation of one :class:`NodeMemorySystem`
        (per-tier used bytes match the pagesets, caches consistent)."""
        self.checks += 1
        try:
            mem.validate()
        except Exception as exc:
            self._fail(f"memory accounting on {mem.node_id}: {exc}")

    def conservation(
        self, where: str, before: int, after: int, *, op: str, delta: int = 0
    ) -> None:
        """Assert an operation changed total accounted bytes by exactly
        ``delta`` (0 for migrations/evacuations, +n for placements)."""
        self.checks += 1
        if after != before + delta:
            self._fail(
                f"bytes not conserved across {op} on {where}: "
                f"{before} -> {after} (expected {before + delta})"
            )

    # ------------------------------------------------------------------ #
    # engine heap consistency
    # ------------------------------------------------------------------ #
    def engine(self, engine: Any) -> None:
        """The O(1) live-event counter must match a recount of the heap."""
        self.checks += 1
        recount = sum(
            1 for ev in engine._heap if not ev.cancelled and not ev.fired
        )
        live = engine.pending()
        if recount != live:
            self._fail(
                f"event-heap drift: live counter says {live}, "
                f"heap recount says {recount}"
            )

    # ------------------------------------------------------------------ #
    # task accounting
    # ------------------------------------------------------------------ #
    def scheduler(self, sched: Any) -> None:
        """No task lost between queue / starting / running / terminal."""
        self.checks += 1
        from ..scheduler.job import JobState

        seen: set[int] = set()
        for job in sched.queue:
            if job.job_id in seen:
                self._fail(f"job {job.name} queued twice")
            seen.add(job.job_id)
            if job.state is not JobState.PENDING:
                self._fail(
                    f"queued job {job.name} is {job.state.name}, not PENDING"
                )
        reserved = [0] * len(sched.agents)
        for job in sched.jobs.values():
            if job._reserved:
                if job.node_index is None:
                    self._fail(f"job {job.name} holds cores on no node")
                else:
                    reserved[job.node_index] += job._reserved
            if job.state is JobState.RUNNING and job.node_index is None:
                self._fail(f"running job {job.name} is placed on no node")
        for i, agent in enumerate(sched.agents):
            if reserved[i] != sched._reserved_cores[i]:
                self._fail(
                    f"node {i}: reserved-core drift "
                    f"({sched._reserved_cores[i]} tracked, {reserved[i]} held)"
                )
            if not 0 <= agent.cores_used <= agent.cores:
                self._fail(
                    f"node {i}: cores_used {agent.cores_used} outside "
                    f"[0, {agent.cores}]"
                )
        self.metrics(sched.metrics)

    def metrics(self, metrics: Any) -> None:
        """Terminal states are exclusive and timestamped consistently."""
        self.checks += 1
        for tm in metrics.tasks():
            if tm.failed and tm.finished_at is None:
                self._fail(f"failed task {tm.owner} has no finish time")
            if tm.failed and not tm.failure_reason:
                self._fail(f"failed task {tm.owner} carries no failure reason")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<InvariantChecker strict={self.strict} checks={self.checks} "
            f"violations={len(self.violations)}>"
        )


# --------------------------------------------------------------------------- #
# module-level dispatch (what the stack's check sites call)
# --------------------------------------------------------------------------- #

_active: NullInvariantChecker = NULL_CHECKER


def active() -> NullInvariantChecker:
    """The checker every call site currently dispatches to."""
    return _active


def enabled() -> bool:
    return _active.enabled


def install(checker: NullInvariantChecker) -> NullInvariantChecker:
    """Install ``checker`` as the active one; returns the previous.

    Installed *before* a fork pool spawns, the checker is inherited by
    every worker — which is how ``--check-invariants`` reaches forked
    sweep cells.
    """
    global _active
    previous = _active
    _active = checker
    return previous


@contextmanager
def session(checker: NullInvariantChecker) -> Iterator[NullInvariantChecker]:
    """Scope ``checker`` as active for the ``with`` body."""
    previous = install(checker)
    try:
        yield checker
    finally:
        install(previous)
