"""Execution environments: IE, CBE, TME, IMME (§IV-C3)."""

from .environments import EnvKind, Environment, EnvironmentConfig, make_environment

__all__ = ["EnvKind", "Environment", "EnvironmentConfig", "make_environment"]
