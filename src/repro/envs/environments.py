"""The paper's four execution environments (§IV-C3), ready to run.

* **IE** — Ideal Environment: enough local DRAM for everything, plain
  Linux memory management.
* **CBE** — Constrained Baseline Environment: limited DRAM, no tiered
  memory, pages swap to disk under pressure.
* **TME** — Tiered Memory Environment: CBE plus PMem/CXL tiers managed by
  a workflow-oblivious TPP-style demand policy with temperature-based
  promotion/demotion.
* **IMME** — Intelligent Memory Management Environment: TME plus the
  paper's Tiered Memory Manager (Algorithms 1/2, intelligent movement,
  proactive swapping, CXL image staging).

An :class:`Environment` bundles the full simulated stack — engine,
cluster memory topology, node agents, container runtime, scheduler,
metrics — so experiments construct one per configuration and call
:meth:`Environment.run_batch`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

import numpy as np

from .. import obs
from ..containers.image import ImageRegistry, default_images
from ..containers.runtime import ContainerRuntime, NetworkFabric
from ..core.flags import MemFlag
from ..core.manager import TieredMemoryManager
from ..core.sharing import SharedMemoryManager
from ..memory.pageset import DEFAULT_CHUNK_SIZE, UNMAPPED
from ..memory.tiers import (
    DRAM,
    NUM_TIERS,
    TierKind,
    TierSpec,
    constrained_tier_specs,
    scaled_tier_capacities,
)
from ..memory.topology import MemoryTopology
from ..obs import insight as _insight
from ..metrics.collector import MetricsRegistry
from ..policies.base import MemoryPolicy
from ..policies.linux import LinuxSwapPolicy
from ..policies.tpp import TieredDemandPolicy
from ..runtime.node_agent import NodeAgent
from ..runtime.rates import RateModelConfig
from ..scheduler.slurm import SlurmScheduler
from ..sim.engine import SimulationEngine
from ..sim.process import TickGroup
from ..util.units import GBps, TiB
from ..util.validation import check_positive, require
from ..workflows.task import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..scenarios.spec import ScenarioSpec

__all__ = ["EnvKind", "EnvironmentConfig", "Environment", "make_environment"]


class EnvKind(enum.Enum):
    IE = "ideal"
    CBE = "constrained-baseline"
    TME = "tiered-memory"
    IMME = "intelligent"


@dataclass
class EnvironmentConfig:
    """Everything needed to stand up one simulated cluster."""

    kind: EnvKind
    n_nodes: int = 1
    cores_per_node: int = 64
    dram_capacity: int = TiB(8)
    pmem_capacity: int = 0
    cxl_capacity: int = 0
    swap_capacity: int = TiB(16)
    chunk_size: int = DEFAULT_CHUNK_SIZE
    daemon_interval: float = 1.0
    network_bandwidth: float = GBps(1.25)
    rate_config: RateModelConfig = field(default_factory=RateModelConfig)
    #: IMME: pre-stage container images in shared CXL before launches
    stage_images: bool = False
    #: TME: force this fraction of each allocation onto CXL (Fig. 6 sweep)
    cxl_fraction: Optional[float] = None
    #: override the policy entirely (Fig. 7 allocation-policy comparison)
    policy_factory: Optional[Callable[[dict[TierKind, TierSpec]], MemoryPolicy]] = None
    validate_invariants: bool = False
    #: simulation-core backend: "object" | "arena" | "arena-fast" | None
    #: (= $REPRO_CORE).  Deliberately NOT part of ScenarioSpec — scenario
    #: digests must be backend-invariant ("object" and "arena" produce
    #: byte-identical results; "arena-fast" is statistically equivalent,
    #: see docs/performance.md).
    core_backend: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive(self.n_nodes, "n_nodes")
        check_positive(self.cores_per_node, "cores_per_node")
        check_positive(self.dram_capacity, "dram_capacity")

    def tier_specs(self) -> dict[TierKind, TierSpec]:
        if self.kind in (EnvKind.IE, EnvKind.CBE):
            return constrained_tier_specs(
                dram_capacity=self.dram_capacity, swap_capacity=self.swap_capacity
            )
        return constrained_tier_specs(
            dram_capacity=self.dram_capacity,
            pmem_capacity=self.pmem_capacity,
            cxl_capacity=self.cxl_capacity,
            swap_capacity=self.swap_capacity,
        )

    def build_policy(self, specs: dict[TierKind, TierSpec]) -> MemoryPolicy:
        if self.policy_factory is not None:
            return self.policy_factory(specs)
        if self.kind in (EnvKind.IE, EnvKind.CBE):
            return LinuxSwapPolicy()
        if self.kind is EnvKind.TME:
            return TieredDemandPolicy(cxl_fraction=self.cxl_fraction)
        return TieredMemoryManager(specs)


class Environment:
    """A fully-wired simulated cluster for one environment configuration."""

    def __init__(self, config: EnvironmentConfig, registry: Optional[ImageRegistry] = None):
        self.config = config
        self.engine = SimulationEngine()
        specs = config.tier_specs()
        self.topology = MemoryTopology(config.n_nodes, specs, backend=config.core_backend)
        self.metrics = MetricsRegistry()
        self.shared_memory: Optional[SharedMemoryManager] = None
        if config.kind is EnvKind.IMME:
            self.shared_memory = SharedMemoryManager(self.topology.shared_cxl, config.n_nodes)
        # All node daemons tick at the same interval — coalesce them onto
        # one engine event per cluster-wide tick instead of one per node.
        self.ticker = TickGroup(self.engine, config.daemon_interval, "daemon")
        self.agents = [
            NodeAgent(
                self.engine,
                node,
                config.build_policy(specs),
                self.metrics,
                cores=config.cores_per_node,
                daemon_interval=config.daemon_interval,
                rate_config=config.rate_config,
                chunk_size=config.chunk_size,
                validate_invariants=config.validate_invariants,
                shared_memory=self.shared_memory,
                node_index=i,
                ticker=self.ticker,
            )
            for i, node in enumerate(self.topology.nodes)
        ]
        # Tier time-series sampling rides the shared daemon tick; one
        # enabled() check per cluster tick when the insight plane is off.
        # The stall proxy weights each slow tier's resident bytes by its
        # access-latency excess over DRAM.
        dram_lat = max(specs[DRAM].latency, 1e-12)
        self._stall_weights = np.array(
            [max(0.0, specs[TierKind(t)].latency / dram_lat - 1.0) for t in range(NUM_TIERS)],
            dtype=np.float64,
        )
        self.ticker.add(self._sample_insight)
        self.registry = registry if registry is not None else default_images()
        self.fabric = NetworkFabric(self.engine, config.network_bandwidth)
        self.containers = ContainerRuntime(
            self.engine,
            self.registry,
            self.fabric,
            config.n_nodes,
            shared_memory=self.shared_memory,
            metrics=self.metrics,
        )
        self.scheduler = SlurmScheduler(self.engine, self.agents, self.containers, self.metrics)
        #: active fault injectors (see :meth:`inject_faults`)
        self.injectors: list = []
        self._telemetry_exported = False

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.config.kind.name

    def stage_images_for(self, specs: Iterable[TaskSpec]) -> None:
        """IMME: stage each distinct image once in shared CXL (§III-C5)."""
        require(self.shared_memory is not None, "image staging requires the IMME environment")
        for image in sorted({s.image for s in specs}):
            self.containers.stage_image(image)

    def run_batch(
        self,
        specs: Sequence[TaskSpec],
        *,
        flags: Optional[MemFlag] = None,
        exclusive: bool = False,
        max_time: float = 1e9,
    ) -> MetricsRegistry:
        """Submit every spec now, run to completion, return the metrics.

        ``exclusive`` runs the batch bare-metal style: whole-node
        allocations, no containers, no colocation (§II-B).
        """
        if self.config.stage_images and self.shared_memory is not None and not exclusive:
            self.stage_images_for(specs)
        self.scheduler.submit_batch(specs, flags=flags, exclusive=exclusive)
        self.scheduler.run_to_completion(max_time=max_time)
        return self.metrics

    def run_arrivals(
        self,
        specs: Sequence[TaskSpec],
        arrival_times: Sequence[float],
        *,
        flags: Optional[MemFlag] = None,
        max_time: float = 1e9,
    ) -> MetricsRegistry:
        """Open-loop run: submit ``specs[i]`` at ``arrival_times[i]``
        (simulated seconds from now), then run until everything finishes."""
        require(
            len(specs) == len(arrival_times),
            "need exactly one arrival time per spec",
        )
        if self.config.stage_images and self.shared_memory is not None:
            self.stage_images_for(specs)
        for spec, at in zip(specs, arrival_times):
            self.engine.schedule(
                max(0.0, float(at)),
                lambda s=spec: self.scheduler.submit(s, flags=flags),
                f"arrival.{spec.name}",
            )
        # drain the arrival events first so all_done cannot be trivially true
        last = max((float(a) for a in arrival_times), default=0.0)
        self.engine.run(until=self.engine.now + last)
        self.scheduler.run_to_completion(max_time=max_time)
        return self.metrics

    def serve(
        self,
        service,
        *,
        scale: float,
        seed: int = 0,
        scenario: str = "service",
        background: Sequence[TaskSpec] = (),
        bg_arrivals: Optional[Sequence[float]] = None,
        max_time: float = 1e9,
    ):
        """Open-loop *service* run: drive a
        :class:`~repro.service.spec.ServiceSpec` arrival stream against
        this cluster and return its
        :class:`~repro.service.metrics.ServiceReport` (lazy import: the
        service layer sits above this module)."""
        from ..service.run import serve as _serve

        return _serve(
            self,
            service,
            scale=scale,
            seed=seed,
            scenario=scenario,
            background=background,
            bg_arrivals=bg_arrivals,
            max_time=max_time,
        )

    def inject_faults(
        self, schedule, *, seed: int = 0, interval: float = 1.0, tracer=None
    ):
        """Attach a started :class:`~repro.faults.FaultInjector` for
        ``schedule``; faults fire as the next run advances the clock."""
        from ..faults.injector import FaultInjector

        injector = FaultInjector(
            self.engine,
            self.agents,
            self.scheduler,
            self.containers,
            self.metrics,
            schedule,
            seed=seed,
            interval=interval,
            tracer=tracer,
        )
        injector.start()
        self.injectors.append(injector)
        return injector

    def node_traffic(self) -> dict[str, int]:
        return MetricsRegistry.node_traffic(self.topology.nodes)

    def _sample_insight(self, now: float) -> None:
        """Tier time-series sample on the daemon tick (insight plane).

        Captures, per node: per-tier occupancy and free bytes, the
        temperature-distribution quantiles over all mapped chunks, and
        the latency-weighted slow-tier stall proxy (resident-byte share
        weighted by each tier's access-latency excess over DRAM).
        """
        ins = _insight.active()
        if not ins.enabled:
            return
        for agent in self.agents:
            mem = agent.memory
            occ = np.array(
                [mem.used(TierKind(t)) for t in range(NUM_TIERS)], dtype=np.int64
            )
            free = np.array(
                [mem.free(TierKind(t)) for t in range(NUM_TIERS)], dtype=np.int64
            )
            total = int(occ.sum())
            stall = (
                float((occ * self._stall_weights).sum()) / total if total else 0.0
            )
            temps = [
                ps.temperature[ps.tier != UNMAPPED]
                for ps in mem.pagesets()
            ]
            temps = [t for t in temps if t.size]
            if temps:
                flat = np.concatenate(temps).astype(np.float64, copy=False)
                temp_q = np.quantile(flat, _insight.TEMP_QUANTILES)
            else:
                temp_q = np.zeros(len(_insight.TEMP_QUANTILES), dtype=np.float64)
            ins.sample(now, mem.node_id, occ, free, stall, temp_q)

    def summary(self) -> str:
        """One-paragraph human description of the wired cluster."""
        from ..util.units import bytes_to_human

        node = self.topology.node(0)
        tiers = ", ".join(
            f"{TierKind(t).name} {bytes_to_human(node.capacity(TierKind(t)))}"
            for t in range(4)
            if node.capacity(TierKind(t)) > 0
        )
        policy = self.agents[0].policy.name
        return (
            f"{self.name}: {self.config.n_nodes} node(s) x "
            f"{self.config.cores_per_node} cores, {tiers}; policy={policy}; "
            f"chunk={bytes_to_human(self.config.chunk_size)}; "
            f"image staging={'on' if self.config.stage_images else 'off'}"
        )

    def export_telemetry(self) -> None:
        """Snapshot this run's metrics into the active telemetry context:
        outcome counters, fault stats, node traffic gauges, and per-task
        latency samples (histograms → p50/p95/p99 in the exports).

        Idempotent per environment; a no-op when telemetry is disabled.
        """
        if self._telemetry_exported or not obs.enabled():
            return
        self._telemetry_exported = True
        env = self.name
        m = self.metrics
        obs.counter("env.tasks_completed", len(m.completed()), env=env)
        obs.counter("env.tasks_failed", len(m.failed()), env=env)
        obs.counter("env.oom_kills", m.total_oom_kills(), env=env)
        obs.counter("env.retries", m.total_retries(), env=env)
        majors, minors = m.total_faults()
        obs.counter("env.major_faults", majors, env=env)
        obs.counter("env.minor_faults", minors, env=env)
        f = m.faults
        for kind, count in sorted(f.injected.items()):
            obs.counter("faults.injected", count, env=env, kind=kind)
        if f.tasks_interrupted:
            obs.counter("faults.tasks_interrupted", f.tasks_interrupted, env=env)
        if f.job_requeues:
            obs.counter("faults.job_requeues", f.job_requeues, env=env)
        if f.tier_evacuations:
            obs.counter("faults.tier_evacuations", f.tier_evacuations, env=env)
        for name, value in self.node_traffic().items():
            obs.counter(f"traffic.{name}", value, env=env)
        if m.completed():
            obs.gauge("env.makespan_s", m.makespan(), env=env)
            for metric in MetricsRegistry.LATENCY_METRICS:
                for sample in m.latency_samples(metric):
                    obs.observe(metric, sample)

    def stop(self) -> None:
        self.export_telemetry()
        for agent in self.agents:
            agent.stop()
        for injector in self.injectors:
            injector.stop()


def make_environment(
    kind: "EnvKind | ScenarioSpec",
    *,
    n_nodes: int = 1,
    dram_capacity: int = 0,
    pmem_capacity: int = 0,
    cxl_capacity: int = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cores_per_node: int = 64,
    cxl_fraction: Optional[float] = None,
    policy_factory: Optional[Callable[[dict[TierKind, TierSpec]], MemoryPolicy]] = None,
    daemon_interval: float = 1.0,
    validate_invariants: bool = False,
    rate_config: Optional[RateModelConfig] = None,
) -> Environment:
    """Convenience factory used throughout the experiments.

    Accepts either an :class:`EnvKind` plus explicit capacities, or a
    :class:`~repro.scenarios.ScenarioSpec` — in which case the scenario
    layer rebuilds the spec's workload, sizes the tiers against it, and
    every keyword here is ignored (the spec is the whole description).

    For TME/IMME, PMem/CXL capacities default to the paper's per-node
    ratios (2x DRAM of PMem, effectively-unlimited CXL) when not given
    (:func:`~repro.memory.tiers.scaled_tier_capacities`).
    """
    if not isinstance(kind, EnvKind):
        # a ScenarioSpec (lazy import: scenarios sits above this module)
        from ..scenarios.build import build_workload, environment_for_tasks

        tasks, _ = build_workload(kind.workload, kind.seed)
        return environment_for_tasks(kind, tasks, policy_factory=policy_factory)
    require(dram_capacity > 0, "dram_capacity is required when kind is an EnvKind")
    dram_capacity, pmem_capacity, cxl_capacity = scaled_tier_capacities(
        tiered=kind in (EnvKind.TME, EnvKind.IMME),
        chunk_size=chunk_size,
        dram_per_node=dram_capacity,
        pmem_capacity=pmem_capacity,
        cxl_capacity=cxl_capacity,
        floor_chunks=0,  # explicit capacities are taken as given
    )
    config = EnvironmentConfig(
        kind=kind,
        n_nodes=n_nodes,
        cores_per_node=cores_per_node,
        dram_capacity=dram_capacity,
        pmem_capacity=pmem_capacity,
        cxl_capacity=cxl_capacity,
        chunk_size=chunk_size,
        cxl_fraction=cxl_fraction,
        policy_factory=policy_factory,
        stage_images=(kind is EnvKind.IMME),
        daemon_interval=daemon_interval,
        validate_invariants=validate_invariants,
        rate_config=rate_config if rate_config is not None else RateModelConfig(),
    )
    return Environment(config)
