"""JSON (de)serialization of workloads and workflows.

Lets users define task specs and DAGs in version-controlled JSON instead
of Python — the usual interchange a workflow team wants — with exact
round-tripping of patterns, phases, flags, dynamic requests, shared
inputs, and memory limits.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any

from ..core.flags import parse_flags
from ..util.errors import WorkflowError
from .dag import Workflow
from .patterns import (
    AccessPattern,
    DriftingHotSpotPattern,
    HotColdPattern,
    PermutedPattern,
    StreamingPattern,
    UniformPattern,
    ZipfPattern,
)
from .task import DynamicRequest, SharedInput, TaskPhase, TaskSpec, WorkloadClass

__all__ = [
    "pattern_to_dict",
    "pattern_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "workflow_to_dict",
    "workflow_from_dict",
    "dump_workflow",
    "load_workflow",
    "dump_specs",
    "load_specs",
]

_PATTERN_TYPES: dict[str, type] = {
    "hot-cold": HotColdPattern,
    "zipf": ZipfPattern,
    "streaming": StreamingPattern,
    "uniform": UniformPattern,
    "drifting-hotspot": DriftingHotSpotPattern,
}


def pattern_to_dict(pattern: AccessPattern) -> dict[str, Any]:
    if isinstance(pattern, PermutedPattern):
        return {
            "type": "permuted",
            "seed": pattern.seed,
            "inner": pattern_to_dict(pattern.inner),
        }
    for name, cls in _PATTERN_TYPES.items():
        if type(pattern) is cls:
            return {"type": name, **asdict(pattern)}
    raise WorkflowError(f"cannot serialize pattern type {type(pattern).__name__}")


def pattern_from_dict(data: dict[str, Any]) -> AccessPattern:
    data = dict(data)
    kind = data.pop("type", None)
    if kind == "permuted":
        return PermutedPattern(pattern_from_dict(data["inner"]), seed=data["seed"])
    cls = _PATTERN_TYPES.get(kind)
    if cls is None:
        raise WorkflowError(f"unknown pattern type {kind!r}")
    return cls(**data)


def _phase_to_dict(phase: TaskPhase) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": phase.name,
        "base_time": phase.base_time,
        "compute_frac": phase.compute_frac,
        "lat_frac": phase.lat_frac,
        "bw_frac": phase.bw_frac,
        "demand_bandwidth": phase.demand_bandwidth,
        "pattern": pattern_to_dict(phase.pattern),
        "touched_fraction": phase.touched_fraction,
    }
    if phase.allocate is not None:
        out["allocate"] = {
            "nbytes": phase.allocate.nbytes,
            "flags": phase.allocate.flags.label,
        }
    if phase.release_region is not None:
        out["release_region"] = phase.release_region
    return out


def _phase_from_dict(data: dict[str, Any]) -> TaskPhase:
    data = dict(data)
    data["pattern"] = pattern_from_dict(data["pattern"])
    alloc = data.pop("allocate", None)
    if alloc is not None:
        data["allocate"] = DynamicRequest(alloc["nbytes"], parse_flags(alloc["flags"]))
    return TaskPhase(**data)


def spec_to_dict(spec: TaskSpec) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": spec.name,
        "wclass": spec.wclass.name,
        "footprint": spec.footprint,
        "wss": spec.wss,
        "phases": [_phase_to_dict(p) for p in spec.phases],
        "flags": spec.flags.label,
        "image": spec.image,
        "cores": spec.cores,
        "dynamic_headroom": spec.dynamic_headroom,
    }
    if spec.shared_inputs:
        out["shared_inputs"] = [
            {"name": s.name, "nbytes": s.nbytes} for s in spec.shared_inputs
        ]
    if spec.memory_limit is not None:
        out["memory_limit"] = spec.memory_limit
    return out


def spec_from_dict(data: dict[str, Any]) -> TaskSpec:
    data = dict(data)
    data["wclass"] = WorkloadClass[data["wclass"]]
    data["phases"] = tuple(_phase_from_dict(p) for p in data["phases"])
    data["flags"] = parse_flags(data.get("flags", "NONE"))
    data["shared_inputs"] = tuple(
        SharedInput(s["name"], s["nbytes"]) for s in data.pop("shared_inputs", [])
    )
    return TaskSpec(**data)


def workflow_to_dict(wf: Workflow) -> dict[str, Any]:
    return {
        "name": wf.name,
        "tasks": [spec_to_dict(wf.spec(tid)) for tid in wf.topological_order()],
        "edges": sorted(wf.graph.edges()),
    }


def workflow_from_dict(data: dict[str, Any]) -> Workflow:
    wf = Workflow(data["name"])
    for spec_data in data["tasks"]:
        wf.add_task(spec_from_dict(spec_data))
    for producer, consumer in data.get("edges", []):
        wf.add_dependency(producer, consumer)
    wf.validate()
    return wf


# --------------------------------------------------------------------------- #
# string / file front-ends
# --------------------------------------------------------------------------- #

def dump_workflow(wf: Workflow, indent: int = 2) -> str:
    return json.dumps(workflow_to_dict(wf), indent=indent)


def load_workflow(text: str) -> Workflow:
    return workflow_from_dict(json.loads(text))


def dump_specs(specs: "list[TaskSpec]", indent: int = 2) -> str:
    return json.dumps([spec_to_dict(s) for s in specs], indent=indent)


def load_specs(text: str) -> "list[TaskSpec]":
    return [spec_from_dict(d) for d in json.loads(text)]
