"""Memory access-pattern models.

Each pattern turns "this phase touches its footprint like *that*" into a
per-chunk access-probability vector (see
:meth:`repro.memory.pageset.PageSet.set_access_weights`).  The four paper
workloads compose these: BERT training is a hot model/batch set over a
streamed dataset, Spark ETL is a small intensely-hot set, Zip is a moving
sequential window, BFS is a shallow-skew sweep over a huge footprint.

By convention weights are generated **hot-first** (descending with chunk
index) unless a permutation is requested: allocation policies may then
align "first chunks → fastest tier" without peeking at future accesses,
and the movement policies still get exercised by the permuted variants.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..util.validation import check_fraction, check_positive

__all__ = [
    "AccessPattern",
    "HotColdPattern",
    "ZipfPattern",
    "StreamingPattern",
    "UniformPattern",
    "DriftingHotSpotPattern",
    "hot_cold_weights",
    "zipf_weights",
    "streaming_weights",
]


def hot_cold_weights(n: int, hot_fraction: float, hot_share: float) -> np.ndarray:
    """Weights where the first ``hot_fraction`` of chunks absorb
    ``hot_share`` of all accesses (e.g. 512 MB getting 80 % of accesses in
    a 40 GB allocation, the paper's §III-C2 heuristic example)."""
    check_positive(n, "n")
    check_fraction(hot_fraction, "hot_fraction")
    check_fraction(hot_share, "hot_share")
    n_hot = max(1, int(round(n * hot_fraction))) if hot_fraction > 0 else 0
    n_hot = min(n_hot, n)
    w = np.zeros(n, dtype=np.float64)
    if n_hot == 0:
        w[:] = 1.0 / n
        return w
    if n_hot == n:
        w[:] = 1.0 / n
        return w
    w[:n_hot] = hot_share / n_hot
    w[n_hot:] = (1.0 - hot_share) / (n - n_hot)
    return w


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Zipf(``alpha``) rank-frequency weights over ``n`` chunks, hot-first."""
    check_positive(n, "n")
    check_positive(alpha, "alpha")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-alpha)
    return w / w.sum()


def streaming_weights(n: int, window_frac: float, position: float) -> np.ndarray:
    """A sequential window of ``window_frac`` of the footprint centred at
    relative ``position`` in [0, 1) (Zip-style streaming compression)."""
    check_positive(n, "n")
    check_fraction(window_frac, "window_frac")
    check_fraction(position, "position")
    width = max(1, int(round(n * max(window_frac, 1.0 / n))))
    start = int(round(position * n)) % n
    w = np.zeros(n, dtype=np.float64)
    idx = (start + np.arange(width)) % n
    w[idx] = 1.0 / width
    return w


class AccessPattern(ABC):
    """Produces the access-weight vector for a phase over ``n`` chunks."""

    @abstractmethod
    def weights(
        self, n: int, phase_index: int = 0, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Return a length-``n`` probability vector (sums to 1)."""

    def permuted(self, seed: int) -> "PermutedPattern":
        """Wrap this pattern so hot chunks land at random indices —
        exercises movement policies that cannot rely on hot-first layout."""
        return PermutedPattern(self, seed)


@dataclass(frozen=True)
class HotColdPattern(AccessPattern):
    """``hot_share`` of accesses hit the first ``hot_fraction`` of chunks."""

    hot_fraction: float = 0.1
    hot_share: float = 0.9

    def weights(self, n, phase_index=0, rng=None):
        return hot_cold_weights(n, self.hot_fraction, self.hot_share)


@dataclass(frozen=True)
class ZipfPattern(AccessPattern):
    """Zipf-distributed chunk popularity (graph/BFS-style skew)."""

    alpha: float = 0.9

    def weights(self, n, phase_index=0, rng=None):
        return zipf_weights(n, self.alpha)


@dataclass(frozen=True)
class StreamingPattern(AccessPattern):
    """Sequential window advancing one window-width per phase index."""

    window_frac: float = 0.1

    def weights(self, n, phase_index=0, rng=None):
        pos = (phase_index * self.window_frac) % 1.0
        return streaming_weights(n, self.window_frac, pos)


@dataclass(frozen=True)
class UniformPattern(AccessPattern):
    """Every chunk equally likely (worst case for any placement policy)."""

    def weights(self, n, phase_index=0, rng=None):
        check_positive(n, "n")
        return np.full(n, 1.0 / n, dtype=np.float64)


@dataclass(frozen=True)
class DriftingHotSpotPattern(AccessPattern):
    """A Gaussian hot spot whose centre drifts across the footprint.

    Models iterative solvers and time-stepped simulations whose working
    set slides through a large state array: the hot region is genuinely
    hot (unlike streaming's uniform window) but *moves*, forcing movement
    policies to keep re-identifying it.

    Parameters
    ----------
    width_frac:
        Standard deviation of the hot spot as a fraction of the footprint.
    drift_per_phase:
        How far the centre moves per phase index (fraction of footprint,
        wraps around).
    """

    width_frac: float = 0.10
    drift_per_phase: float = 0.20

    def __post_init__(self) -> None:
        check_fraction(self.width_frac, "width_frac")
        check_fraction(self.drift_per_phase, "drift_per_phase")

    def weights(self, n, phase_index=0, rng=None):
        check_positive(n, "n")
        centre = (phase_index * self.drift_per_phase) % 1.0
        width = max(self.width_frac, 1.0 / n)
        pos = (np.arange(n, dtype=np.float64) + 0.5) / n
        # circular distance so the spot wraps like the streaming window
        dist = np.abs(pos - centre)
        dist = np.minimum(dist, 1.0 - dist)
        w = np.exp(-0.5 * (dist / width) ** 2)
        return w / w.sum()


class PermutedPattern(AccessPattern):
    """Deterministic random permutation of an inner pattern's weights."""

    def __init__(self, inner: AccessPattern, seed: int) -> None:
        self.inner = inner
        self.seed = int(seed)

    def weights(self, n, phase_index=0, rng=None):
        base = self.inner.weights(n, phase_index, rng)
        perm = np.random.default_rng(self.seed).permutation(n)
        return base[perm]

    def __repr__(self) -> str:  # pragma: no cover
        return f"PermutedPattern({self.inner!r}, seed={self.seed})"
