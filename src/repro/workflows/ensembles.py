"""Ensemble construction: many realizations of a task with varied inputs.

HPC ensembles run "multiple instances of a task where each member
represents a different realization ... using different input parameters"
(§I).  :func:`make_ensemble` jitters the duration and footprint of a base
spec deterministically (per-member RNG streams), and
:func:`paper_batch` builds the exact instance mixes of Figs. 10 and 11.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Optional, Sequence

from ..util.rng import RngFactory
from ..util.validation import check_fraction, check_positive, require
from .library import _BUILDERS, PAPER_MIX_FIG10
from .task import TaskPhase, TaskSpec, WorkloadClass

__all__ = ["make_ensemble", "paper_batch", "scaled_mix"]


def _jitter_phase(phase: TaskPhase, factor: float) -> TaskPhase:
    return replace(phase, base_time=phase.base_time * factor)


def make_ensemble(
    base: TaskSpec,
    n: int,
    *,
    rng_factory: Optional[RngFactory] = None,
    time_jitter: float = 0.10,
    size_jitter: float = 0.10,
) -> list[TaskSpec]:
    """``n`` realizations of ``base`` with ±jitter on duration and footprint.

    Jitter is multiplicative and uniform in ``[1-j, 1+j]``; member ``i`` of
    an ensemble is identical across runs with the same factory seed.
    """
    check_positive(n, "n")
    check_fraction(time_jitter, "time_jitter")
    check_fraction(size_jitter, "size_jitter")
    factory = rng_factory if rng_factory is not None else RngFactory(0)
    members: list[TaskSpec] = []
    for i in range(n):
        rng = factory.stream(f"ensemble.{base.name}.{i}")
        tf = 1.0 + time_jitter * float(rng.uniform(-1.0, 1.0))
        sf = 1.0 + size_jitter * float(rng.uniform(-1.0, 1.0))
        member = base.scaled(sf)
        member = replace(
            member,
            name=f"{base.name}-{i}",
            phases=tuple(_jitter_phase(p, tf) for p in member.phases),
        )
        members.append(member)
    return members


def scaled_mix(mix: Mapping[WorkloadClass, int], total: int) -> dict[WorkloadClass, int]:
    """Shrink an instance mix to ``total`` instances, preserving ratios.

    Used to run Fig. 10's 2000-instance mix at laptop scale; every class
    keeps at least one instance.
    """
    check_positive(total, "total")
    grand = sum(mix.values())
    require(grand > 0, "mix must contain at least one instance")
    out = {cls: max(1, round(total * count / grand)) for cls, count in mix.items() if count > 0}
    return out


def paper_batch(
    total_instances: int,
    *,
    scale: float = 1.0,
    mix: Optional[Mapping[WorkloadClass, int]] = None,
    rng_factory: Optional[RngFactory] = None,
    classes: Sequence[WorkloadClass] = (
        WorkloadClass.DL,
        WorkloadClass.DM,
        WorkloadClass.DC,
        WorkloadClass.SC,
    ),
) -> list[TaskSpec]:
    """Build the Fig. 10/11 batch: ``total_instances`` tasks in the paper's
    150/1100/150/600 DL/DM/DC/SC ratio (or a custom ``mix``)."""
    base_mix = dict(mix) if mix is not None else dict(PAPER_MIX_FIG10)
    base_mix = {cls: base_mix.get(cls, 0) for cls in classes if base_mix.get(cls, 0) > 0}
    counts = scaled_mix(base_mix, total_instances)
    factory = rng_factory if rng_factory is not None else RngFactory(0)
    batch: list[TaskSpec] = []
    for cls, count in counts.items():
        base = _BUILDERS[cls](name=cls.name.lower(), scale=scale)
        batch.extend(make_ensemble(base, count, rng_factory=factory))
    return batch
