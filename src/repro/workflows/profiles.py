"""Human-readable workload profiles.

:func:`describe` renders what the simulator will *see* of a task spec —
per-phase sensitivity, expected placement pressure, flag hints — the
first thing to check when authoring a new workload (docs/workloads.md).
"""

from __future__ import annotations

from ..metrics.report import format_table
from ..util.units import bytes_to_human
from .task import TaskSpec

__all__ = ["describe", "expected_touched_bytes"]


def expected_touched_bytes(spec: TaskSpec) -> int:
    """Upper bound on bytes the task ever touches (max phase coverage)."""
    touched = max(p.touched_fraction for p in spec.phases)
    return int(spec.footprint * touched)


def describe(spec: TaskSpec) -> str:
    """A printable profile of one task spec."""
    header = (
        f"{spec.name} [{spec.wclass.name}]  footprint {bytes_to_human(spec.footprint)}"
        f", wss {bytes_to_human(spec.wss)}, flags {spec.effective_flags.label}, "
        f"{spec.cores} core(s), image {spec.image}"
    )
    extras = []
    if spec.memory_limit is not None:
        extras.append(f"memory.max {bytes_to_human(spec.memory_limit)}")
    if spec.shared_inputs:
        shared = ", ".join(
            f"{s.name} ({bytes_to_human(s.nbytes)})" for s in spec.shared_inputs
        )
        extras.append(f"shared inputs: {shared}")
    if spec.max_footprint > spec.footprint:
        extras.append(
            f"max footprint {bytes_to_human(spec.max_footprint)} (dynamic growth)"
        )
    rows = []
    for i, p in enumerate(spec.phases):
        dyn = ""
        if p.allocate is not None:
            dyn = f"+{bytes_to_human(p.allocate.nbytes)} {p.allocate.flags.label}"
        if p.release_region is not None:
            dyn = (dyn + " " if dyn else "") + f"free r{p.release_region}"
        rows.append(
            [
                i,
                p.name,
                p.base_time,
                f"{p.compute_frac:.2f}/{p.lat_frac:.2f}/{p.bw_frac:.2f}",
                p.demand_bandwidth / 1e9,
                f"{100 * p.touched_fraction:.0f}%",
                type(p.pattern).__name__.replace("Pattern", ""),
                dyn,
            ]
        )
    table = format_table(
        ["#", "phase", "base (s)", "c/l/b", "bw (GB/s)", "touched", "pattern", "dynamic"],
        rows,
    )
    lines = [header]
    lines.extend(f"  {e}" for e in extras)
    lines.append(table)
    lines.append(
        f"ideal duration {spec.ideal_duration:.1f}s; touches up to "
        f"{bytes_to_human(expected_touched_bytes(spec))}"
    )
    return "\n".join(lines)
