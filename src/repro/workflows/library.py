"""The paper's four evaluation workloads (§IV-C2), as parameterised specs.

* **DL** — BERT fine-tuning over IMDB for 5 epochs: data- and
  bandwidth-intensive; a hot model/optimizer set over a streamed dataset.
* **DM** — Spark ETL over US-census data computing a diversity index:
  latency-sensitive and short-lived.
* **DC** — Zip compression of a 50 GB input set: compute- and
  data-intensive sequential streaming.
* **SC** — BFS over a large binary tree with igraph: capacity-intensive
  with shallow-skew access.

Durations are ideal-environment baselines; memory sizes default to the
paper's (tens of GiB) and every builder takes a ``scale`` so experiments
can run laptop-sized instances with identical *shape* (the environments
scale node capacities by the same factor, so all capacity ratios — the
thing the policies react to — are preserved).
"""

from __future__ import annotations

from dataclasses import replace

from ..core.flags import MemFlag
from ..util.units import GBps, GiB
from ..util.validation import check_positive, require
from .patterns import HotColdPattern, StreamingPattern, ZipfPattern
from .task import DynamicRequest, SharedInput, TaskPhase, TaskSpec, WorkloadClass

__all__ = [
    "deep_learning_task",
    "data_mining_task",
    "data_compression_task",
    "scientific_task",
    "checkpointing_task",
    "with_shared_input",
    "paper_workload_suite",
    "PAPER_MIX_FIG10",
]

#: Fig. 10's 2000-instance mix: 150 DL, 1100 DM, 150 DC, 600 SC.
PAPER_MIX_FIG10: dict[WorkloadClass, int] = {
    WorkloadClass.DL: 150,
    WorkloadClass.DM: 1100,
    WorkloadClass.DC: 150,
    WorkloadClass.SC: 600,
}


def deep_learning_task(name: str = "dl", scale: float = 1.0, epochs: int = 5) -> TaskSpec:
    """BERT/IMDB training: load the dataset, then ``epochs`` passes.

    The first ~120 s touch only a quarter to a half of the allocation —
    reproducing the §II-C observation that 55–80 % of BERT's memory is
    idle early on (the cold-page experiment measures exactly this).
    """
    check_positive(scale, "scale")
    footprint = max(1, int(GiB(40) * scale))
    load = TaskPhase(
        name="load-dataset",
        base_time=20.0,
        compute_frac=0.20,
        lat_frac=0.10,
        bw_frac=0.70,
        demand_bandwidth=GBps(8.0),
        pattern=StreamingPattern(window_frac=0.25),
        touched_fraction=0.25,
    )
    epochs_phases = tuple(
        TaskPhase(
            name=f"epoch-{i}",
            base_time=60.0,
            compute_frac=0.35,
            lat_frac=0.10,
            bw_frac=0.55,
            demand_bandwidth=GBps(20.0),
            pattern=HotColdPattern(hot_fraction=0.15, hot_share=0.70),
            touched_fraction=0.45,
        )
        for i in range(1, epochs + 1)
    )
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.DL,
        footprint=footprint,
        wss=int(footprint * 0.60),
        phases=(load,) + epochs_phases,
        flags=MemFlag.BW | MemFlag.CAP,
        image="dl-bert.sif",
        cores=4,
    )


def data_mining_task(name: str = "dm", scale: float = 1.0) -> TaskSpec:
    """Spark ETL over census data: short-lived and latency-sensitive."""
    check_positive(scale, "scale")
    footprint = max(1, int(GiB(8) * scale))
    phases = (
        TaskPhase(
            name="load",
            base_time=3.0,
            compute_frac=0.30,
            lat_frac=0.20,
            bw_frac=0.50,
            demand_bandwidth=GBps(4.0),
            pattern=StreamingPattern(window_frac=0.5),
            touched_fraction=0.60,
        ),
        TaskPhase(
            name="etl",
            base_time=10.0,
            compute_frac=0.30,
            lat_frac=0.65,
            bw_frac=0.05,
            demand_bandwidth=GBps(2.0),
            pattern=HotColdPattern(hot_fraction=0.40, hot_share=0.85),
            touched_fraction=0.90,
        ),
        TaskPhase(
            name="diversity-index",
            base_time=2.0,
            compute_frac=0.50,
            lat_frac=0.45,
            bw_frac=0.05,
            demand_bandwidth=GBps(1.0),
            pattern=HotColdPattern(hot_fraction=0.25, hot_share=0.90),
            touched_fraction=0.40,
        ),
    )
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.DM,
        footprint=footprint,
        wss=int(footprint * 0.75),
        phases=phases,
        flags=MemFlag.LAT | MemFlag.SHL,
        image="dm-spark.sif",
        cores=2,
    )


def data_compression_task(name: str = "dc", scale: float = 1.0, passes: int = 4) -> TaskSpec:
    """Zip compression over a 50 GB input: streaming compute."""
    check_positive(scale, "scale")
    footprint = max(1, int(GiB(50) * scale))
    phases = tuple(
        TaskPhase(
            name=f"compress-{i}",
            base_time=25.0,
            compute_frac=0.55,
            lat_frac=0.05,
            bw_frac=0.40,
            demand_bandwidth=GBps(6.0),
            pattern=StreamingPattern(window_frac=1.0 / passes),
            touched_fraction=1.0 / passes,
        )
        for i in range(passes)
    )
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.DC,
        footprint=footprint,
        wss=int(footprint * 0.30),
        phases=phases,
        flags=MemFlag.BW | MemFlag.CAP,
        image="dc-zip.sif",
        cores=2,
    )


def scientific_task(name: str = "sc", scale: float = 1.0, request_extra: bool = False) -> TaskSpec:
    """BFS over a binary tree (igraph): capacity-intensive.

    With ``request_extra`` the traversal phase issues a mid-run
    ``allocate_TM(CAP)`` for frontier storage — the paper's dynamic
    memory-expansion scenario ("workflows that require additional memory
    continue to execute by expanding their footprint on the tiered
    memory", §IV-D1).
    """
    check_positive(scale, "scale")
    footprint = max(1, int(GiB(64) * scale))
    extra = DynamicRequest(max(1, int(footprint * 0.25)), MemFlag.CAP) if request_extra else None
    phases = (
        TaskPhase(
            name="build-tree",
            base_time=30.0,
            compute_frac=0.40,
            lat_frac=0.10,
            bw_frac=0.50,
            demand_bandwidth=GBps(5.0),
            pattern=StreamingPattern(window_frac=0.34),
            touched_fraction=1.0,
        ),
        TaskPhase(
            name="bfs",
            base_time=90.0,
            compute_frac=0.55,
            lat_frac=0.35,
            bw_frac=0.10,
            demand_bandwidth=GBps(3.0),
            pattern=ZipfPattern(alpha=0.7),
            touched_fraction=0.95,
            allocate=extra,
        ),
    )
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.SC,
        footprint=footprint,
        wss=int(footprint * 0.75),
        phases=phases,
        flags=MemFlag.CAP,
        image="sc-igraph.sif",
        cores=2,
    )


def checkpointing_task(
    name: str = "ckpt", scale: float = 1.0, checkpoints: int = 3
) -> TaskSpec:
    """A checkpointing workflow (§II-A pattern 5): compute phases
    interleaved with CAP-flagged checkpoint bursts.

    Each checkpoint phase ``allocate_TM``s a buffer with the CAP flag (the
    paper's example of "data structures that need to be retained"), writes
    it out, and the following compute phase frees it again — exercising
    the dynamic allocate/free path end-to-end.
    """
    check_positive(scale, "scale")
    require(checkpoints >= 1, "need at least one checkpoint")
    footprint = max(1, int(GiB(16) * scale))
    ckpt_bytes = max(1, int(footprint * 0.25))
    phases: list[TaskPhase] = []
    for i in range(checkpoints):
        phases.append(
            TaskPhase(
                name=f"compute-{i}",
                base_time=20.0,
                compute_frac=0.60,
                lat_frac=0.25,
                bw_frac=0.15,
                demand_bandwidth=GBps(3.0),
                pattern=HotColdPattern(hot_fraction=0.2, hot_share=0.8),
                touched_fraction=0.8,
                # free the previous checkpoint buffer (region ids are
                # assigned in allocation order: 0 is the initial footprint,
                # so checkpoint k's buffer is region k+1)
                release_region=i if i >= 1 else None,
            )
        )
        phases.append(
            TaskPhase(
                name=f"checkpoint-{i}",
                base_time=5.0,
                compute_frac=0.20,
                lat_frac=0.05,
                bw_frac=0.75,
                demand_bandwidth=GBps(8.0),
                pattern=StreamingPattern(window_frac=0.5),
                touched_fraction=0.5,
                allocate=DynamicRequest(ckpt_bytes, MemFlag.CAP),
            )
        )
    return TaskSpec(
        name=name,
        wclass=WorkloadClass.SC,
        footprint=footprint,
        wss=int(footprint * 0.5),
        phases=tuple(phases),
        flags=MemFlag.CAP,
        image="sc-igraph.sif",
        cores=2,
        # checkpoints are freed before the next is taken, but size the
        # address space for the worst case anyway
        dynamic_headroom=ckpt_bytes,
    )


def with_shared_input(spec: TaskSpec, name: str, nbytes: int) -> TaskSpec:
    """Attach a shared read-only input region to a task spec (§III-C5).

    Every instance referencing the same ``name`` shares one staged copy on
    an IMME cluster; elsewhere each instance carries a private copy.
    """
    check_positive(nbytes, "nbytes")
    return replace(spec, shared_inputs=spec.shared_inputs + (SharedInput(name, int(nbytes)),))


_BUILDERS = {
    WorkloadClass.DL: deep_learning_task,
    WorkloadClass.DM: data_mining_task,
    WorkloadClass.DC: data_compression_task,
    WorkloadClass.SC: scientific_task,
}


def paper_workload_suite(scale: float = 1.0) -> dict[WorkloadClass, TaskSpec]:
    """All four studied workflows at ``scale``, keyed by class."""
    return {
        cls: builder(name=cls.name.lower(), scale=scale)
        for cls, builder in _BUILDERS.items()
    }
