"""Workflow substrate: access patterns, task specs, DAGs, ensembles, and
the paper's four evaluation workloads."""

from .arrivals import burst_arrivals, poisson_arrivals, uniform_arrivals
from .dag import Workflow, chain_workflow, diamond_workflow, fan_out_workflow
from .ensembles import make_ensemble, paper_batch, scaled_mix
from .library import (
    PAPER_MIX_FIG10,
    checkpointing_task,
    data_compression_task,
    data_mining_task,
    deep_learning_task,
    paper_workload_suite,
    scientific_task,
    with_shared_input,
)
from .profiles import describe, expected_touched_bytes
from .serialization import (
    dump_specs,
    dump_workflow,
    load_specs,
    load_workflow,
    spec_from_dict,
    spec_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)
from .patterns import (
    AccessPattern,
    DriftingHotSpotPattern,
    HotColdPattern,
    StreamingPattern,
    UniformPattern,
    ZipfPattern,
    hot_cold_weights,
    streaming_weights,
    zipf_weights,
)
from .task import DynamicRequest, SharedInput, TaskPhase, TaskSpec, WorkloadClass

__all__ = [
    "burst_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
    "Workflow",
    "chain_workflow",
    "diamond_workflow",
    "fan_out_workflow",
    "make_ensemble",
    "paper_batch",
    "scaled_mix",
    "PAPER_MIX_FIG10",
    "data_compression_task",
    "data_mining_task",
    "deep_learning_task",
    "paper_workload_suite",
    "scientific_task",
    "AccessPattern",
    "DriftingHotSpotPattern",
    "HotColdPattern",
    "StreamingPattern",
    "UniformPattern",
    "ZipfPattern",
    "hot_cold_weights",
    "streaming_weights",
    "zipf_weights",
    "DynamicRequest",
    "SharedInput",
    "checkpointing_task",
    "with_shared_input",
    "TaskPhase",
    "TaskSpec",
    "WorkloadClass",
    "dump_specs",
    "dump_workflow",
    "load_specs",
    "load_workflow",
    "spec_from_dict",
    "spec_to_dict",
    "workflow_from_dict",
    "workflow_to_dict",
    "describe",
    "expected_touched_bytes",
]
