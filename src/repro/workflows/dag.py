"""Workflow DAGs.

HPC jobs arrive as workflows: DAGs of tasks where edges are
producer→consumer dependencies (§I).  :class:`Workflow` wraps a
:class:`networkx.DiGraph` whose nodes are task ids and carry
:class:`~repro.workflows.task.TaskSpec` payloads, with the validation and
traversal helpers the WMS planner needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import networkx as nx

from ..util.errors import WorkflowError
from .task import TaskSpec

__all__ = ["Workflow", "chain_workflow", "fan_out_workflow", "diamond_workflow"]


class Workflow:
    """A named DAG of tasks.

    Examples
    --------
    >>> wf = Workflow("demo")
    >>> _ = wf.add_task(pre);  _ = wf.add_task(sim, after=[pre.name])
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph = nx.DiGraph()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_task(self, spec: TaskSpec, after: Iterable[str] = ()) -> str:
        """Add ``spec`` (keyed by its name), depending on tasks ``after``."""
        if spec.name in self.graph:
            raise WorkflowError(f"duplicate task {spec.name!r} in workflow {self.name!r}")
        self.graph.add_node(spec.name, spec=spec)
        for dep in after:
            if dep not in self.graph:
                raise WorkflowError(f"dependency {dep!r} not in workflow {self.name!r}")
            self.graph.add_edge(dep, spec.name)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_node(spec.name)
            raise WorkflowError(f"adding {spec.name!r} would create a cycle")
        return spec.name

    def add_dependency(self, producer: str, consumer: str) -> None:
        for t in (producer, consumer):
            if t not in self.graph:
                raise WorkflowError(f"unknown task {t!r}")
        self.graph.add_edge(producer, consumer)
        if not nx.is_directed_acyclic_graph(self.graph):
            self.graph.remove_edge(producer, consumer)
            raise WorkflowError(f"{producer!r}->{consumer!r} would create a cycle")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def spec(self, task_id: str) -> TaskSpec:
        try:
            return self.graph.nodes[task_id]["spec"]
        except KeyError:
            raise WorkflowError(f"unknown task {task_id!r} in workflow {self.name!r}") from None

    def tasks(self) -> Iterator[TaskSpec]:
        for tid in self.graph.nodes:
            yield self.graph.nodes[tid]["spec"]

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def __contains__(self, task_id: str) -> bool:
        return task_id in self.graph

    def dependencies(self, task_id: str) -> tuple[str, ...]:
        return tuple(self.graph.predecessors(task_id))

    def dependents(self, task_id: str) -> tuple[str, ...]:
        return tuple(self.graph.successors(task_id))

    def roots(self) -> tuple[str, ...]:
        return tuple(t for t in self.graph.nodes if self.graph.in_degree(t) == 0)

    def topological_order(self) -> list[str]:
        return list(nx.topological_sort(self.graph))

    def stages(self) -> list[list[str]]:
        """Antichain decomposition: tasks grouped by dependency depth —
        everything in a stage may run concurrently."""
        return [sorted(gen) for gen in nx.topological_generations(self.graph)]

    def critical_path_time(self) -> float:
        """Lower bound on makespan: longest ideal-duration path."""
        best: dict[str, float] = {}
        for tid in self.topological_order():
            spec = self.spec(tid)
            preds = self.dependencies(tid)
            start = max((best[p] for p in preds), default=0.0)
            best[tid] = start + spec.ideal_duration
        return max(best.values(), default=0.0)

    @property
    def total_footprint(self) -> int:
        return sum(s.footprint for s in self.tasks())

    def validate(self) -> None:
        if len(self) == 0:
            raise WorkflowError(f"workflow {self.name!r} is empty")
        if not nx.is_directed_acyclic_graph(self.graph):  # pragma: no cover - guarded above
            raise WorkflowError(f"workflow {self.name!r} has a cycle")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Workflow {self.name!r} tasks={len(self)} "
            f"edges={self.graph.number_of_edges()}>"
        )


# --------------------------------------------------------------------------- #
# shape helpers for tests / examples
# --------------------------------------------------------------------------- #

def chain_workflow(name: str, specs: Iterable[TaskSpec]) -> Workflow:
    """Linear pipeline: each task consumes its predecessor's output."""
    wf = Workflow(name)
    prev: Optional[str] = None
    for spec in specs:
        wf.add_task(spec, after=[prev] if prev else [])
        prev = spec.name
    wf.validate()
    return wf


def fan_out_workflow(name: str, source: TaskSpec, members: Iterable[TaskSpec]) -> Workflow:
    """One producer feeding an ensemble of parallel consumers."""
    wf = Workflow(name)
    wf.add_task(source)
    for spec in members:
        wf.add_task(spec, after=[source.name])
    wf.validate()
    return wf


def diamond_workflow(
    name: str, pre: TaskSpec, branches: Iterable[TaskSpec], post: TaskSpec
) -> Workflow:
    """Pre-process → parallel branches → post-process (the classic
    simulate/analyse shape from the paper's intro)."""
    wf = Workflow(name)
    wf.add_task(pre)
    branch_ids = [wf.add_task(spec, after=[pre.name]) for spec in branches]
    wf.add_task(post, after=branch_ids)
    wf.validate()
    return wf
