"""Task and phase specifications.

A *task* is one containerized workflow step (the paper's unit of
colocation: "hosting one workflow per container", §IV-A).  Its execution
behaviour is a sequence of :class:`TaskPhase` objects, each describing how
long the phase runs on an ideal all-DRAM node, how sensitive it is to
latency vs. bandwidth vs. pure compute, and how it touches memory.

Specs are pure data — execution lives in :mod:`repro.runtime`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..core.flags import MemFlag, normalize_flags
from ..util.units import GiB
from ..util.validation import check_fraction, check_non_negative, check_positive, require
from .patterns import AccessPattern, HotColdPattern

__all__ = ["WorkloadClass", "TaskPhase", "DynamicRequest", "SharedInput", "TaskSpec"]


class WorkloadClass(enum.Enum):
    """The paper's workflow taxonomy (§IV-C2)."""

    DL = "deep-learning"         # data + bandwidth-intensive (BERT training)
    DM = "data-mining"           # latency-sensitive, short-lived (Spark ETL)
    DC = "data-compression"      # compute + data-intensive (Zip, 50 GB)
    SC = "scientific-computing"  # capacity-intensive (igraph BFS)
    GENERIC = "generic"

    @property
    def default_flags(self) -> MemFlag:
        """The advisory flags each class passes through SLURM in the
        evaluation (the paper's flag substitution methodology, §IV-B)."""
        return {
            WorkloadClass.DL: MemFlag.BW | MemFlag.CAP,
            WorkloadClass.DM: MemFlag.LAT | MemFlag.SHL,
            WorkloadClass.DC: MemFlag.BW | MemFlag.CAP,
            WorkloadClass.SC: MemFlag.CAP,
            WorkloadClass.GENERIC: MemFlag.NONE,
        }[self]


@dataclass(frozen=True)
class DynamicRequest:
    """A mid-execution ``allocate_TM`` call issued at a phase boundary
    (§IV-B: randomly selected workflows "request additional memory during
    execution using our APIs")."""

    nbytes: int
    flags: MemFlag = MemFlag.NONE

    def __post_init__(self) -> None:
        check_positive(self.nbytes, "nbytes")


@dataclass(frozen=True)
class SharedInput:
    """Read-only data shared between workflows (§III-C5 strategy 1).

    On an IMME cluster the region is staged once in cluster-shared CXL and
    attached by every instance; elsewhere each task must hold a private
    copy, inflating its footprint — exactly the duplication the paper's
    shared-memory management removes.
    """

    name: str
    nbytes: int

    def __post_init__(self) -> None:
        check_positive(self.nbytes, "nbytes")


@dataclass(frozen=True)
class TaskPhase:
    """One execution phase of a task.

    Parameters
    ----------
    name:
        Human-readable phase label ("epoch-3", "scan").
    base_time:
        Duration in seconds with an all-DRAM, contention-free placement.
    compute_frac / lat_frac / bw_frac:
        How the phase's critical path divides between pure compute,
        latency-bound pointer chasing, and bandwidth-bound streaming.
        Must sum to 1; the rate model blends slowdown terms with them.
    demand_bandwidth:
        Aggregate memory throughput (bytes/s) the phase pushes when not
        stalled — its fair-share bandwidth demand.
    pattern:
        Access distribution over the mapped footprint during this phase.
    touched_fraction:
        Fraction of mapped chunks the phase actually visits (for fault
        accounting at phase start).
    allocate / release_region:
        Optional dynamic allocation executed when the phase begins, and/or
        a region id (from a previous phase's allocation) to free.
    """

    name: str
    base_time: float
    compute_frac: float
    lat_frac: float
    bw_frac: float
    demand_bandwidth: float = 0.0
    pattern: AccessPattern = field(default_factory=HotColdPattern)
    touched_fraction: float = 1.0
    allocate: Optional[DynamicRequest] = None
    release_region: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive(self.base_time, "base_time")
        check_fraction(self.compute_frac, "compute_frac")
        check_fraction(self.lat_frac, "lat_frac")
        check_fraction(self.bw_frac, "bw_frac")
        total = self.compute_frac + self.lat_frac + self.bw_frac
        require(abs(total - 1.0) < 1e-9, f"phase fractions must sum to 1, got {total}")
        check_non_negative(self.demand_bandwidth, "demand_bandwidth")
        check_fraction(self.touched_fraction, "touched_fraction")

    @property
    def ideal_time(self) -> float:
        return self.base_time


@dataclass(frozen=True)
class TaskSpec:
    """Static description of one containerized workflow task."""

    name: str
    wclass: WorkloadClass
    footprint: int
    wss: int
    phases: tuple[TaskPhase, ...]
    flags: MemFlag = MemFlag.NONE
    image: str = "default.sif"
    cores: int = 1
    #: extra headroom chunks for dynamic allocations, bytes
    dynamic_headroom: int = 0
    #: read-only inputs shared across instances (§III-C5 strategy 1)
    shared_inputs: tuple[SharedInput, ...] = ()
    #: fixed container memory allocation (cgroup ``memory.max``); ``None``
    #: leaves the container uncapped.  CXL expansion memory attached via
    #: the tiered-memory APIs is outside the cap (§II-B / §IV-D1).
    memory_limit: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive(self.footprint, "footprint")
        check_positive(self.wss, "wss")
        require(self.wss <= self.footprint, "working set cannot exceed footprint")
        require(len(self.phases) > 0, "a task needs at least one phase")
        require(self.cores >= 1, "cores must be >= 1")
        check_non_negative(self.dynamic_headroom, "dynamic_headroom")
        if self.memory_limit is not None:
            require(
                self.memory_limit >= self.footprint,
                "memory_limit cannot be below the initial footprint",
            )
        object.__setattr__(self, "flags", normalize_flags(self.flags))

    @property
    def max_footprint(self) -> int:
        """Footprint plus room for every dynamic request and (when no
        shared-memory manager exists) private copies of shared inputs —
        this sizes the PageSet's address space."""
        dyn = sum(p.allocate.nbytes for p in self.phases if p.allocate is not None)
        shared = sum(s.nbytes for s in self.shared_inputs)
        return self.footprint + dyn + self.dynamic_headroom + shared

    @property
    def ideal_duration(self) -> float:
        """Total runtime on an unconstrained all-DRAM node."""
        return sum(p.base_time for p in self.phases)

    @property
    def effective_flags(self) -> MemFlag:
        """Explicit flags, falling back to the workload class defaults."""
        return self.flags if self.flags is not MemFlag.NONE else self.wclass.default_flags

    def with_name(self, name: str) -> "TaskSpec":
        return replace(self, name=name)

    def with_flags(self, flags: "MemFlag | Sequence[MemFlag] | None") -> "TaskSpec":
        return replace(self, flags=normalize_flags(flags))

    def scaled(self, factor: float) -> "TaskSpec":
        """Uniformly scale the memory footprint (experiment sizing knob)."""
        check_positive(factor, "factor")
        return replace(
            self,
            footprint=max(1, int(self.footprint * factor)),
            wss=max(1, int(self.wss * factor)),
            dynamic_headroom=int(self.dynamic_headroom * factor),
            phases=tuple(
                replace(
                    p,
                    allocate=(
                        DynamicRequest(max(1, int(p.allocate.nbytes * factor)), p.allocate.flags)
                        if p.allocate is not None
                        else None
                    ),
                )
                for p in self.phases
            ),
        )

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TaskSpec({self.name}, {self.wclass.name}, "
            f"footprint={self.footprint / GiB(1):.2f}GiB, phases={len(self.phases)})"
        )
