"""Arrival processes for open-system experiments.

The paper's batches arrive together, but its DM-heavy mixes (1100 of 2000
instances) behave like a stream in practice: short-lived jobs keep landing
on already-loaded nodes.  These generators produce deterministic arrival
timestamps for open-loop submission via
:meth:`repro.envs.Environment.run_arrivals`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..util.rng import RngFactory
from ..util.validation import check_non_negative, check_positive

__all__ = ["poisson_arrivals", "uniform_arrivals", "burst_arrivals"]


def poisson_arrivals(
    rate: float,
    n: int,
    *,
    rng_factory: Optional[RngFactory] = None,
    stream: str = "arrivals.poisson",
    start: float = 0.0,
) -> list[float]:
    """``n`` Poisson-process arrival times at ``rate`` jobs/second."""
    check_positive(rate, "rate")
    check_positive(n, "n")
    check_non_negative(start, "start")
    factory = rng_factory if rng_factory is not None else RngFactory(0)
    gaps = factory.fresh(stream).exponential(1.0 / rate, size=n)
    return list(start + np.cumsum(gaps))


def uniform_arrivals(interval: float, n: int, *, start: float = 0.0) -> list[float]:
    """``n`` arrivals spaced exactly ``interval`` seconds apart."""
    check_positive(interval, "interval")
    check_positive(n, "n")
    check_non_negative(start, "start")
    return [start + interval * (i + 1) for i in range(n)]


def burst_arrivals(
    n_bursts: int,
    burst_size: int,
    burst_gap: float,
    *,
    start: float = 0.0,
) -> list[float]:
    """Bursty arrivals: ``burst_size`` simultaneous jobs every ``burst_gap``
    seconds (scale-out waves, the Fig. 10 launch pattern repeated)."""
    check_positive(n_bursts, "n_bursts")
    check_positive(burst_size, "burst_size")
    check_positive(burst_gap, "burst_gap")
    out: list[float] = []
    for b in range(n_bursts):
        out.extend([start + b * burst_gap] * burst_size)
    return out
