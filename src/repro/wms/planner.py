"""Pegasus-like workflow management: plan a DAG, release ready tasks.

"The workflow is first submitted to the WMS where it is converted to an
executable workflow represented by a DAG" (§III-B).  The executor tracks
dependency counts and submits each task to the batch scheduler the moment
its producers finish — the paper's WMS→SLURM hand-off.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..scheduler.job import Job, JobState
from ..scheduler.slurm import SlurmScheduler
from ..util.errors import WorkflowError
from ..workflows.dag import Workflow

__all__ = ["WorkflowExecution", "WorkflowManager"]


class WorkflowExecution:
    """One workflow instance in flight."""

    def __init__(
        self,
        workflow: Workflow,
        scheduler: SlurmScheduler,
        *,
        on_complete: Optional[Callable[["WorkflowExecution"], None]] = None,
    ) -> None:
        workflow.validate()
        self.workflow = workflow
        self.scheduler = scheduler
        self.on_complete = on_complete
        self._remaining_deps: dict[str, int] = {
            tid: len(workflow.dependencies(tid)) for tid in workflow.graph.nodes
        }
        self._jobs: dict[str, Job] = {}
        self._done: set[str] = set()
        self._failed: set[str] = set()
        self.started = False

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self.started:
            raise WorkflowError(f"workflow {self.workflow.name!r} already started")
        self.started = True
        for tid in self.workflow.roots():
            self._submit(tid)

    def _submit(self, task_id: str) -> None:
        spec = self.workflow.spec(task_id)
        job = self.scheduler.submit(spec, on_done=lambda j, tid=task_id: self._task_done(tid, j))
        self._jobs[task_id] = job

    def _task_done(self, task_id: str, job: Job) -> None:
        if job.state is JobState.FAILED:
            self._failed.add(task_id)
        else:
            self._done.add(task_id)
            for succ in self.workflow.dependents(task_id):
                self._remaining_deps[succ] -= 1
                if self._remaining_deps[succ] == 0:
                    self._submit(succ)
        if self.complete and self.on_complete is not None:
            self.on_complete(self)

    # ------------------------------------------------------------------ #
    @property
    def complete(self) -> bool:
        reachable = len(self.workflow) - self._blocked_count()
        return len(self._done) + len(self._failed) >= reachable

    def _blocked_count(self) -> int:
        """Tasks that can never run because a dependency failed."""
        if not self._failed:
            return 0
        blocked: set[str] = set()
        frontier = list(self._failed)
        while frontier:
            tid = frontier.pop()
            for succ in self.workflow.dependents(tid):
                if succ not in blocked:
                    blocked.add(succ)
                    frontier.append(succ)
        return len(blocked - self._failed)

    @property
    def succeeded(self) -> bool:
        return self.complete and not self._failed

    def job_of(self, task_id: str) -> Job:
        if task_id not in self._jobs:
            raise WorkflowError(f"task {task_id!r} has not been submitted")
        return self._jobs[task_id]


class WorkflowManager:
    """Runs multiple workflows concurrently over one scheduler."""

    def __init__(self, scheduler: SlurmScheduler) -> None:
        self.scheduler = scheduler
        self.executions: list[WorkflowExecution] = []

    def submit(self, workflow: Workflow) -> WorkflowExecution:
        ex = WorkflowExecution(workflow, self.scheduler)
        self.executions.append(ex)
        ex.start()
        return ex

    @property
    def all_complete(self) -> bool:
        return all(ex.complete for ex in self.executions)

    def run_to_completion(self, max_time: float = 1e9) -> None:
        """Drive the engine until every submitted workflow completes."""
        engine = self.scheduler.engine
        while not self.all_complete:
            if not engine.step():
                raise WorkflowError("deadlock: workflows incomplete with no pending events")
            if engine.now > max_time:
                raise WorkflowError(f"workflows still unfinished at t={engine.now}")
