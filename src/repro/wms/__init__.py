"""Pegasus-like workflow management system."""

from .decompose import decompose_task, decomposed_footprint
from .planner import WorkflowExecution, WorkflowManager

__all__ = [
    "decompose_task",
    "decomposed_footprint",
    "WorkflowExecution",
    "WorkflowManager",
]
