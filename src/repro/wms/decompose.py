"""Workflow deconstruction (§I).

"HPC workflows are deconstructed into smaller workflows, which enable
node-level colocation on HPC systems, optimize resource utilization, and
address stranded memory problems."

:func:`decompose_task` splits a multi-phase task into a chain of
single-phase (or ``group``-phase) sub-tasks.  Each sub-task:

* allocates only the memory its phases actually touch (plus the handoff
  working set), so a 40 GiB training job whose first epoch touches 45%
  holds 18 GiB instead of 40 — un-stranding the rest for colocation;
* releases the node entirely between stages, letting the scheduler
  interleave other workflows.

Dynamic ``allocate``/``release_region`` pairs must stay within one
sub-task (region ids are task-local); the decomposer refuses to split
across them rather than silently corrupting the handoff.
"""

from __future__ import annotations

import math
from dataclasses import replace

from ..util.errors import WorkflowError
from ..util.validation import check_fraction, require
from ..workflows.dag import Workflow, chain_workflow
from ..workflows.task import TaskSpec

__all__ = ["decompose_task", "decomposed_footprint"]


def decomposed_footprint(spec: TaskSpec, phases, *, handoff_fraction: float = 0.10) -> int:
    """Memory a sub-task running ``phases`` needs: the largest touched
    fraction of the original footprint, plus a handoff slice for the data
    passed from the previous stage, floored at one chunk-ish minimum."""
    touched = max(p.touched_fraction for p in phases)
    need = touched + handoff_fraction
    return max(1, min(spec.footprint, int(math.ceil(spec.footprint * need))))


def decompose_task(
    spec: TaskSpec,
    *,
    group: int = 1,
    handoff_fraction: float = 0.10,
    shrink_footprint: bool = True,
) -> Workflow:
    """Split ``spec`` into a chain workflow of ``group``-phase sub-tasks.

    Returns a :class:`~repro.workflows.dag.Workflow` named
    ``{spec.name}.chain`` with sub-tasks ``{spec.name}.s0 .. .sK``.
    """
    require(group >= 1, "group must be >= 1")
    check_fraction(handoff_fraction, "handoff_fraction")
    phase_groups = [
        spec.phases[i : i + group] for i in range(0, len(spec.phases), group)
    ]
    # region ids are task-local: a release in a later sub-task than its
    # allocation cannot be honoured
    pending_regions: set[int] = set()
    next_region = 1
    for phases in phase_groups:
        for p in phases:
            if p.release_region is not None and p.release_region not in pending_regions:
                raise WorkflowError(
                    f"cannot decompose {spec.name!r}: phase {p.name!r} releases a "
                    "region allocated in an earlier sub-task"
                )
            if p.allocate is not None:
                pending_regions.add(next_region)
                next_region += 1
            if p.release_region is not None:
                pending_regions.discard(p.release_region)
        pending_regions.clear()
        next_region = 1

    subtasks: list[TaskSpec] = []
    for k, phases in enumerate(phase_groups):
        if shrink_footprint:
            fp = decomposed_footprint(spec, phases, handoff_fraction=handoff_fraction)
        else:
            fp = spec.footprint
        subtasks.append(
            replace(
                spec,
                name=f"{spec.name}.s{k}",
                footprint=fp,
                wss=min(spec.wss, fp),
                phases=tuple(phases),
                memory_limit=None if spec.memory_limit is None else max(
                    fp, int(spec.memory_limit * fp / spec.footprint)
                ),
            )
        )
    return chain_workflow(f"{spec.name}.chain", subtasks)
