"""Deterministic task streams: one jittered task per arrival, on demand.

A batch workload materializes every task up front; a service cannot — at
millions of arrivals the task list *is* the memory bill.  A
:class:`TaskStream` instead builds task ``i`` only when arrival ``i``
fires, from per-index RNG streams, so:

* memory stays O(distinct classes), not O(arrivals);
* task ``i`` is byte-identical no matter how many tasks were built
  before it, in which order, or in which process — the same
  add-a-consumer-never-perturbs-existing-draws contract
  :class:`~repro.util.rng.RngFactory` gives named streams.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..util.rng import derive_seed
from ..util.validation import check_positive, require
from ..workflows.library import paper_workload_suite
from ..workflows.task import TaskPhase, TaskSpec, WorkloadClass

__all__ = ["TaskStream"]


class TaskStream:
    """Sample the ``i``-th service task from a weighted class mix.

    Parameters
    ----------
    classes:
        ``(class name, weight)`` pairs; arrival classes are drawn
        proportionally to weight.
    scale:
        Memory scale for the base suite
        (:func:`~repro.workflows.library.paper_workload_suite`).
    seed:
        Stream seed; two streams with equal ``(classes, scale, seed)``
        produce identical tasks for every index.
    """

    def __init__(
        self,
        classes: Tuple[Tuple[str, int], ...],
        scale: float,
        seed: int,
        *,
        time_jitter: float = 0.10,
        size_jitter: float = 0.10,
    ) -> None:
        require(bool(classes), "a task stream needs at least one class")
        check_positive(scale, "scale")
        self.scale = float(scale)
        suite = paper_workload_suite(scale)
        self._bases: Dict[str, TaskSpec] = {
            name: suite[WorkloadClass[name]] for name, _ in classes
        }
        self._names = [name for name, _ in classes]
        weights = np.asarray([float(w) for _, w in classes], dtype=float)
        self._cum = np.cumsum(weights / weights.sum())
        self.seed = int(seed)
        self.time_jitter = float(time_jitter)
        self.size_jitter = float(size_jitter)

    def bases(self) -> "list[TaskSpec]":
        """The mix's unjittered base tasks, in declared class order
        (what tier sizing provisions against)."""
        return [self._bases[name] for name in self._names]

    def wclass(self, index: int, override: Optional[str] = None) -> str:
        """The class of arrival ``index`` (or the trace's override)."""
        if override is not None:
            require(override in self._bases or override in WorkloadClass.__members__,
                    f"unknown stream class {override!r}")
            return override
        if len(self._names) == 1:
            return self._names[0]
        rng = np.random.default_rng(derive_seed(self.seed, f"svc.class.{index}"))
        return self._names[int(np.searchsorted(self._cum, float(rng.uniform())))]

    def task(self, index: int, override: Optional[str] = None) -> TaskSpec:
        """Build arrival ``index``'s task: class draw + the same ±jitter
        :func:`~repro.workflows.ensembles.make_ensemble` applies."""
        name = self.wclass(index, override)
        base = self._bases.get(name)
        if base is None:  # a trace named a class outside the mix
            base = paper_workload_suite(self.scale)[WorkloadClass[name]]
            self._bases[name] = base
        rng = np.random.default_rng(derive_seed(self.seed, f"svc.{name}.{index}"))
        tf = 1.0 + self.time_jitter * float(rng.uniform(-1.0, 1.0))
        sf = 1.0 + self.size_jitter * float(rng.uniform(-1.0, 1.0))
        member = base.scaled(sf)
        return replace(
            member,
            name=f"svc-{index:07d}-{name.lower()}",
            phases=tuple(_jitter_phase(p, tf) for p in member.phases),
        )

def _jitter_phase(phase: TaskPhase, factor: float) -> TaskPhase:
    return replace(phase, base_time=phase.base_time * factor)
