"""The open-loop service engine: arrivals in, windowed reports out.

:class:`ServiceRun` is to a long-lived cluster what
:meth:`~repro.envs.environments.Environment.run_batch` is to an
experiment: it owns the drive loop.  The moving parts:

* **one pending arrival event** — each firing submits (or sheds) the
  arrival and schedules the next, so a stream of millions of arrivals
  never materializes a job list;
* a :class:`~repro.sim.process.ReportPeriod` boundary event sampling the
  live state (queue depth, running cores) once per window;
* the scheduler's attached admission policy
  (:mod:`repro.service.admission`) deciding accept/shed per arrival;
* a custom drain condition: the run is over when the stream is exhausted
  *and* the scheduler is idle (``run_to_completion`` alone would exit in
  any momentary gap between arrivals).

Everything else — window assembly, warm-up truncation, steady-state
tails — happens after the clock stops, in
:class:`~repro.service.metrics.WindowAccumulator`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from .. import obs
from ..envs.environments import Environment
from ..obs import insight as _insight
from ..obs.insight import LiveMetricsWriter, live_window_payload
from ..sim.process import ReportPeriod
from ..util.errors import SchedulingError
from ..util.validation import require
from ..workflows.task import TaskSpec
from .admission import build_admission
from .arrivals import arrival_process
from .metrics import ServiceReport, WindowAccumulator
from .spec import ServiceSpec
from .stream import TaskStream

__all__ = ["ServiceRun", "serve"]


class ServiceRun:
    """Drive one environment as a steady-state service.

    Parameters
    ----------
    env:
        A wired :class:`~repro.envs.environments.Environment`.
    service:
        The :class:`~repro.service.spec.ServiceSpec` describing stream,
        windows, warm-up, and admission.
    scale:
        Memory scale for the stream's task suite (normally the
        scenario workload's ``scale``).
    seed:
        Master seed; the arrival process and task stream derive their
        own named streams from it.
    background:
        Tasks submitted outside the stream (long-running colocated
        jobs); ``bg_arrivals`` optionally delays them.
    live:
        Optional :class:`~repro.obs.insight.LiveMetricsWriter` (or a
        directory path): every closed window appends one NDJSON line and
        rewrites a Prometheus-text snapshot, with per-node tier
        occupancy / stall blocks when the insight plane is active —
        what ``scenarios serve --live`` and ``obs tail`` consume.
    """

    def __init__(
        self,
        env: Environment,
        service: ServiceSpec,
        *,
        scale: float,
        seed: int = 0,
        scenario: str = "service",
        background: Sequence[TaskSpec] = (),
        bg_arrivals: Optional[Sequence[float]] = None,
        max_time: float = 1e9,
        live: "LiveMetricsWriter | str | None" = None,
    ) -> None:
        if bg_arrivals is not None:
            require(len(bg_arrivals) == len(background),
                    "need exactly one arrival time per background task")
        self.env = env
        self.engine = env.engine
        self.scheduler = env.scheduler
        self.service = service
        self.seed = int(seed)
        self.scenario = scenario
        self.background = list(background)
        self.bg_arrivals = list(bg_arrivals) if bg_arrivals is not None else None
        self.max_time = float(max_time)
        self.stream = TaskStream(service.classes, scale, self.seed)
        self._arrivals: Iterator[Tuple[float, Optional[str]]] = arrival_process(
            service, self.seed
        )
        self.accumulator = WindowAccumulator(
            service.window, self.scheduler.total_cores
        )
        self.offered = 0
        self.admitted = 0
        self._generated_all = False
        self._submitted: "set[str]" = set()
        self.report: Optional[ServiceReport] = None
        self.live = LiveMetricsWriter(live) if isinstance(live, str) else live

    # ------------------------------------------------------------------ #
    # arrival handling
    # ------------------------------------------------------------------ #
    def _next_arrival(self) -> None:
        """Schedule the stream's next arrival, or end the stream."""
        svc = self.service
        if svc.max_arrivals and self.offered >= svc.max_arrivals:
            self._generated_all = True
            return
        item = next(self._arrivals, None)
        if item is None:
            self._generated_all = True
            return
        t, override = item
        when = self._origin + float(t)
        if svc.horizon and float(t) > svc.horizon:
            self._generated_all = True
            return
        index = self.offered
        self.engine.schedule_at(
            when, lambda: self._on_arrival(index, override), f"service.arrival.{index}"
        )

    def _on_arrival(self, index: int, override: Optional[str]) -> None:
        task = self.stream.task(index, override)
        self.offered += 1
        job = self.scheduler.try_submit(task)
        admitted = job is not None
        if admitted:
            self.admitted += 1
            self._submitted.add(task.name)
            self.accumulator.cores_of[task.name] = task.cores
        self.accumulator.on_offered(admitted)
        self._next_arrival()

    def _on_window(self, index: int, start: float, end: float) -> None:
        acc = self.accumulator
        acc.on_boundary(self.scheduler.pending_count, self.scheduler.running_count)
        if not (obs.enabled() or self.live is not None):
            return
        closed = acc._live[index]
        if obs.enabled():
            obs.event(
                end, "service", "window",
                index=index,
                offered=closed.arrivals,
                admitted=closed.admitted,
                rejected=closed.rejected,
                queue=closed.queue_depth,
                running=closed.running,
            )
        if self.live is not None:
            self.live.write_window(
                live_window_payload(
                    index, start, end,
                    offered=closed.arrivals,
                    admitted=closed.admitted,
                    rejected=closed.rejected,
                    queue=closed.queue_depth,
                    running=closed.running,
                    view=_insight.view(),
                )
            )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self) -> ServiceReport:
        """Run the service to its stop condition and assemble the report."""
        svc = self.service
        env = self.env
        with obs.span("service.run", scenario=self.scenario, seed=self.seed):
            self.scheduler.admission = build_admission(svc)
            if env.config.stage_images and env.shared_memory is not None:
                env.stage_images_for(list(self.background) + self.stream.bases())
            self._origin = self.engine.now
            period = ReportPeriod(self.engine, svc.window, "service.window")
            handle = period.add_reporter(self._on_window)
            for i, task in enumerate(self.background):
                delay = (
                    max(0.0, float(self.bg_arrivals[i]))
                    if self.bg_arrivals is not None
                    else 0.0
                )
                self._submitted.add(task.name)
                self.accumulator.cores_of[task.name] = task.cores
                self.engine.schedule(
                    delay,
                    lambda t=task: self.scheduler.submit(t),
                    f"service.background.{task.name}",
                )
            self._next_arrival()
            try:
                self._drive()
            finally:
                period.remove(handle)
                self.scheduler.admission = None
            stop = self.engine.now
            period.close_partial(self._on_window)
            self.report = self.accumulator.assemble(
                scenario=self.scenario,
                seed=self.seed,
                metrics=env.metrics,
                start=self._origin,
                stop=stop,
                offered=self.offered,
                admitted=self.admitted,
                rejected=self.offered - self.admitted,
                warmup_method=svc.warmup,
                warmup_metric=svc.warmup_metric,
                cv_threshold=svc.cv_threshold,
                cv_span=svc.cv_span,
                submitted=self._submitted,
            )
            if obs.enabled():
                obs.counter("service.offered", self.report.offered)
                obs.counter("service.admitted", self.report.admitted)
                obs.counter("service.rejected", self.report.rejected)
                obs.counter("service.windows", len(self.report.windows))
        return self.report

    def _drive(self) -> None:
        """Advance the engine to the service's stop condition."""
        svc = self.service
        engine = self.engine
        if svc.horizon and not svc.drain:
            # truncated run: everything after the horizon is out of scope
            engine.run(until=self._origin + svc.horizon)
            self._generated_all = True
            return
        while not (self._generated_all and self.scheduler.all_done):
            if not engine.step():
                if self._generated_all:
                    break
                raise SchedulingError(
                    "service deadlock: stream not exhausted but no events pending"
                )
            if engine.now > self.max_time:
                raise SchedulingError(
                    f"service still running at t={engine.now} (max_time={self.max_time})"
                )


def serve(
    env: Environment,
    service: ServiceSpec,
    *,
    scale: float,
    seed: int = 0,
    scenario: str = "service",
    background: Sequence[TaskSpec] = (),
    bg_arrivals: Optional[Sequence[float]] = None,
    max_time: float = 1e9,
    live: "LiveMetricsWriter | str | None" = None,
) -> ServiceReport:
    """One-call form: build a :class:`ServiceRun`, execute it, return the
    report (the environment is *not* stopped — callers owning telemetry
    call :meth:`Environment.stop` themselves, as with ``run_batch``)."""
    return ServiceRun(
        env,
        service,
        scale=scale,
        seed=seed,
        scenario=scenario,
        background=background,
        bg_arrivals=bg_arrivals,
        max_time=max_time,
        live=live,
    ).execute()
