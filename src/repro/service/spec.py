"""Typed description of a steady-state service run.

A :class:`ServiceSpec` turns a scenario from a drain-the-batch experiment
into a *long-lived service*: an open-loop arrival process feeds the
scheduler continuously, windowed metrics are emitted on a report period,
warm-up windows are detected and discarded, and an admission policy
decides which arrivals the cluster accepts.

Like every scenario-layer spec it is plain frozen data — primitives,
pair-tuples, and names into registries — so it serializes losslessly to
TOML/JSON and folds into the scenario digest.  Behaviour lives in the
sibling modules (:mod:`repro.service.arrivals`,
:mod:`repro.service.admission`, :mod:`repro.service.warmup`,
:mod:`repro.service.run`); this module only describes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Tuple, Union

from ..util.validation import check_positive, require

__all__ = [
    "ADMISSION_POLICIES",
    "ARRIVAL_SOURCES",
    "WARMUP_METHODS",
    "WARMUP_METRICS",
    "ServiceSpec",
]

#: names a :class:`ServiceSpec` may put in ``arrival``
ARRIVAL_SOURCES = ("poisson", "uniform", "trace")
#: names a :class:`ServiceSpec` may put in ``warmup``
WARMUP_METHODS = ("none", "mser-5", "sliding-cv")
#: window series a warm-up detector may watch
WARMUP_METRICS = ("utilization", "queue_depth", "turnaround", "completed")
#: names a :class:`ServiceSpec` may put in ``admission``
ADMISSION_POLICIES = ("accept-all", "queue-cap", "memory-headroom")

#: the value types a TOML table represents losslessly (mirrors
#: :data:`repro.scenarios.spec.ParamValue` without importing upward)
_ParamValue = Union[bool, int, float, str]


def _pairs(mapping: "Mapping[str, Any] | Tuple[Tuple[str, Any], ...]") -> tuple:
    items = mapping.items() if isinstance(mapping, Mapping) else mapping
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class ServiceSpec:
    """How a scenario runs as an open-loop service.

    The arrival *stream* is described here (source, offered rate, class
    mix); the surrounding :class:`~repro.scenarios.spec.ScenarioSpec`
    still describes the cluster and any background batch its workload
    source builds.  Exactly one of ``max_arrivals``/``horizon`` may be
    left unset (0 disables that stop condition; at least one must be
    set).
    """

    #: arrival process: one of :data:`ARRIVAL_SOURCES`
    arrival: str = "poisson"
    #: base offered rate, arrivals/second (poisson/uniform sources)
    rate: float = 0.5
    #: (class name, weight) pairs the stream samples tasks from
    classes: Tuple[Tuple[str, int], ...] = (("DM", 1),)
    #: stop generating after this many arrivals (0 = no count limit)
    max_arrivals: int = 0
    #: stop generating at this simulated time (0 = no time horizon)
    horizon: float = 0.0
    #: report-period length in simulated seconds (one metrics window)
    window: float = 50.0
    #: warm-up detection method: one of :data:`WARMUP_METHODS`
    warmup: str = "mser-5"
    #: which window series the detector watches: :data:`WARMUP_METRICS`
    warmup_metric: str = "utilization"
    #: sliding-cv: coefficient-of-variation threshold for convergence
    cv_threshold: float = 0.10
    #: sliding-cv: trailing windows the CV is computed over
    cv_span: int = 5
    #: admission policy: one of :data:`ADMISSION_POLICIES`
    admission: str = "accept-all"
    #: queue-cap: reject arrivals while the queue is this deep (0 = off)
    queue_cap: int = 0
    #: memory-headroom: required free byte-addressable memory on the
    #: best node, as a multiple of the arriving task's max footprint
    headroom: float = 1.0
    #: run submitted work to completion after arrivals stop; ``False``
    #: truncates the run at the horizon (tasks mid-flight stay unfinished)
    drain: bool = True
    #: source-specific extras: trace path, diurnal/burst modulators, ...
    params: Tuple[Tuple[str, _ParamValue], ...] = ()

    def __post_init__(self) -> None:
        require(self.arrival in ARRIVAL_SOURCES,
                f"arrival must be one of {ARRIVAL_SOURCES}, got {self.arrival!r}")
        require(self.warmup in WARMUP_METHODS,
                f"warmup must be one of {WARMUP_METHODS}, got {self.warmup!r}")
        require(self.warmup_metric in WARMUP_METRICS,
                f"warmup_metric must be one of {WARMUP_METRICS}, got {self.warmup_metric!r}")
        require(self.admission in ADMISSION_POLICIES,
                f"admission must be one of {ADMISSION_POLICIES}, got {self.admission!r}")
        check_positive(self.window, "window")
        require(self.max_arrivals >= 0, "max_arrivals must be >= 0")
        require(self.horizon >= 0.0, "horizon must be >= 0")
        require(self.max_arrivals > 0 or self.horizon > 0.0,
                "a service needs a stop condition: max_arrivals or horizon")
        if self.arrival in ("poisson", "uniform"):
            check_positive(self.rate, "rate")
        require(self.cv_span >= 2, "cv_span must be >= 2")
        check_positive(self.cv_threshold, "cv_threshold")
        require(self.queue_cap >= 0, "queue_cap must be >= 0")
        check_positive(self.headroom, "headroom")
        object.__setattr__(self, "classes", _pairs(self.classes))
        object.__setattr__(self, "params", _pairs(self.params))
        require(bool(self.classes), "the stream needs at least one class")
        require(all(int(w) > 0 for _, w in self.classes),
                "class weights must be positive")

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default
