"""Admission control: decide at arrival time whether the cluster takes a job.

An open-loop stream does not slow down when the cluster saturates — the
queue does.  Admission policies bound that: ``queue-cap`` sheds load past
a configured backlog, and ``memory-headroom`` is the tier-aware gate the
steady-state experiments compare — a constrained baseline with only DRAM
rejects arrivals its tiers cannot hold, where IMME's PMem/CXL capacity
admits (and absorbs) the same stream.

Policies see a :class:`ClusterView` — live queue depth plus per-node free
capacity — and return accept/reject; the service loop counts both per
window.  Rejection is *cheap by design*: no job object, no metrics entry,
no scheduler interaction, so a saturated run stays fast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..memory.tiers import MEMORY_TIERS
from ..util.validation import check_positive, require
from .spec import ServiceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.node_agent import NodeAgent
    from ..scheduler.slurm import SlurmScheduler
    from ..workflows.task import TaskSpec

__all__ = [
    "AcceptAll",
    "AdmissionPolicy",
    "ClusterView",
    "MemoryHeadroomGate",
    "QueueDepthCap",
    "build_admission",
]


class ClusterView:
    """What an admission policy may look at: live scheduler + node state."""

    def __init__(self, scheduler: "SlurmScheduler", agents: "Sequence[NodeAgent]") -> None:
        self.scheduler = scheduler
        self.agents = list(agents)

    @property
    def queue_depth(self) -> int:
        return self.scheduler.pending_count

    def free_memory(self, node_index: int) -> int:
        """Free byte-addressable memory (DRAM + PMem + CXL) on one node."""
        mem = self.agents[node_index].memory
        return sum(mem.free(t) for t in MEMORY_TIERS)

    def best_free_memory(self) -> int:
        """The most free byte-addressable memory any live node offers."""
        best = 0
        for i, agent in enumerate(self.agents):
            if agent.down:
                continue
            best = max(best, self.free_memory(i))
        return best


class AdmissionPolicy:
    """Base: accept/reject one arriving task against the live cluster."""

    name = "accept-all"

    def admit(self, spec: "TaskSpec", view: ClusterView) -> bool:
        raise NotImplementedError


class AcceptAll(AdmissionPolicy):
    """The open-queue default: everything enters the scheduler."""

    name = "accept-all"

    def admit(self, spec: "TaskSpec", view: ClusterView) -> bool:
        return True


class QueueDepthCap(AdmissionPolicy):
    """Reject while the scheduler backlog is at or past ``max_depth``."""

    name = "queue-cap"

    def __init__(self, max_depth: int) -> None:
        check_positive(max_depth, "max_depth")
        self.max_depth = int(max_depth)

    def admit(self, spec: "TaskSpec", view: ClusterView) -> bool:
        return view.queue_depth < self.max_depth


class MemoryHeadroomGate(AdmissionPolicy):
    """Tier-aware gate: admit only if some node's free byte-addressable
    memory covers ``headroom`` times the task's maximum footprint.

    The gate reads *capacity across all memory tiers*, so environments
    differ exactly as the paper predicts: a DRAM-only baseline runs out
    of admittable headroom long before a tiered node whose PMem/CXL count
    toward the same budget.
    """

    name = "memory-headroom"

    def __init__(self, headroom: float = 1.0) -> None:
        check_positive(headroom, "headroom")
        self.headroom = float(headroom)

    def admit(self, spec: "TaskSpec", view: ClusterView) -> bool:
        need = int(spec.max_footprint * self.headroom)
        return view.best_free_memory() >= need


def build_admission(spec: ServiceSpec) -> AdmissionPolicy:
    """The policy ``spec.admission`` names, configured from its knobs."""
    if spec.admission == "accept-all":
        return AcceptAll()
    if spec.admission == "queue-cap":
        require(spec.queue_cap > 0, "queue-cap admission needs queue_cap > 0")
        return QueueDepthCap(spec.queue_cap)
    if spec.admission == "memory-headroom":
        return MemoryHeadroomGate(spec.headroom)
    raise KeyError(f"unknown admission policy {spec.admission!r}")  # pragma: no cover
