"""Open-loop arrival processes: lazy, deterministic, composable.

Unlike :mod:`repro.workflows.arrivals` (finite pre-materialized lists),
these are *generators*: a service run holds one pending arrival event at
a time, so a stream of millions of arrivals costs O(1) memory.  All
randomness flows through :class:`~repro.util.rng.RngFactory` streams, so
the same spec and seed replay the identical arrival sequence in any
process.

Rate modulation is multiplicative and composable: a diurnal curve and a
bursty square wave both scale the base rate, and inhomogeneous Poisson
streams are produced by thinning against the modulated peak rate — the
standard exact method, and deterministic here because accept/reject draws
come from the same named stream as the candidate gaps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from ..util.rng import RngFactory
from ..util.validation import check_positive, require
from .spec import ServiceSpec

__all__ = [
    "RateModulator",
    "arrival_process",
    "burst_modulator",
    "diurnal_modulator",
    "load_trace",
    "modulated_rate",
    "poisson_process",
    "trace_process",
    "uniform_process",
]

#: a time-varying rate multiplier (simulated seconds -> factor >= 0)
RateModulator = Callable[[float], float]


# --------------------------------------------------------------------------- #
# modulators
# --------------------------------------------------------------------------- #

def diurnal_modulator(period: float, amplitude: float) -> RateModulator:
    """A sinusoidal day/night load curve: factor in [1-a, 1+a]."""
    check_positive(period, "period")
    require(0.0 <= amplitude <= 1.0, "diurnal amplitude must be in [0, 1]")
    two_pi = 2.0 * np.pi

    def factor(t: float) -> float:
        return 1.0 + amplitude * float(np.sin(two_pi * t / period))

    return factor


def burst_modulator(period: float, duration: float, factor: float) -> RateModulator:
    """A square-wave burst: every ``period`` seconds the rate multiplies by
    ``factor`` for ``duration`` seconds (multi-tenant burst traffic)."""
    check_positive(period, "period")
    check_positive(duration, "duration")
    check_positive(factor, "factor")
    require(duration <= period, "burst duration must fit inside the period")

    def f(t: float) -> float:
        return factor if (t % period) < duration else 1.0

    return f


def modulated_rate(
    base: float, modulators: "List[RateModulator]"
) -> Tuple[Callable[[float], float], float]:
    """Compose modulators onto ``base``; returns (rate(t), peak rate).

    The peak assumes every modulator is at its maximum simultaneously —
    safe (thinning only needs an upper bound) and exact for the factors
    built here (diurnal max = 1+a, burst max = factor).
    """
    peaks = []
    for m in modulators:
        # probe a dense cycle grid: exact for our periodic modulators
        probe = [m(t) for t in np.linspace(0.0, 86400.0, 4097)]
        peaks.append(max(max(probe), 1.0))

    def rate(t: float) -> float:
        r = base
        for m in modulators:
            r *= m(t)
        return r

    peak = base
    for p in peaks:
        peak *= p
    return rate, peak


def _spec_modulators(spec: ServiceSpec) -> "List[RateModulator]":
    mods: List[RateModulator] = []
    if spec.param("diurnal_period") is not None:
        mods.append(
            diurnal_modulator(
                float(spec.param("diurnal_period")),
                float(spec.param("diurnal_amplitude", 0.5)),
            )
        )
    if spec.param("burst_period") is not None:
        mods.append(
            burst_modulator(
                float(spec.param("burst_period")),
                float(spec.param("burst_duration", 10.0)),
                float(spec.param("burst_factor", 4.0)),
            )
        )
    return mods


# --------------------------------------------------------------------------- #
# processes
# --------------------------------------------------------------------------- #

def poisson_process(
    rate: float,
    *,
    rng_factory: RngFactory,
    stream: str = "service.arrivals",
    start: float = 0.0,
    modulators: "Optional[List[RateModulator]]" = None,
) -> Iterator[float]:
    """Yield Poisson arrival times forever (homogeneous, or thinned
    against the modulated peak when modulators are given)."""
    check_positive(rate, "rate")
    rng = rng_factory.fresh(stream)
    t = float(start)
    if not modulators:
        while True:
            t += float(rng.exponential(1.0 / rate))
            yield t
        return  # pragma: no cover - unreachable
    rate_fn, peak = modulated_rate(rate, modulators)
    while True:
        t += float(rng.exponential(1.0 / peak))
        if float(rng.uniform()) * peak < rate_fn(t):
            yield t


def uniform_process(rate: float, *, start: float = 0.0) -> Iterator[float]:
    """Deterministically spaced arrivals at exactly ``rate`` per second."""
    check_positive(rate, "rate")
    interval = 1.0 / rate
    t = float(start)
    while True:
        t += interval
        yield t


def load_trace(path: "str | Path") -> "List[Tuple[float, Optional[str]]]":
    """Read an arrival trace: ``(time, class-or-None)`` rows, sorted.

    Two formats, dispatched on suffix:

    * ``.csv`` — one arrival per line, ``time[,class]``; a header line
      starting with ``time`` is skipped.
    * ``.json`` — a list of numbers, or of ``{"t": ..., "class": ...}``
      objects (``class`` optional).
    """
    p = Path(path)
    require(p.is_file(), f"arrival trace not found: {p}")
    rows: List[Tuple[float, Optional[str]]] = []
    if p.suffix == ".csv":
        for line in p.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = [c.strip() for c in line.split(",")]
            if parts[0].lower() in ("time", "t"):
                continue  # header
            cls = parts[1] if len(parts) > 1 and parts[1] else None
            rows.append((float(parts[0]), cls))
    elif p.suffix == ".json":
        data = json.loads(p.read_text(encoding="utf-8"))
        require(isinstance(data, list), "JSON trace must be a list")
        for item in data:
            if isinstance(item, dict):
                rows.append((float(item["t"]), item.get("class")))
            else:
                rows.append((float(item), None))
    else:
        raise ValueError(f"unknown trace format {p.suffix!r} (use .csv or .json)")
    require(bool(rows), f"arrival trace {p} is empty")
    rows.sort(key=lambda r: r[0])
    require(rows[0][0] >= 0.0, "trace arrival times must be >= 0")
    return rows


def trace_process(
    rows: "List[Tuple[float, Optional[str]]]",
    *,
    repeat: float = 0.0,
) -> Iterator[Tuple[float, Optional[str]]]:
    """Replay a loaded trace; with ``repeat`` > 0 the trace loops,
    shifted by ``repeat`` seconds per cycle (a finite log becomes an
    open-loop stream)."""
    offset = 0.0
    while True:
        for t, cls in rows:
            yield offset + t, cls
        if repeat <= 0.0:
            return
        offset += repeat


def arrival_process(
    spec: ServiceSpec, seed: int
) -> Iterator[Tuple[float, Optional[str]]]:
    """The arrival stream ``spec`` describes: ``(time, class-override)``
    pairs, lazily, deterministic in ``seed``."""
    start = float(spec.param("start", 0.0))
    if spec.arrival == "poisson":
        times = poisson_process(
            spec.rate,
            rng_factory=RngFactory(seed),
            start=start,
            modulators=_spec_modulators(spec),
        )
        return ((t, None) for t in times)
    if spec.arrival == "uniform":
        return ((t, None) for t in uniform_process(spec.rate, start=start))
    trace = spec.param("trace")
    require(trace is not None, "trace arrivals need a 'trace' param (file path)")
    return trace_process(
        load_trace(str(trace)), repeat=float(spec.param("trace_repeat", 0.0))
    )
