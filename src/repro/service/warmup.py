"""Warm-up truncation and convergence detection for windowed series.

A service run's first windows measure an empty, filling cluster; keeping
them biases every steady-state average.  Two standard detectors over the
per-window series:

* **MSER-5** (White's Marginal Standard Error Rule, batch size 5): pick
  the truncation point that minimizes the standard error of the
  remaining mean — the widely recommended default for simulation output
  analysis.
* **sliding-cv**: the first window where the coefficient of variation of
  the trailing ``span`` windows drops below a threshold — the "report
  loop settles" heuristic an elastic controller would use online.

Both return a window *count* to discard; ``converged=False`` (warm-up
spans the whole run) means the run never reached steady state and its
post-warm-up aggregates should be treated as unconverged.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..util.validation import require

__all__ = ["detect_warmup", "mser5", "sliding_cv"]


def mser5(series: Sequence[float], batch: int = 5) -> Tuple[int, bool]:
    """(windows to discard, converged) by the MSER-``batch`` rule.

    The series is averaged into batches of ``batch`` windows; truncation
    candidates are batch boundaries in the first half of the run (the
    standard guard against the statistic collapsing at the tail).
    """
    require(batch >= 1, "batch must be >= 1")
    values = np.asarray([v for v in series if v == v], dtype=float)  # drop NaN
    n_batches = len(values) // batch
    if n_batches < 2:
        return 0, False
    batches = values[: n_batches * batch].reshape(n_batches, batch).mean(axis=1)
    # standard error of the mean over batches d..end, for each candidate d
    best_d, best_se = 0, np.inf
    for d in range(0, max(1, n_batches // 2)):
        tail = batches[d:]
        se = float(tail.std(ddof=0)) / np.sqrt(len(tail))
        if se < best_se:
            best_d, best_se = d, se
    return best_d * batch, True


def sliding_cv(
    series: Sequence[float], threshold: float, span: int
) -> Tuple[int, bool]:
    """First index where CV(trailing ``span`` windows) < ``threshold``.

    Returns ``(len(series), False)`` when the series never settles —
    warm-up swallowed the run.
    """
    require(span >= 2, "span must be >= 2")
    require(threshold > 0, "threshold must be > 0")
    values = np.asarray(list(series), dtype=float)
    for end in range(span, len(values) + 1):
        window = values[end - span : end]
        if np.isnan(window).any():
            continue
        mean = float(window.mean())
        if mean == 0.0:
            continue
        cv = float(window.std(ddof=0)) / abs(mean)
        if cv < threshold:
            return end - span, True
    return len(values), False


def detect_warmup(
    method: str,
    series: Sequence[float],
    *,
    cv_threshold: float = 0.10,
    cv_span: int = 5,
) -> Tuple[int, bool]:
    """Dispatch on a :class:`~repro.service.spec.ServiceSpec` method name."""
    if method == "none" or len(series) == 0:
        return 0, True
    if method == "mser-5":
        return mser5(series)
    if method == "sliding-cv":
        return sliding_cv(series, cv_threshold, cv_span)
    raise KeyError(f"unknown warmup method {method!r}")  # pragma: no cover
