"""Windowed steady-state metrics: what a service run reports.

The report period divides the run into fixed windows.  Some window
columns must be sampled *live* (queue depth, running cores — the state
no longer exists once the run ends); the rest are computed exactly from
task metrics after the run (utilization as busy core-seconds overlapped
onto each window, completions and turnarounds by ``finished_at``).
Everything lands in plain frozen dataclasses of primitives and tuples so
a :class:`ServiceReport` rides the result-cache codec and compares
``==`` across processes — the bit-identity the determinism tests pin.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..metrics.collector import MetricsRegistry
from ..metrics.report import format_table
from ..util.validation import require

__all__ = ["ClassLatency", "ServiceReport", "WindowAccumulator", "WindowRecord"]


@dataclass(frozen=True, eq=False)
class WindowRecord:
    """One report-period window of a service run.

    Equality is NaN-aware: an empty window's ``mean_turnaround`` is NaN,
    and a report decoded in another process must still compare ``==`` to
    the original (plain float NaN would break the tuple comparison)."""

    index: int
    start: float
    end: float
    #: stream arrivals offered in the window (admitted + rejected)
    arrivals: int
    admitted: int
    rejected: int
    #: tasks whose completion fell inside the window
    completed: int
    failed: int
    #: scheduler backlog sampled at the window boundary
    queue_depth: int
    #: tasks executing at the window boundary
    running: int
    #: time-averaged busy-core fraction over the window
    utilization: float
    #: mean turnaround of the window's completions (NaN when none)
    mean_turnaround: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowRecord):
            return NotImplemented
        for f in dataclasses.fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if a != b and not (a != a and b != b):  # NaN == NaN here
                return False
        return True

    def __hash__(self) -> int:
        return hash((self.index, self.start, self.end, self.arrivals))


@dataclass(frozen=True)
class ClassLatency:
    """Steady-state turnaround distribution for one workload class."""

    wclass: str
    count: int
    mean: float
    p50: float
    p95: float
    p99: float


@dataclass(frozen=True)
class ServiceReport:
    """The condensed, cacheable outcome of one open-loop service run."""

    scenario: str
    seed: int
    #: every window, in order (the last may be partial at the horizon)
    windows: Tuple[WindowRecord, ...]
    #: windows discarded as warm-up
    warmup_windows: int
    #: whether the chosen metric stabilized before the run ended
    converged: bool
    #: totals over the whole run
    offered: int
    admitted: int
    rejected: int
    completed: int
    failed: int
    #: simulated time the service observed (first arrival scheduling to stop)
    duration: float
    #: post-warm-up aggregates
    steady_utilization: float
    steady_queue_depth: float
    steady_throughput: float
    #: per-class turnaround percentiles over post-warm-up completions
    class_latency: Tuple[ClassLatency, ...] = ()
    notes: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    @property
    def admitted_fraction(self) -> float:
        return self.admitted / self.offered if self.offered else 1.0

    @property
    def steady_windows(self) -> Tuple[WindowRecord, ...]:
        return self.windows[self.warmup_windows :]

    def latency(self, wclass: str) -> ClassLatency:
        for cl in self.class_latency:
            if cl.wclass == wclass:
                return cl
        raise KeyError(f"no steady-state completions for class {wclass!r}")

    def to_table(self, float_fmt: str = "{:.2f}") -> str:
        rows = [
            [
                f"w{w.index}{'*' if w.index < self.warmup_windows else ''}",
                w.start, w.end, float(w.arrivals), float(w.admitted),
                float(w.rejected), float(w.completed), float(w.queue_depth),
                w.utilization, w.mean_turnaround,
            ]
            for w in self.windows
        ]
        body = format_table(
            ["window", "start", "end", "offered", "admitted", "rejected",
             "completed", "queue", "util", "turnaround"],
            rows,
            title=(
                f"{self.scenario}: {len(self.windows)} windows "
                f"({self.warmup_windows} warm-up{'' if self.converged else ', NOT converged'})"
            ),
            float_fmt=float_fmt,
        )
        lines = [
            body,
            f"  offered={self.offered} admitted={self.admitted} "
            f"rejected={self.rejected} completed={self.completed} failed={self.failed}",
            f"  steady state: util={self.steady_utilization:.3f} "
            f"queue={self.steady_queue_depth:.1f} "
            f"throughput={self.steady_throughput * 3600.0:.1f}/h",
        ]
        for cl in self.class_latency:
            lines.append(
                f"  {cl.wclass}: n={cl.count} turnaround mean={cl.mean:.2f} "
                f"p50={cl.p50:.2f} p95={cl.p95:.2f} p99={cl.p99:.2f}"
            )
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_table()


# --------------------------------------------------------------------------- #
# live accumulation + post-run assembly
# --------------------------------------------------------------------------- #

@dataclass
class _LiveWindow:
    """Mutable per-window counters the run loop maintains."""

    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    queue_depth: int = 0
    running: int = 0


class WindowAccumulator:
    """Collect live window samples during the run, then assemble the
    exact :class:`ServiceReport` from the task metrics afterwards."""

    def __init__(self, window: float, total_cores: int) -> None:
        require(window > 0, "window must be > 0")
        require(total_cores > 0, "total_cores must be > 0")
        self.window = float(window)
        self.total_cores = int(total_cores)
        self._live: List[_LiveWindow] = [_LiveWindow()]
        self._closed = 0  # windows already boundary-sampled
        #: task name -> cores (needed for utilization; metrics don't store it)
        self.cores_of: Dict[str, int] = {}

    # ---- live side (called from engine events) ----------------------- #
    @property
    def current(self) -> _LiveWindow:
        return self._live[-1]

    def on_offered(self, admitted: bool) -> None:
        w = self.current
        w.arrivals += 1
        if admitted:
            w.admitted += 1
        else:
            w.rejected += 1

    def on_boundary(self, queue_depth: int, running: int) -> None:
        """Close the current window (sampling its boundary state) and
        open the next."""
        w = self.current
        w.queue_depth = int(queue_depth)
        w.running = int(running)
        self._closed += 1
        self._live.append(_LiveWindow())

    # ---- assembly ----------------------------------------------------- #
    def _window_bounds(self, start: float, stop: float) -> List[Tuple[float, float]]:
        bounds = []
        n = len(self._live)
        # the trailing live window is partial iff the run stopped mid-window
        for i in range(n):
            ws = start + i * self.window
            we = min(start + (i + 1) * self.window, stop)
            if we <= ws and i > 0:
                break
            bounds.append((ws, max(we, ws)))
        return bounds

    def busy_core_seconds(
        self,
        metrics: MetricsRegistry,
        bounds: Sequence[Tuple[float, float]],
        stop: float,
    ) -> List[float]:
        """Exact busy core-seconds per window from task start/finish
        intervals; tasks still running at ``stop`` count up to ``stop``."""
        busy = [0.0] * len(bounds)
        if not bounds:
            return busy
        first = bounds[0][0]
        for tm in metrics.tasks():
            if tm.started_at is None:
                continue
            t0 = float(tm.started_at)
            t1 = float(tm.finished_at) if tm.finished_at is not None else float(stop)
            if t1 <= first or t1 <= t0:
                continue
            cores = self.cores_of.get(tm.owner, 1)
            lo = max(0, int((t0 - first) // self.window))
            for i in range(lo, len(bounds)):
                ws, we = bounds[i]
                if ws >= t1:
                    break
                overlap = min(we, t1) - max(ws, t0)
                if overlap > 0:
                    busy[i] += overlap * cores
        return busy

    def assemble(
        self,
        *,
        scenario: str,
        seed: int,
        metrics: MetricsRegistry,
        start: float,
        stop: float,
        offered: int,
        admitted: int,
        rejected: int,
        warmup_method: str,
        warmup_metric: str,
        cv_threshold: float,
        cv_span: int,
        submitted: Optional[Set[str]] = None,
        notes: Tuple[str, ...] = (),
    ) -> ServiceReport:
        """Build the final report (windows, warm-up cut, steady tails)."""
        from .warmup import detect_warmup

        bounds = self._window_bounds(start, stop)
        busy = self.busy_core_seconds(metrics, bounds, stop)

        # completions / turnarounds by finishing window
        done_in: List[List[float]] = [[] for _ in bounds]
        failed_in = [0] * len(bounds)
        steady_pool: Dict[str, List[float]] = {}
        tracked = [
            t for t in metrics.tasks()
            if submitted is None or t.owner in submitted
        ]
        for tm in tracked:
            if tm.finished_at is None:
                continue
            idx = min(
                len(bounds) - 1,
                max(0, int((float(tm.finished_at) - start) // self.window)),
            ) if bounds else 0
            if tm.failed:
                failed_in[idx] += 1
            elif bounds:
                done_in[idx].append(float(tm.turnaround))

        windows: List[WindowRecord] = []
        for i, (ws, we) in enumerate(bounds):
            live = self._live[i] if i < len(self._live) else _LiveWindow()
            span = we - ws
            util = busy[i] / (span * self.total_cores) if span > 0 else 0.0
            turnarounds = done_in[i]
            windows.append(
                WindowRecord(
                    index=i,
                    start=ws,
                    end=we,
                    arrivals=live.arrivals,
                    admitted=live.admitted,
                    rejected=live.rejected,
                    completed=len(turnarounds),
                    failed=failed_in[i],
                    queue_depth=live.queue_depth,
                    running=live.running,
                    utilization=min(1.0, util),
                    mean_turnaround=(
                        float(np.mean(turnarounds)) if turnarounds else math.nan
                    ),
                )
            )

        series = {
            "utilization": [w.utilization for w in windows],
            "queue_depth": [float(w.queue_depth) for w in windows],
            "turnaround": [w.mean_turnaround for w in windows],
            "completed": [float(w.completed) for w in windows],
        }[warmup_metric]
        warmup_windows, converged = detect_warmup(
            warmup_method, series, cv_threshold=cv_threshold, cv_span=cv_span
        )

        steady = windows[warmup_windows:]
        steady_start = start + warmup_windows * self.window
        for tm in tracked:
            if tm.done and float(tm.finished_at) >= steady_start:
                steady_pool.setdefault(tm.wclass, []).append(float(tm.turnaround))
        class_latency = []
        for wclass in sorted(steady_pool):
            pool = np.asarray(steady_pool[wclass], dtype=float)
            p50, p95, p99 = np.percentile(pool, MetricsRegistry.QUANTILES)
            class_latency.append(
                ClassLatency(
                    wclass, len(pool), float(np.mean(pool)),
                    float(p50), float(p95), float(p99),
                )
            )

        steady_span = sum(w.duration for w in steady)
        completed = sum(w.completed for w in windows)
        failed = sum(w.failed for w in windows)
        return ServiceReport(
            scenario=scenario,
            seed=int(seed),
            windows=tuple(windows),
            warmup_windows=warmup_windows,
            converged=converged,
            offered=int(offered),
            admitted=int(admitted),
            rejected=int(rejected),
            completed=completed,
            failed=failed,
            duration=stop - start,
            steady_utilization=(
                float(np.mean([w.utilization for w in steady])) if steady else 0.0
            ),
            steady_queue_depth=(
                float(np.mean([w.queue_depth for w in steady])) if steady else 0.0
            ),
            steady_throughput=(
                sum(w.completed for w in steady) / steady_span if steady_span > 0 else 0.0
            ),
            class_latency=tuple(class_latency),
            notes=notes,
        )
