"""Steady-state service mode: open-loop arrivals, windowed metrics,
warm-up detection, and admission control.

Batch scenarios answer "how long does this job set take?"; the service
layer answers the operational question — "what does the cluster look
like under sustained load?".  Arrivals are *open-loop* (the stream does
not wait for completions, so overload shows up as queue growth and shed
load rather than as a stretched makespan), the run is divided into fixed
report windows, an initial transient is truncated by MSER-5 or a
sliding-CV test, and a pluggable admission policy decides which arrivals
the cluster accepts.

Layering: this package sits *below* :mod:`repro.scenarios` (which embeds
a :class:`ServiceSpec` into :class:`ScenarioSpec`) and *above* the
engine/scheduler/envs stack it drives.
"""

from .admission import (
    AcceptAll,
    AdmissionPolicy,
    ClusterView,
    MemoryHeadroomGate,
    QueueDepthCap,
    build_admission,
)
from .arrivals import (
    arrival_process,
    burst_modulator,
    diurnal_modulator,
    load_trace,
    modulated_rate,
    poisson_process,
    trace_process,
    uniform_process,
)
from .metrics import ClassLatency, ServiceReport, WindowAccumulator, WindowRecord
from .run import ServiceRun, serve
from .spec import (
    ADMISSION_POLICIES,
    ARRIVAL_SOURCES,
    WARMUP_METHODS,
    WARMUP_METRICS,
    ServiceSpec,
)
from .stream import TaskStream
from .warmup import detect_warmup, mser5, sliding_cv

__all__ = [
    "ADMISSION_POLICIES",
    "ARRIVAL_SOURCES",
    "WARMUP_METHODS",
    "WARMUP_METRICS",
    "AcceptAll",
    "AdmissionPolicy",
    "ClassLatency",
    "ClusterView",
    "MemoryHeadroomGate",
    "QueueDepthCap",
    "ServiceReport",
    "ServiceRun",
    "ServiceSpec",
    "TaskStream",
    "WindowAccumulator",
    "WindowRecord",
    "arrival_process",
    "build_admission",
    "burst_modulator",
    "detect_warmup",
    "diurnal_modulator",
    "load_trace",
    "modulated_rate",
    "mser5",
    "poisson_process",
    "serve",
    "sliding_cv",
    "trace_process",
    "uniform_process",
]
