"""``python -m repro obs`` — inspect telemetry run directories.

Subcommands:

``summary DIR``
    Per-experiment span/counter rollups: total wall time per span name,
    counter totals grouped by experiment scope, drop accounting.
``trace DIR [--out FILE] [--check]``
    (Re-)emit the Chrome trace_event JSON from ``run.json``; ``--check``
    validates the document structurally and exits non-zero on problems.
``top DIR [-n N]``
    The N most expensive span names by cumulative self-inclusive time.
``tail DIR [-n N]``
    The last N windows of a live service stream (``live.ndjson``, written
    by ``scenarios serve --live``): window counters plus per-node tier
    occupancy and the stall proxy.

``summary`` and ``top`` take ``--json`` to emit their rollups as one
machine-readable JSON document instead of tables; ``tail --json`` echoes
the raw NDJSON payloads.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

from ..metrics.report import format_table
from .exporters import (
    TRACE_FILE,
    find_run_dirs,
    load_insight_record,
    load_run_dir,
    percentile,
    to_chrome_trace,
    validate_chrome_trace,
)
from .insight import LIVE_FILE, format_live_window
from .telemetry import TelemetryRecord, split_label

__all__ = ["main"]


def _load(path: str) -> TelemetryRecord:
    try:
        return load_run_dir(path)
    except FileNotFoundError:
        raise SystemExit(f"no run.json under {path!r} — was this written by --telemetry?")


def _span_rollup(record: TelemetryRecord) -> List[List[object]]:
    agg: Dict[str, List[float]] = {}
    for s in record.spans:
        agg.setdefault(s.name, []).append(s.duration)
    rows = []
    for name in sorted(agg, key=lambda n: -sum(agg[n])):
        durs = agg[name]
        rows.append(
            [name, len(durs), sum(durs), percentile(durs, 50), max(durs)]
        )
    return rows


def _counter_rollup(record: TelemetryRecord) -> List[List[object]]:
    """Counter totals grouped by the ``exp`` scope label."""
    rows = []
    for key in sorted(record.counters):
        name, labels = split_label(key)
        exp = labels.pop("exp", "-")
        label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"
        rows.append([exp, name, label_str, record.counters[key]])
    rows.sort(key=lambda r: (str(r[0]), str(r[1]), str(r[2])))
    return rows


def _summary_doc(run_dir: str, record: TelemetryRecord) -> dict:
    """One run's rollups as a JSON-ready document (``summary --json``)."""
    doc: dict = {
        "dir": run_dir,
        "run_id": record.run_id,
        "meta": dict(record.meta),
        "workers": list(record.workers),
        "spans": [
            {"span": name, "count": count, "total": total, "p50": p50, "max": mx}
            for name, count, total, p50, mx in _span_rollup(record)
        ],
        "counters": [
            {"experiment": exp, "counter": name, "labels": labels, "total": total}
            for exp, name, labels, total in _counter_rollup(record)
        ],
        "events": len(record.events),
        "dropped": {
            "spans": record.dropped_spans,
            "events": record.dropped_events,
            "observations": record.dropped_observations,
        },
    }
    insight = load_insight_record(run_dir)
    if insight is not None:
        counts, nbytes = _ledger_by_kind(insight)
        doc["insight"] = {
            "ledger_entries": len(insight.entries),
            "ledger_dropped": insight.dropped,
            "counts_by_kind": counts,
            "bytes_by_kind": nbytes,
            "nodes": sorted(insight.series, key=str),
            "samples_seen": dict(insight.samples_seen),
        }
    return doc


def _ledger_by_kind(insight) -> "tuple[Dict[str, int], Dict[str, int]]":
    """Entry and byte totals per ledger kind, from the drop-proof totals."""
    counts: Dict[str, int] = {}
    nbytes: Dict[str, int] = {}
    for (kind, _cause, _src, _dst), (n, _chunks, b) in insight.totals.items():
        counts[kind] = counts.get(kind, 0) + int(n)
        nbytes[kind] = nbytes.get(kind, 0) + int(b)
    return counts, nbytes


def _print_insight_summary(run_dir: str) -> None:
    """Append the insight-plane rollup to a text summary, when present."""
    insight = load_insight_record(run_dir)
    if insight is None:
        return
    counts, nbytes = _ledger_by_kind(insight)
    if counts:
        print()
        rows = [
            [kind, float(counts[kind]), float(nbytes.get(kind, 0))]
            for kind in sorted(counts)
        ]
        print(
            format_table(
                ["kind", "entries", "bytes"],
                rows,
                title="migration ledger",
                float_fmt="{:.0f}",
            )
        )
    if insight.series:
        nodes = ", ".join(sorted(insight.series, key=str))
        total = sum(insight.samples_seen.values())
        print()
        print(f"  tier series: {len(insight.series)} node(s) [{nodes}], "
              f"{total} samples")


def _cmd_summary(args: argparse.Namespace) -> int:
    dirs = find_run_dirs(args.dir) or [args.dir]
    if getattr(args, "json", False):
        docs = [_summary_doc(run_dir, _load(run_dir)) for run_dir in dirs]
        json.dump(docs, sys.stdout, indent=2, sort_keys=True, default=str)
        print()
        return 0
    for run_dir in dirs:
        record = _load(run_dir)
        print(f"run {record.run_id!r}  ({run_dir})")
        if record.meta:
            meta = ", ".join(f"{k}={v}" for k, v in sorted(record.meta.items()))
            print(f"  meta: {meta}")
        if record.workers:
            print(f"  workers: {', '.join(record.workers)}")
        span_rows = _span_rollup(record)
        if span_rows:
            print()
            print(
                format_table(
                    ["span", "count", "total s", "p50 s", "max s"],
                    span_rows,
                    title="spans",
                    float_fmt="{:.4f}",
                )
            )
        counter_rows = _counter_rollup(record)
        if counter_rows:
            print()
            print(
                format_table(
                    ["experiment", "counter", "labels", "total"],
                    counter_rows,
                    title="counters",
                    float_fmt="{:.0f}",
                )
            )
        if record.histograms:
            print()
            hist_rows = [
                [
                    name,
                    len(vals),
                    percentile(vals, 50),
                    percentile(vals, 95),
                    percentile(vals, 99),
                ]
                for name, vals in sorted(record.histograms.items())
            ]
            print(
                format_table(
                    ["histogram", "n", "p50", "p95", "p99"],
                    hist_rows,
                    title="histograms",
                    float_fmt="{:.3f}",
                )
            )
        dropped = record.dropped_spans + record.dropped_events + record.dropped_observations
        print()
        print(
            f"  events: {len(record.events)}  spans: {len(record.spans)}  "
            f"dropped: {dropped} "
            f"(spans={record.dropped_spans}, events={record.dropped_events}, "
            f"obs={record.dropped_observations})"
        )
        _print_insight_summary(run_dir)
        print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    record = _load(args.dir)
    # re-emitting from a run dir that carries an insight record keeps its
    # counter tracks (tier occupancy/stall/temp) in the regenerated trace
    doc = to_chrome_trace(record, load_insight_record(args.dir))
    if args.check:
        problems = validate_chrome_trace(doc)
        if problems:
            for p in problems:
                print(f"trace invalid: {p}", file=sys.stderr)
            return 1
        print(f"trace OK: {len(doc['traceEvents'])} events")
    out = args.out or os.path.join(args.dir, TRACE_FILE)
    with open(out, "w") as fh:
        json.dump(doc, fh, default=str)
    print(f"wrote {out} — open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    record = _load(args.dir)
    rows = _span_rollup(record)[: args.n]
    if getattr(args, "json", False):
        doc = [
            {"span": name, "count": count, "total": total, "p50": p50, "max": mx}
            for name, count, total, p50, mx in rows
        ]
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    if not rows:
        print("(no spans recorded)")
        return 0
    print(
        format_table(
            ["span", "count", "total s", "p50 s", "max s"],
            rows,
            title=f"top {len(rows)} spans by total wall time",
            float_fmt="{:.4f}",
        )
    )
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    path = args.dir if args.dir.endswith(".ndjson") else os.path.join(args.dir, LIVE_FILE)
    if not os.path.isfile(path):
        raise SystemExit(
            f"no {LIVE_FILE} under {args.dir!r} — was this written by serve --live?"
        )
    with open(path, encoding="utf-8") as fh:
        lines = [ln.strip() for ln in fh if ln.strip()]
    windows = lines[-args.n:] if args.n > 0 else lines
    if getattr(args, "json", False):
        for ln in windows:
            print(ln)
        return 0
    print(f"{path}: {len(lines)} window(s), showing last {len(windows)}")
    for ln in windows:
        try:
            payload = json.loads(ln)
        except json.JSONDecodeError:
            # a live stream's final line may still be mid-write; skip it
            continue
        print(format_live_window(payload))
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Inspect telemetry run directories written by --telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="span/counter rollups for a run dir tree")
    p_summary.add_argument("dir", help="telemetry directory (searched recursively)")
    p_summary.add_argument(
        "--json", action="store_true", help="emit the rollups as a JSON document"
    )
    p_summary.set_defaults(fn=_cmd_summary)

    p_trace = sub.add_parser("trace", help="emit/validate Chrome trace_event JSON")
    p_trace.add_argument("dir", help="telemetry run directory")
    p_trace.add_argument("--out", default=None, help="output path (default: DIR/trace.json)")
    p_trace.add_argument(
        "--check", action="store_true", help="validate against the trace_event schema"
    )
    p_trace.set_defaults(fn=_cmd_trace)

    p_top = sub.add_parser("top", help="most expensive spans")
    p_top.add_argument("dir", help="telemetry run directory")
    p_top.add_argument("-n", type=int, default=15, help="how many rows (default 15)")
    p_top.add_argument(
        "--json", action="store_true", help="emit the rows as a JSON document"
    )
    p_top.set_defaults(fn=_cmd_top)

    p_tail = sub.add_parser(
        "tail", help="render the last windows of a live service stream"
    )
    p_tail.add_argument("dir", help="--live directory (or a live.ndjson path)")
    p_tail.add_argument(
        "-n", type=int, default=10, help="how many windows (default 10, 0 = all)"
    )
    p_tail.add_argument(
        "--json", action="store_true", help="echo the raw NDJSON payloads"
    )
    p_tail.set_defaults(fn=_cmd_tail)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
