"""The unified telemetry backbone: counters, gauges, histograms, spans,
and a structured event sink, all owned by one run-scoped :class:`Telemetry`
context.

Design constraints (why this module looks the way it does):

* **Disabled by default, null-object based.**  Every emission point in the
  stack calls the module-level dispatchers (:func:`counter`, :func:`span`,
  :func:`event`, ...), which forward to the *active* telemetry — a shared
  :class:`NullTelemetry` singleton unless a run explicitly activates a
  real context via :func:`session`.  The disabled path is one function
  call plus one no-op method call, with no branching at the call site;
  ``benchmarks/bench_obs.py`` proves the overhead stays under budget.
* **Two timebases.**  Spans measure *wall clock* (``perf_counter``
  relative to the context's epoch) — they answer "where did the
  simulator's own time go?".  Events carry *simulated* timestamps — they
  unify what :class:`~repro.sim.trace.Tracer` records (task lifecycle,
  faults, daemon ticks) under the same run record.
* **Mergeable across forks.**  :meth:`Telemetry.snapshot` produces a
  plain, picklable :class:`TelemetryRecord`; :meth:`Telemetry.merge`
  folds a worker's record back into the parent — counters sum, spans are
  re-parented under the caller's open span, events keep their worker
  annotation — so a ``jobs=N`` sweep yields the same counter totals and
  span tree as a sequential run (modulo wall-clock values).

Everything here is stdlib-only and imports nothing else from
:mod:`repro`, so any layer of the stack can emit without import cycles.
"""

from __future__ import annotations

import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "NULL",
    "NullTelemetry",
    "SpanRecord",
    "Telemetry",
    "TelemetryRecord",
    "activate",
    "active",
    "add_label",
    "counter",
    "enabled",
    "event",
    "gauge",
    "observe",
    "session",
    "span",
    "split_label",
    "worker_telemetry",
]


# --------------------------------------------------------------------------- #
# metric keys
# --------------------------------------------------------------------------- #

def metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical counter/gauge key: ``name`` or ``name{k=v,k2=v2}`` with
    labels sorted, so the same logical series always lands in one slot."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_label(key: str) -> "tuple[str, dict[str, str]]":
    """Inverse of :func:`metric_key` (labels come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


def add_label(key: str, **extra: Any) -> str:
    """Return ``key`` with ``extra`` labels folded in (used by scoped
    merges to attribute a child record's counters, e.g. ``exp=fig05``)."""
    name, labels = split_label(key)
    labels.update({k: str(v) for k, v in extra.items()})
    return metric_key(name, labels)


# --------------------------------------------------------------------------- #
# records
# --------------------------------------------------------------------------- #

@dataclass
class SpanRecord:
    """One closed wall-clock span.

    ``start``/``end`` are seconds relative to the owning record's
    ``epoch_wall``; ``parent_id`` is ``None`` for root spans.  ``worker``
    is empty for the main process and the forwarding worker's id for
    spans merged in from a pool worker.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    worker: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TelemetryRecord:
    """Plain, picklable, JSON-round-trippable snapshot of one context."""

    run_id: str
    meta: Dict[str, Any] = field(default_factory=dict)
    epoch_wall: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, List[float]] = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    workers: List[str] = field(default_factory=list)
    dropped_spans: int = 0
    dropped_events: int = 0
    dropped_observations: int = 0

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetryRecord":
        payload = dict(data)
        payload["spans"] = [SpanRecord(**s) for s in payload.get("spans", [])]
        return cls(**payload)

    # ------------------------------------------------------------------ #
    def span_children(self) -> Dict[Optional[int], List[SpanRecord]]:
        """``parent_id -> children`` index, in recording order."""
        tree: Dict[Optional[int], List[SpanRecord]] = {}
        for s in self.spans:
            tree.setdefault(s.parent_id, []).append(s)
        return tree

    def span_tree_shape(self) -> "list[tuple[str, Optional[str]]]":
        """``(name, parent name)`` pairs, sorted — the wall-clock-free
        shape of the span tree, used by the merge-determinism tests."""
        by_id = {s.span_id: s for s in self.spans}
        shape = [
            (s.name, by_id[s.parent_id].name if s.parent_id in by_id else None)
            for s in self.spans
        ]
        return sorted(shape)


# --------------------------------------------------------------------------- #
# null objects (the disabled hot path)
# --------------------------------------------------------------------------- #

class _NullSpan:
    """Reusable no-op context manager; one shared instance, zero state."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Telemetry that records nothing — the default active context.

    Every method is a no-op; :meth:`span` hands back one shared null
    context manager, so ``with obs.span(...)`` costs three cheap calls
    and zero allocations on the disabled path.
    """

    enabled = False
    run_id = ""

    def counter(self, name: str, value: float = 1, **labels: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, time: float, category: str, subject: str, **data: Any) -> None:
        pass

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> None:
        return None

    def merge(self, record: Any, **kwargs: Any) -> None:
        pass


NULL = NullTelemetry()


# --------------------------------------------------------------------------- #
# the live context
# --------------------------------------------------------------------------- #

class _Span:
    """Open span handle; closing it (context exit) records a SpanRecord."""

    __slots__ = ("_tel", "span_id", "parent_id", "name", "attrs", "_start")

    def __init__(
        self,
        tel: "Telemetry",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self._tel = tel
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs: Any) -> "_Span":
        """Attach attributes to the span while it is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        self._tel._stack.append(self.span_id)
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = time.perf_counter()
        tel = self._tel
        if tel._stack and tel._stack[-1] == self.span_id:
            tel._stack.pop()
        tel._close_span(self, end)
        return False


class Telemetry:
    """One run's telemetry context.

    Parameters
    ----------
    run_id:
        Name of the run, stamped into every export.
    meta:
        Free-form provenance (scenario digests, CLI args, worker id...).
    max_spans / max_events / max_observations:
        Ring bounds; overflow is dropped (newest-first for spans and
        events) and counted, never an error.
    """

    enabled = True

    def __init__(
        self,
        run_id: str = "run",
        meta: Optional[Dict[str, Any]] = None,
        *,
        max_spans: int = 200_000,
        max_events: int = 500_000,
        max_observations: int = 100_000,
    ) -> None:
        self.run_id = str(run_id)
        self.meta: Dict[str, Any] = dict(meta or {})
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self.max_spans = int(max_spans)
        self.max_events = int(max_events)
        self.max_observations = int(max_observations)
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}
        self._spans: List[SpanRecord] = []
        self._stack: List[int] = []
        self._next_span_id = 0
        self._events: "deque[Dict[str, Any]]" = deque()
        self._workers: List[str] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        self.dropped_observations = 0

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def counter(self, name: str, value: float = 1, **labels: Any) -> None:
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self._gauges[metric_key(name, labels)] = float(value)

    def observe(self, name: str, value: float) -> None:
        bucket = self._histograms.setdefault(name, [])
        if len(bucket) >= self.max_observations:
            self.dropped_observations += 1
            return
        bucket.append(float(value))

    # ------------------------------------------------------------------ #
    # spans (wall clock)
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: Any) -> _Span:
        parent = self._stack[-1] if self._stack else None
        span_id = self._next_span_id
        self._next_span_id += 1
        return _Span(self, span_id, parent, name, attrs)

    def _close_span(self, span: _Span, end: float) -> None:
        if len(self._spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self._spans.append(
            SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                name=span.name,
                start=span._start - self._epoch_perf,
                end=end - self._epoch_perf,
                attrs=span.attrs,
            )
        )

    # ------------------------------------------------------------------ #
    # events (simulated time)
    # ------------------------------------------------------------------ #
    def event(self, time: float, category: str, subject: str, **data: Any) -> None:
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            self._events.popleft()
        self._events.append({"t": float(time), "cat": category, "subj": subject, **data})

    # ------------------------------------------------------------------ #
    # snapshot / merge
    # ------------------------------------------------------------------ #
    def snapshot(self) -> TelemetryRecord:
        """Freeze the current state into a plain record (copies, so the
        context may keep accumulating)."""
        return TelemetryRecord(
            run_id=self.run_id,
            meta=dict(self.meta),
            epoch_wall=self.epoch_wall,
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={k: list(v) for k, v in self._histograms.items()},
            spans=[
                SpanRecord(s.span_id, s.parent_id, s.name, s.start, s.end, s.worker, dict(s.attrs))
                for s in self._spans
            ],
            events=list(self._events),
            workers=list(self._workers),
            dropped_spans=self.dropped_spans,
            dropped_events=self.dropped_events,
            dropped_observations=self.dropped_observations,
        )

    def merge(
        self,
        record: Optional[TelemetryRecord],
        *,
        worker: Optional[str] = None,
        scope: Optional[str] = None,
    ) -> None:
        """Fold a child record (pool worker, per-experiment session) in.

        Counters sum and gauges overwrite; with ``scope`` every counter
        and gauge key additionally gets an ``exp=<scope>`` label so
        per-experiment rollups survive aggregation.  The child's root
        spans are re-parented under the currently open span, which is
        what makes a fanned-out sweep's span tree identical in shape to
        the sequential one.
        """
        if record is None:
            return
        worker_id = worker if worker is not None else str(record.meta.get("worker", ""))
        for key, value in record.counters.items():
            if scope is not None:
                key = add_label(key, exp=scope)
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in record.gauges.items():
            if scope is not None:
                key = add_label(key, exp=scope)
            self._gauges[key] = value
        for name, values in record.histograms.items():
            bucket = self._histograms.setdefault(name, [])
            room = self.max_observations - len(bucket)
            bucket.extend(values[:room])
            self.dropped_observations += max(0, len(values) - room)
        offset = self._next_span_id
        attach_to = self._stack[-1] if self._stack else None
        for s in record.spans:
            parent = s.parent_id + offset if s.parent_id is not None else attach_to
            if len(self._spans) >= self.max_spans:
                self.dropped_spans += 1
                continue
            self._spans.append(
                SpanRecord(
                    span_id=s.span_id + offset,
                    parent_id=parent,
                    name=s.name,
                    start=s.start + (record.epoch_wall - self.epoch_wall),
                    end=s.end + (record.epoch_wall - self.epoch_wall),
                    worker=s.worker or worker_id,
                    attrs=dict(s.attrs),
                )
            )
        self._next_span_id += max((s.span_id for s in record.spans), default=-1) + 1
        for ev in record.events:
            if len(self._events) >= self.max_events:
                self.dropped_events += 1
                self._events.popleft()
            out = dict(ev)
            if worker_id and "worker" not in out:
                out["worker"] = worker_id
            self._events.append(out)
        if worker_id and worker_id not in self._workers:
            self._workers.append(worker_id)
        for w in record.workers:
            if w not in self._workers:
                self._workers.append(w)
        self.dropped_spans += record.dropped_spans
        self.dropped_events += record.dropped_events
        self.dropped_observations += record.dropped_observations

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Telemetry {self.run_id!r} counters={len(self._counters)} "
            f"spans={len(self._spans)} events={len(self._events)}>"
        )


# --------------------------------------------------------------------------- #
# module-level dispatch (what the stack's emission points call)
# --------------------------------------------------------------------------- #

_active: "Telemetry | NullTelemetry" = NULL


def active() -> "Telemetry | NullTelemetry":
    """The telemetry context emissions currently flow into."""
    return _active


def enabled() -> bool:
    return _active.enabled


def activate(tel: "Telemetry | NullTelemetry") -> "Telemetry | NullTelemetry":
    """Install ``tel`` as the active context; returns the previous one."""
    global _active
    previous = _active
    _active = tel
    return previous


@contextmanager
def session(tel: "Telemetry | NullTelemetry") -> Iterator["Telemetry | NullTelemetry"]:
    """Scope ``tel`` as the active context for the ``with`` body."""
    previous = activate(tel)
    try:
        yield tel
    finally:
        activate(previous)


def counter(name: str, value: float = 1, **labels: Any) -> None:
    _active.counter(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    _active.gauge(name, value, **labels)


def observe(name: str, value: float) -> None:
    _active.observe(name, value)


def event(time: float, category: str, subject: str, **data: Any) -> None:
    _active.event(time, category, subject, **data)


def span(name: str, **attrs: Any) -> "_Span | _NullSpan":
    return _active.span(name, **attrs)


def worker_telemetry() -> Optional[Telemetry]:
    """A fresh child context for a forked pool worker, or ``None`` when
    telemetry is disabled (the worker then runs bare).

    Forked children inherit the parent's active context object; mutating
    it would be invisible to the parent, so the executor swaps in a fresh
    context, runs the work item, and ships the snapshot back for
    :meth:`Telemetry.merge`.
    """
    if not _active.enabled:
        return None
    return Telemetry(run_id=_active.run_id, meta={"worker": f"pid{os.getpid()}"})
