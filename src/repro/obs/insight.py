"""The memory-introspection plane: migration ledger, tier time-series,
and live service signals.

``repro.obs.insight`` answers *why* memory moved, not just how much.  It
rides the same null-object discipline as :mod:`repro.obs.telemetry` — a
module-level ``_active`` context defaulting to a shared no-op ``NULL``,
so every emission point is one function call plus one no-op method call
when the plane is off — and adds three surfaces on top:

* the **migration ledger** — a bounded, append-only record of every
  movement-daemon decision (promote / demote / swap-in / swap-out /
  page-cache shadow / shadow-drop / reclaim / evacuate) with its cause,
  owning task, source→destination tier, chunk count, byte count and
  sim-time.  Per-``(kind, cause, src, dst)`` totals are maintained
  unconditionally and survive entry overflow, so counts reconcile
  exactly against :class:`repro.memory.system.MemoryTrafficStats` even
  when individual entries are dropped.
* the **tier time-series sampler** — per-node ring buffers (numpy) of
  per-tier occupancy and free bytes, temperature-distribution quantiles
  and a latency-weighted slow-tier stall proxy, sampled on the cluster
  daemon tick and automatically downsampled (halve + double the stride)
  when a ring fills, so memory stays bounded on arbitrarily long runs.
* the **live service surface** — :class:`LiveMetricsWriter` appends one
  NDJSON line per closed service window and atomically rewrites a
  Prometheus-style text snapshot, feeding ``obs tail`` and
  ``scenarios serve --live``.

:class:`SignalView` is the read API: autoscaling/admission policies and
the exporters consume the same signals through it, so policy research
and observability can never drift apart.

This module deliberately does **not** import ``repro.memory`` —
``memory.system`` imports ``repro.obs``, so the tier vocabulary is
mirrored here as :data:`TIER_LABELS` and pinned by a sync test
(``tests/test_insight.py``).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional

import numpy as np

# --------------------------------------------------------------------------- #
# tier vocabulary (mirror of repro.memory.tiers — see module docstring)
# --------------------------------------------------------------------------- #

TIER_LABELS = ("dram", "pmem", "cxl", "swap")
NUM_TIERS = len(TIER_LABELS)
_DRAM = 0
_SWAP = 3

#: every ledger kind the plane can record
LEDGER_KINDS = (
    "promote",
    "demote",
    "swap-in",
    "swap-out",
    "shadow",
    "shadow-drop",
    "reclaim",
    "evacuate",
)

#: the positional layout of one ledger entry tuple
LEDGER_FIELDS = ("t", "node", "kind", "cause", "task", "src", "dst", "chunks", "bytes")

#: quantiles of the per-node temperature distribution the sampler captures
TEMP_QUANTILES = (0.5, 0.9, 0.99)

#: sentinel tier index for "not a single tier" (evacuation fan-out, reclaim)
ANY_TIER = -1


def movement_kind(src: int, dst: int) -> str:
    """Classify a tier movement from its endpoints.

    Anything landing in swap is a swap-out, anything leaving swap is a
    swap-in; otherwise moving toward a faster (lower-numbered) tier is a
    promotion and away from it a demotion.
    """
    if dst == _SWAP:
        return "swap-out"
    if src == _SWAP:
        return "swap-in"
    return "promote" if dst < src else "demote"


def tier_label(index: int) -> str:
    """Human label for a tier index; ``*`` for the :data:`ANY_TIER` sentinel."""
    if 0 <= index < NUM_TIERS:
        return TIER_LABELS[index]
    return "*"


def entry_dict(entry: tuple) -> dict[str, Any]:
    """One ledger entry tuple as a JSON-ready mapping."""
    out = dict(zip(LEDGER_FIELDS, entry))
    out["src_tier"] = tier_label(out["src"])
    out["dst_tier"] = tier_label(out["dst"])
    return out


# --------------------------------------------------------------------------- #
# the migration ledger
# --------------------------------------------------------------------------- #


class MigrationLedger:
    """Bounded append-only record of movement decisions.

    Entries are compact tuples (:data:`LEDGER_FIELDS` order).  The ring
    is bounded by ``max_entries``; overflow is dropped and *counted*,
    never an error — but the per-``(kind, cause, src, dst)`` totals are
    updated on every record, so aggregate reconciliation stays exact
    regardless of drops.
    """

    __slots__ = ("max_entries", "entries", "dropped", "totals")

    def __init__(self, max_entries: int = 200_000) -> None:
        self.max_entries = max_entries
        self.entries: list[tuple] = []
        self.dropped = 0
        # (kind, cause, src, dst) -> [entries, chunks, bytes]
        self.totals: dict[tuple, list[int]] = {}

    def record(
        self,
        t: float,
        node: str,
        kind: str,
        cause: str,
        task: str,
        src: int,
        dst: int,
        chunks: int,
        nbytes: int,
    ) -> None:
        key = (kind, cause, src, dst)
        tot = self.totals.get(key)
        if tot is None:
            self.totals[key] = [1, chunks, nbytes]
        else:
            tot[0] += 1
            tot[1] += chunks
            tot[2] += nbytes
        if len(self.entries) < self.max_entries:
            self.entries.append((t, node, kind, cause, task, src, dst, chunks, nbytes))
        else:
            self.dropped += 1

    # ---- aggregate queries ------------------------------------------------ #

    def counts_by_kind(self) -> dict[str, int]:
        """Total recorded decisions per kind (drop-proof)."""
        out: dict[str, int] = {}
        for (kind, _cause, _s, _d), (n, _c, _b) in self.totals.items():
            out[kind] = out.get(kind, 0) + n
        return out

    def bytes_by_kind(self) -> dict[str, int]:
        """Total moved bytes per kind (drop-proof)."""
        out: dict[str, int] = {}
        for (kind, _cause, _s, _d), (_n, _c, b) in self.totals.items():
            out[kind] = out.get(kind, 0) + b
        return out

    def chunks_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for (kind, _cause, _s, _d), (_n, c, _b) in self.totals.items():
            out[kind] = out.get(kind, 0) + c
        return out

    def bytes_by_cause(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for (_kind, cause, _s, _d), (_n, _c, b) in self.totals.items():
            out[cause] = out.get(cause, 0) + b
        return out

    def migrated_matrix(self) -> np.ndarray:
        """Per ``src×dst`` moved bytes for real tier endpoints, the shape
        of ``MemoryTrafficStats.migrated_bytes`` — used by reconciliation
        tests."""
        out = np.zeros((NUM_TIERS, NUM_TIERS), dtype=np.int64)
        for (kind, _cause, s, d), (_n, _c, b) in self.totals.items():
            if kind in ("promote", "demote", "swap-in", "swap-out") and s >= 0 and d >= 0:
                out[s, d] += b
        return out


# --------------------------------------------------------------------------- #
# the tier time-series sampler
# --------------------------------------------------------------------------- #


class _NodeSeries:
    """One node's bounded sample ring.

    When the ring fills it keeps every second stored sample and doubles
    the acceptance stride, so a series never exceeds ``capacity`` rows
    while remaining uniformly spaced over the whole run.
    """

    __slots__ = ("capacity", "count", "stride", "seen", "t", "occupancy", "free",
                 "stall", "temp_q")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.count = 0
        self.stride = 1  # accept every stride-th offered sample
        self.seen = 0
        self.t = np.zeros(capacity, dtype=np.float64)
        self.occupancy = np.zeros((capacity, NUM_TIERS), dtype=np.int64)
        self.free = np.zeros((capacity, NUM_TIERS), dtype=np.int64)
        self.stall = np.zeros(capacity, dtype=np.float64)
        self.temp_q = np.zeros((capacity, len(TEMP_QUANTILES)), dtype=np.float64)

    def push(self, t, occupancy, free, stall, temp_q) -> None:
        offset = self.seen
        self.seen += 1
        if offset % self.stride:
            return
        if self.count == self.capacity:
            half = self.capacity // 2
            for arr in (self.t, self.occupancy, self.free, self.stall, self.temp_q):
                arr[:half] = arr[::2]
            self.count = half
            self.stride *= 2
            if offset % self.stride:
                return
        i = self.count
        self.t[i] = t
        self.occupancy[i] = occupancy
        self.free[i] = free
        self.stall[i] = stall
        self.temp_q[i] = temp_q
        self.count += 1

    def trimmed(self) -> dict[str, np.ndarray]:
        """Copies of the live rows, keyed by series name."""
        n = self.count
        return {
            "t": self.t[:n].copy(),
            "occupancy": self.occupancy[:n].copy(),
            "free": self.free[:n].copy(),
            "stall": self.stall[:n].copy(),
            "temp_q": self.temp_q[:n].copy(),
        }


class TierSampler:
    """Per-node tier time-series, bounded by ``capacity`` rows per node."""

    __slots__ = ("capacity", "nodes")

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.nodes: dict[str, _NodeSeries] = {}

    def push(self, t, node: str, occupancy, free, stall, temp_q) -> None:
        series = self.nodes.get(node)
        if series is None:
            series = self.nodes[node] = _NodeSeries(self.capacity)
        series.push(t, occupancy, free, stall, temp_q)


# --------------------------------------------------------------------------- #
# cause scopes
# --------------------------------------------------------------------------- #


class _NullScope:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _CauseScope:
    __slots__ = ("_stack", "_name", "_pushed")

    def __init__(self, stack: list, name: str, only_if_unset: bool = False) -> None:
        self._stack = stack
        self._name = name
        self._pushed = not (only_if_unset and stack)

    def __enter__(self) -> "_CauseScope":
        if self._pushed:
            self._stack.append(self._name)
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._pushed:
            self._stack.pop()
        return False


# --------------------------------------------------------------------------- #
# the snapshot record (what crosses the fork boundary / lands on disk)
# --------------------------------------------------------------------------- #


class InsightRecord:
    """Picklable, JSON-able snapshot of one :class:`Insight` context."""

    __slots__ = ("run_id", "meta", "entries", "dropped", "totals", "series",
                 "samples_seen", "workers")

    def __init__(
        self,
        run_id: str,
        meta: dict,
        entries: list,
        dropped: int,
        totals: dict,
        series: dict,
        samples_seen: dict,
        workers: list,
    ) -> None:
        self.run_id = run_id
        self.meta = meta
        self.entries = entries
        self.dropped = dropped
        self.totals = totals
        self.series = series  # node -> {"t": array, "occupancy": array, ...}
        self.samples_seen = samples_seen  # node -> offered-sample count
        self.workers = workers

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InsightRecord):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "meta": dict(self.meta),
            "entries": [list(e) for e in self.entries],
            "dropped": self.dropped,
            "totals": {
                "|".join((k[0], k[1], str(k[2]), str(k[3]))): list(v)
                for k, v in self.totals.items()
            },
            "series": {
                node: {name: np.asarray(arr).tolist() for name, arr in s.items()}
                for node, s in self.series.items()
            },
            "samples_seen": dict(self.samples_seen),
            "workers": list(self.workers),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InsightRecord":
        totals = {}
        for key, val in data.get("totals", {}).items():
            kind, cause, src, dst = key.split("|")
            totals[(kind, cause, int(src), int(dst))] = list(val)
        series = {}
        for node, s in data.get("series", {}).items():
            series[node] = {
                "t": np.asarray(s["t"], dtype=np.float64),
                "occupancy": np.asarray(s["occupancy"], dtype=np.int64).reshape(-1, NUM_TIERS),
                "free": np.asarray(s["free"], dtype=np.int64).reshape(-1, NUM_TIERS),
                "stall": np.asarray(s["stall"], dtype=np.float64),
                "temp_q": np.asarray(s["temp_q"], dtype=np.float64).reshape(-1, len(TEMP_QUANTILES)),
            }
        return cls(
            run_id=data.get("run_id", "insight"),
            meta=dict(data.get("meta", {})),
            entries=[tuple(e) for e in data.get("entries", [])],
            dropped=int(data.get("dropped", 0)),
            totals=totals,
            series=series,
            samples_seen=dict(data.get("samples_seen", {})),
            workers=list(data.get("workers", [])),
        )


# --------------------------------------------------------------------------- #
# the contexts
# --------------------------------------------------------------------------- #


class NullInsight:
    """No-op introspection context; the shared default."""

    enabled = False
    run_id = "null"

    def migration(self, *args: Any, **kwargs: Any) -> None:
        pass

    def ledger_event(self, *args: Any, **kwargs: Any) -> None:
        pass

    def sample(self, *args: Any, **kwargs: Any) -> None:
        pass

    def cause(self, name: str) -> _NullScope:
        return _NULL_SCOPE

    def fallback_cause(self, name: str) -> _NullScope:
        return _NULL_SCOPE

    def current_cause(self) -> str:
        return "direct"

    def view(self) -> "SignalView":
        return SignalView(None)

    def snapshot(self) -> None:
        return None

    def merge(self, record: Optional[InsightRecord], worker: Optional[str] = None) -> None:
        pass


NULL = NullInsight()


class Insight:
    """One run's introspection context: ledger + sampler + cause stack."""

    enabled = True

    def __init__(
        self,
        run_id: str = "insight",
        meta: Optional[dict] = None,
        *,
        max_ledger_entries: int = 200_000,
        sampler_capacity: int = 4096,
    ) -> None:
        self.run_id = run_id
        self.meta = dict(meta or {})
        self.ledger = MigrationLedger(max_ledger_entries)
        self.sampler = TierSampler(sampler_capacity)
        self.workers: list[str] = []
        self._cause_stack: list[str] = []

    # ---- causes ----------------------------------------------------------- #

    def cause(self, name: str) -> _CauseScope:
        """Scope: ledger entries recorded inside carry ``cause=name``."""
        return _CauseScope(self._cause_stack, name)

    def fallback_cause(self, name: str) -> _CauseScope:
        """Like :meth:`cause`, but only applies when no cause is active —
        lets a callee label direct invocations without overriding the
        caller's more specific scope."""
        return _CauseScope(self._cause_stack, name, only_if_unset=True)

    def current_cause(self) -> str:
        stack = self._cause_stack
        return stack[-1] if stack else "direct"

    # ---- recording -------------------------------------------------------- #

    def migration(
        self,
        t: float,
        node: str,
        task: str,
        src: int,
        dst: int,
        chunks: int,
        nbytes: int,
    ) -> None:
        """Record one tier movement; kind classified from the endpoints,
        cause taken from the active scope."""
        self.ledger.record(
            t, node, movement_kind(src, dst), self.current_cause(),
            task, src, dst, chunks, nbytes,
        )

    def ledger_event(
        self,
        t: float,
        node: str,
        kind: str,
        task: str,
        src: int,
        dst: int,
        chunks: int,
        nbytes: int,
    ) -> None:
        """Record a non-movement decision (shadow/reclaim/evacuate/...)."""
        self.ledger.record(
            t, node, kind, self.current_cause(), task, src, dst, chunks, nbytes,
        )

    def sample(self, t: float, node: str, occupancy, free, stall, temp_q) -> None:
        self.sampler.push(t, node, occupancy, free, stall, temp_q)

    # ---- reading ---------------------------------------------------------- #

    def view(self) -> "SignalView":
        return SignalView(self)

    # ---- snapshot / merge ------------------------------------------------- #

    def snapshot(self) -> InsightRecord:
        return InsightRecord(
            run_id=self.run_id,
            meta=dict(self.meta),
            entries=list(self.ledger.entries),
            dropped=self.ledger.dropped,
            totals={k: list(v) for k, v in self.ledger.totals.items()},
            series={node: s.trimmed() for node, s in self.sampler.nodes.items()},
            samples_seen={node: s.seen for node, s in self.sampler.nodes.items()},
            workers=list(self.workers),
        )

    def merge(self, record: Optional[InsightRecord], worker: Optional[str] = None) -> None:
        """Fold a child snapshot in, preserving input order.

        Entries are re-appended through the bounded ledger path and
        samples replayed through the ring, so a ``jobs=N`` run converges
        to the same ledger, totals and series a ``jobs=1`` run produces
        (the merge happens in input order, mirroring telemetry).  Totals
        are reconciled separately so entry overflow never skews them.
        """
        if record is None:
            return
        led = self.ledger
        for e in record.entries:
            if len(led.entries) < led.max_entries:
                led.entries.append(e)
            else:
                led.dropped += 1
        led.dropped += record.dropped
        for key, (n, c, b) in record.totals.items():
            tot = led.totals.get(key)
            if tot is None:
                led.totals[key] = [n, c, b]
            else:
                tot[0] += n
                tot[1] += c
                tot[2] += b
        for node, s in record.series.items():
            t_arr = np.asarray(s["t"])
            occ = np.asarray(s["occupancy"])
            free = np.asarray(s["free"])
            stall = np.asarray(s["stall"])
            temp_q = np.asarray(s["temp_q"])
            for i in range(len(t_arr)):
                self.sampler.push(
                    float(t_arr[i]), node, occ[i], free[i],
                    float(stall[i]), temp_q[i],
                )
        wid = worker or record.meta.get("worker")
        if wid and wid not in self.workers:
            self.workers.append(wid)
        for w in record.workers:
            if w not in self.workers:
                self.workers.append(w)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Insight {self.run_id!r} entries={len(self.ledger.entries)} "
            f"nodes={len(self.sampler.nodes)}>"
        )


# --------------------------------------------------------------------------- #
# the read API
# --------------------------------------------------------------------------- #


class SignalView:
    """Read-only view over an introspection context.

    The one API both the exporters *and* upcoming autoscaling/admission
    policies consume — policies steer from exactly the signals operators
    see.  Null-safe: a view over ``None`` (or a disabled context) answers
    every query with an empty/zero result.
    """

    __slots__ = ("_insight",)

    def __init__(self, insight: "Insight | NullInsight | None" = None) -> None:
        self._insight = insight if insight is not None and insight.enabled else None

    @property
    def enabled(self) -> bool:
        return self._insight is not None

    def nodes(self) -> list[str]:
        if self._insight is None:
            return []
        return sorted(self._insight.sampler.nodes)

    def ledger_totals(self) -> dict[str, int]:
        """Drop-proof moved bytes per ledger kind."""
        if self._insight is None:
            return {}
        return self._insight.ledger.bytes_by_kind()

    def ledger_counts(self) -> dict[str, int]:
        if self._insight is None:
            return {}
        return self._insight.ledger.counts_by_kind()

    def series(self, node: str) -> dict[str, np.ndarray]:
        """The node's trimmed time-series (copies)."""
        if self._insight is None:
            return {}
        s = self._insight.sampler.nodes.get(node)
        return s.trimmed() if s is not None else {}

    def latest(self, node: str) -> Optional[dict[str, Any]]:
        """The most recent sample for ``node``, or ``None``."""
        if self._insight is None:
            return None
        s = self._insight.sampler.nodes.get(node)
        if s is None or s.count == 0:
            return None
        i = s.count - 1
        return {
            "t": float(s.t[i]),
            "occupancy": s.occupancy[i].copy(),
            "free": s.free[i].copy(),
            "stall": float(s.stall[i]),
            "temp_q": s.temp_q[i].copy(),
        }

    def stall(self, node: str) -> float:
        """Latest latency-weighted slow-tier stall proxy for ``node``."""
        latest = self.latest(node)
        return 0.0 if latest is None else latest["stall"]

    def occupancy_fraction(self, node: str) -> np.ndarray:
        """Latest per-tier occupied fraction for ``node`` (zeros when
        unsampled or a tier has no capacity)."""
        latest = self.latest(node)
        if latest is None:
            return np.zeros(NUM_TIERS, dtype=np.float64)
        occ = latest["occupancy"].astype(np.float64)
        cap = occ + latest["free"].astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(cap > 0, occ / cap, 0.0)
        return frac


# --------------------------------------------------------------------------- #
# the live service surface
# --------------------------------------------------------------------------- #

LIVE_FILE = "live.ndjson"
PROM_FILE = "metrics.prom"

#: scalar fields every live window line must carry (schema contract for
#: ``obs tail`` / ``tools/insight_smoke.py``)
LIVE_SCHEMA = ("window", "start", "end", "offered", "admitted", "rejected",
               "queue", "running")


class LiveMetricsWriter:
    """Streams service-window metrics while a run is in flight.

    ``live.ndjson`` gets one append-only JSON line per closed window;
    ``metrics.prom`` is atomically rewritten (write-temp + rename) with a
    Prometheus-text snapshot of the latest window, so a scrape or a
    ``tail -f`` never observes a torn file.
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.live_path = os.path.join(self.directory, LIVE_FILE)
        self.prom_path = os.path.join(self.directory, PROM_FILE)
        self.windows_written = 0
        # a fresh run truncates any previous stream
        with open(self.live_path, "w", encoding="utf-8"):
            pass

    def write_window(self, payload: dict[str, Any]) -> None:
        with open(self.live_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._write_prom(payload)
        self.windows_written += 1

    def _write_prom(self, payload: dict[str, Any]) -> None:
        lines = []
        for field in LIVE_SCHEMA:
            if field in payload:
                lines.append(f"# TYPE repro_service_{field} gauge")
                lines.append(f"repro_service_{field} {payload[field]}")
        for node, tiers in sorted(payload.get("tiers", {}).items()):
            for tier, nbytes in sorted(tiers.get("occupancy", {}).items()):
                lines.append(
                    f'repro_tier_occupancy_bytes{{node="{node}",tier="{tier}"}} {nbytes}'
                )
            if "stall" in tiers:
                lines.append(f'repro_tier_stall{{node="{node}"}} {tiers["stall"]}')
        for kind, nbytes in sorted(payload.get("ledger", {}).items()):
            lines.append(f'repro_ledger_bytes{{kind="{kind}"}} {nbytes}')
        tmp = self.prom_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        os.replace(tmp, self.prom_path)


def live_window_payload(
    index: int,
    start: float,
    end: float,
    *,
    offered: int,
    admitted: int,
    rejected: int,
    queue: int,
    running: int,
    view: Optional[SignalView] = None,
) -> dict[str, Any]:
    """Assemble one live-window line; tier/ledger blocks only when the
    introspection plane is live."""
    payload: dict[str, Any] = {
        "window": index,
        "start": start,
        "end": end,
        "offered": offered,
        "admitted": admitted,
        "rejected": rejected,
        "queue": queue,
        "running": running,
    }
    if view is not None and view.enabled:
        tiers: dict[str, Any] = {}
        for node in view.nodes():
            latest = view.latest(node)
            if latest is None:
                continue
            tiers[node] = {
                "occupancy": {
                    TIER_LABELS[t]: int(latest["occupancy"][t]) for t in range(NUM_TIERS)
                },
                "free": {
                    TIER_LABELS[t]: int(latest["free"][t]) for t in range(NUM_TIERS)
                },
                "stall": latest["stall"],
            }
        if tiers:
            payload["tiers"] = tiers
        totals = view.ledger_totals()
        if totals:
            payload["ledger"] = totals
    return payload


def format_live_window(payload: dict[str, Any]) -> str:
    """Render one live-window payload for a terminal (``obs tail`` and the
    tail ``scenarios serve --live`` prints after a run).

    First line: the service window counters.  One indented line per node
    with tier occupancy fractions and the stall proxy, when the payload
    carries a ``tiers`` block.
    """
    head = (
        f"[{payload.get('window', '?'):>4}] "
        f"t={float(payload.get('start', 0.0)):.0f}"
        f"..{float(payload.get('end', 0.0)):.0f}"
        f"  offered={payload.get('offered', 0)}"
        f" admitted={payload.get('admitted', 0)}"
        f" rejected={payload.get('rejected', 0)}"
        f" queue={payload.get('queue', 0)}"
        f" running={payload.get('running', 0)}"
    )
    lines = [head]
    tiers = payload.get("tiers") or {}
    for node in sorted(tiers, key=str):
        block = tiers[node]
        occ = block.get("occupancy", {})
        free = block.get("free", {})
        cells = []
        for label in TIER_LABELS:
            used = int(occ.get(label, 0))
            cap = used + int(free.get(label, 0))
            frac = (used / cap) if cap else 0.0
            cells.append(f"{label} {100.0 * frac:5.1f}%")
        lines.append(
            f"    {node}  " + "  ".join(cells)
            + f"  stall={float(block.get('stall', 0.0)):.3f}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# module-level dispatch (what the stack's emission points call)
# --------------------------------------------------------------------------- #

_active: "Insight | NullInsight" = NULL


def active() -> "Insight | NullInsight":
    """The introspection context recordings currently flow into."""
    return _active


def enabled() -> bool:
    return _active.enabled


def activate(ctx: "Insight | NullInsight") -> "Insight | NullInsight":
    """Install ``ctx`` as the active context; returns the previous one."""
    global _active
    previous = _active
    _active = ctx
    return previous


@contextmanager
def session(ctx: "Insight | NullInsight") -> Iterator["Insight | NullInsight"]:
    """Scope ``ctx`` as the active context for the ``with`` body."""
    previous = activate(ctx)
    try:
        yield ctx
    finally:
        activate(previous)


def cause(name: str) -> "_CauseScope | _NullScope":
    return _active.cause(name)


def fallback_cause(name: str) -> "_CauseScope | _NullScope":
    return _active.fallback_cause(name)


def view() -> SignalView:
    """A :class:`SignalView` over whatever context is active."""
    return _active.view()


def worker_insight() -> Optional[Insight]:
    """A fresh child context for a forked pool worker, or ``None`` when
    the plane is disabled — the insight analog of
    :func:`repro.obs.telemetry.worker_telemetry`."""
    if not _active.enabled:
        return None
    return Insight(run_id=_active.run_id, meta={"worker": f"pid{os.getpid()}"})
