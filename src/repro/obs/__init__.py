"""Unified telemetry: spans, counters, and Perfetto-ready run traces.

Emission points across the stack call the module-level dispatchers
(:func:`counter`, :func:`span`, :func:`event`, ...), which are no-ops
unless a run activates a :class:`Telemetry` context via :func:`session`
(``run_all --telemetry DIR``, ``scenarios run --telemetry DIR``).  See
``docs/observability.md`` for the span taxonomy and exporter formats.
"""

from .exporters import (
    load_run_dir,
    metrics_table,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_run_dir,
)
from .telemetry import (
    NULL,
    NullTelemetry,
    SpanRecord,
    Telemetry,
    TelemetryRecord,
    activate,
    active,
    counter,
    enabled,
    event,
    gauge,
    observe,
    session,
    span,
    worker_telemetry,
)

__all__ = [
    "NULL",
    "NullTelemetry",
    "SpanRecord",
    "Telemetry",
    "TelemetryRecord",
    "activate",
    "active",
    "counter",
    "enabled",
    "event",
    "gauge",
    "load_run_dir",
    "metrics_table",
    "observe",
    "session",
    "span",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "worker_telemetry",
    "write_run_dir",
]
