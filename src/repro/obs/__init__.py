"""Unified telemetry: spans, counters, and Perfetto-ready run traces.

Emission points across the stack call the module-level dispatchers
(:func:`counter`, :func:`span`, :func:`event`, ...), which are no-ops
unless a run activates a :class:`Telemetry` context via :func:`session`
(``run_all --telemetry DIR``, ``scenarios run --telemetry DIR``).  See
``docs/observability.md`` for the span taxonomy and exporter formats.

The memory-introspection plane (:mod:`repro.obs.insight` — migration
ledger, tier time-series, live service metrics) rides the same
null-object discipline under its own active context: ``obs.insight``
is re-exported here as the submodule, with the main types aliased for
convenience (:class:`Insight`, :class:`InsightRecord`,
:class:`SignalView`, :class:`LiveMetricsWriter`).
"""

from . import insight
from .exporters import (
    ledger_ndjson,
    load_insight_record,
    load_run_dir,
    metrics_table,
    percentile,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_run_dir,
)
from .insight import (
    Insight,
    InsightRecord,
    LiveMetricsWriter,
    MigrationLedger,
    SignalView,
    TierSampler,
    worker_insight,
)
from .telemetry import (
    NULL,
    NullTelemetry,
    SpanRecord,
    Telemetry,
    TelemetryRecord,
    activate,
    active,
    counter,
    enabled,
    event,
    gauge,
    observe,
    session,
    span,
    worker_telemetry,
)

__all__ = [
    "Insight",
    "InsightRecord",
    "LiveMetricsWriter",
    "MigrationLedger",
    "NULL",
    "NullTelemetry",
    "SignalView",
    "SpanRecord",
    "Telemetry",
    "TelemetryRecord",
    "TierSampler",
    "activate",
    "active",
    "counter",
    "enabled",
    "event",
    "gauge",
    "insight",
    "ledger_ndjson",
    "load_insight_record",
    "load_run_dir",
    "metrics_table",
    "observe",
    "percentile",
    "session",
    "span",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "worker_insight",
    "worker_telemetry",
    "write_run_dir",
]
