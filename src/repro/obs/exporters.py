"""Export a :class:`~repro.obs.telemetry.TelemetryRecord` to files.

Three formats, one directory layout (``write_run_dir``):

``run.json``
    The canonical record — everything the other exports are derived
    from, and what ``python -m repro obs`` reads back.
``events.jsonl``
    One JSON object per line: every sim-time event, then every closed
    span (``{"kind": "span", ...}``).  Greppable, streamable.
``trace.json``
    Chrome ``trace_event`` JSON — open it in Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing``.  Wall-clock spans
    land on pid 1 with one thread per worker; simulated-time events land
    on pid 2 so the two timebases never share an axis.
``metrics.csv``
    Flat ``kind,name,labels,value`` table of counters and gauges plus
    histogram summary rows.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .insight import (
    TEMP_QUANTILES,
    TIER_LABELS,
    InsightRecord,
    entry_dict,
    tier_label,
)
from .telemetry import TelemetryRecord, split_label

__all__ = [
    "ledger_ndjson",
    "load_insight_record",
    "load_run_dir",
    "metrics_table",
    "percentile",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "write_run_dir",
]

RUN_FILE = "run.json"
EVENTS_FILE = "events.jsonl"
TRACE_FILE = "trace.json"
METRICS_FILE = "metrics.csv"
LEDGER_FILE = "ledger.ndjson"
INSIGHT_FILE = "insight.json"

#: first line of ledger.ndjson; bump on layout changes
LEDGER_SCHEMA = "repro.insight.ledger/1"

_MAIN_PID = 1       # wall-clock span track
_SIM_PID = 2        # simulated-time event track
_MAIN_THREAD = 0    # tid for spans recorded by the parent process


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile on a sorted copy (no numpy dependency).

    Empty input reads 0.0; a singleton reads its only element for any
    ``q`` — the shared implementation behind the CLI summary and the
    metrics table.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[idx]


# --------------------------------------------------------------------------- #
# JSONL
# --------------------------------------------------------------------------- #

def to_jsonl(record: TelemetryRecord) -> str:
    lines = []
    for ev in record.events:
        lines.append(json.dumps({"kind": "event", **ev}, default=str))
    for s in record.spans:
        lines.append(
            json.dumps(
                {
                    "kind": "span",
                    "name": s.name,
                    "start": s.start,
                    "end": s.end,
                    "duration": s.duration,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "worker": s.worker,
                    **({"attrs": s.attrs} if s.attrs else {}),
                },
                default=str,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------------- #

def to_chrome_trace(
    record: TelemetryRecord, insight: Optional[InsightRecord] = None
) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document.

    Spans become complete ("X") events in microseconds relative to the
    run epoch, one tid per worker; counters become a single "C" sample;
    sim-time events become instants ("i") on a dedicated pid whose
    timestamp is ``sim_time * 1e6`` (so 1 trace-second == 1 simulated
    second when viewed).  With an :class:`InsightRecord`, per-node tier
    occupancy / stall / temperature series become Perfetto counter
    tracks ("C") on the sim pid, timestamp-sorted so each track is
    monotonic even after fork-merge interleaves cell clocks.
    """
    events: List[Dict[str, Any]] = []
    tids = {"": _MAIN_THREAD}
    for w in record.workers:
        tids.setdefault(w, len(tids))
    for s in record.spans:
        tids.setdefault(s.worker, len(tids))

    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _MAIN_PID,
            "tid": 0,
            "args": {"name": f"repro wall-clock ({record.run_id})"},
        }
    )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _SIM_PID,
            "tid": 0,
            "args": {"name": "repro simulated time"},
        }
    )
    for worker, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _MAIN_PID,
                "tid": tid,
                "args": {"name": worker or "main"},
            }
        )

    for s in record.spans:
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "pid": _MAIN_PID,
                "tid": tids[s.worker],
                "ts": s.start * 1e6,
                "dur": max(0.0, s.duration) * 1e6,
                "cat": s.name.split(".", 1)[0],
                "args": {str(k): v for k, v in s.attrs.items()},
            }
        )

    for key, value in sorted(record.counters.items()):
        name, labels = split_label(key)
        events.append(
            {
                "name": key,
                "ph": "C",
                "pid": _MAIN_PID,
                "tid": _MAIN_THREAD,
                "ts": 0,
                "args": {labels.get("exp", name): value},
            }
        )

    for ev in record.events:
        payload = {k: v for k, v in ev.items() if k not in ("t", "cat", "subj")}
        events.append(
            {
                "name": f"{ev.get('cat', 'event')}:{ev.get('subj', '')}",
                "ph": "i",
                "s": "g",
                "pid": _SIM_PID,
                "tid": 0,
                "ts": float(ev.get("t", 0.0)) * 1e6,
                "cat": str(ev.get("cat", "event")),
                "args": {str(k): v for k, v in payload.items()},
            }
        )

    if insight is not None:
        events.extend(_insight_counter_tracks(insight))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": record.run_id, **{str(k): str(v) for k, v in record.meta.items()}},
    }


def _insight_counter_tracks(insight: InsightRecord) -> List[Dict[str, Any]]:
    """Tier time-series as Perfetto counter tracks on the sim pid.

    Samples are sorted by timestamp per node before emission: a merged
    ``jobs=N`` record interleaves cell-local sim clocks, and Perfetto's
    counter renderer (and :func:`validate_chrome_trace`) require each
    track's timestamps to be non-decreasing.
    """
    out: List[Dict[str, Any]] = []
    for node in sorted(insight.series):
        s = insight.series[node]
        ts = s["t"]
        order = sorted(range(len(ts)), key=lambda i: float(ts[i]))
        for i in order:
            t_us = float(ts[i]) * 1e6
            out.append(
                {
                    "name": f"tier.occupancy.{node}",
                    "ph": "C",
                    "pid": _SIM_PID,
                    "tid": 0,
                    "ts": t_us,
                    "args": {
                        label: float(s["occupancy"][i][t])
                        for t, label in enumerate(TIER_LABELS)
                    },
                }
            )
            out.append(
                {
                    "name": f"tier.stall.{node}",
                    "ph": "C",
                    "pid": _SIM_PID,
                    "tid": 0,
                    "ts": t_us,
                    "args": {"stall": float(s["stall"][i])},
                }
            )
            out.append(
                {
                    "name": f"tier.temp.{node}",
                    "ph": "C",
                    "pid": _SIM_PID,
                    "tid": 0,
                    "ts": t_us,
                    "args": {
                        f"p{int(q * 100)}": float(s["temp_q"][i][j])
                        for j, q in enumerate(TEMP_QUANTILES)
                    },
                }
            )
    return out


_REQUIRED_BY_PHASE = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "M": ("name", "pid", "args"),
    "C": ("name", "ts", "pid", "args"),
    "i": ("name", "ts", "pid", "s"),
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural validation against the trace_event format; returns a
    list of problems (empty == valid).  Used by the CI smoke job.

    Counter ("C") tracks get the checks Perfetto's counter renderer
    relies on: a non-empty ``args`` object of numeric samples, and
    non-decreasing timestamps per ``(pid, tid, name)`` track.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    counter_clock: Dict[tuple, float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event[{i}] is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"event[{i}] missing ph")
            continue
        for field in _REQUIRED_BY_PHASE.get(ph, ("name", "pid")):
            if field not in ev:
                problems.append(f"event[{i}] ({ph}) missing {field!r}")
        if "ts" in ev and not isinstance(ev["ts"], (int, float)):
            problems.append(f"event[{i}] ts is not numeric")
        if ph == "X" and isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
            problems.append(f"event[{i}] has negative dur")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"event[{i}] (C) args is not a non-empty object")
            else:
                for key, value in args.items():
                    if not isinstance(value, (int, float)) or isinstance(value, bool):
                        problems.append(
                            f"event[{i}] (C) sample {key!r} is not numeric"
                        )
            ts = ev.get("ts")
            if isinstance(ts, (int, float)):
                track = (ev.get("pid"), ev.get("tid"), ev.get("name"))
                last = counter_clock.get(track)
                if last is not None and ts < last:
                    problems.append(
                        f"event[{i}] (C) non-monotonic ts on track {track[2]!r}: "
                        f"{ts} after {last}"
                    )
                counter_clock[track] = float(ts)
    return problems


# --------------------------------------------------------------------------- #
# flat metrics table
# --------------------------------------------------------------------------- #

def metrics_table(record: TelemetryRecord, insight: Optional[InsightRecord] = None) -> str:
    rows = ["kind,name,labels,value"]

    def fmt(kind: str, key: str, value: float) -> str:
        name, labels = split_label(key)
        label_str = ";".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f'{kind},{name},"{label_str}",{value!r}'

    for key in sorted(record.counters):
        rows.append(fmt("counter", key, record.counters[key]))
    for key in sorted(record.gauges):
        rows.append(fmt("gauge", key, record.gauges[key]))
    for name in sorted(record.histograms):
        values = record.histograms[name]
        rows.append(fmt("histogram_count", name, float(len(values))))
        for q in (50, 95, 99):
            rows.append(fmt(f"histogram_p{q}", name, percentile(values, q)))
    if insight is not None:
        rows.extend(_insight_rows(insight, fmt))
    return "\n".join(rows) + "\n"


def _insight_rows(insight: InsightRecord, fmt) -> List[str]:
    """Migration-ledger totals and tier time-series summaries as metric
    rows (the ``metrics.csv`` face of the introspection plane)."""
    rows: List[str] = []
    for (kind, cause, src, dst) in sorted(insight.totals):
        n, chunks, nbytes = insight.totals[(kind, cause, src, dst)]
        key = (
            f"insight.ledger{{cause={cause},dst={tier_label(dst)},"
            f"kind={kind},src={tier_label(src)}}}"
        )
        rows.append(fmt("ledger_entries", key, float(n)))
        rows.append(fmt("ledger_chunks", key, float(chunks)))
        rows.append(fmt("ledger_bytes", key, float(nbytes)))
    for node in sorted(insight.series):
        s = insight.series[node]
        count = len(s["t"])
        rows.append(fmt("series_count", f"insight.samples{{node={node}}}", float(count)))
        if not count:
            continue
        occ = s["occupancy"]
        stall = s["stall"]
        for t, label in enumerate(TIER_LABELS):
            rows.append(
                fmt(
                    "series_last",
                    f"insight.tier_occupancy_bytes{{node={node},tier={label}}}",
                    float(occ[-1][t]),
                )
            )
        rows.append(fmt("series_last", f"insight.stall{{node={node}}}", float(stall[-1])))
        rows.append(
            fmt("series_max", f"insight.stall{{node={node}}}", float(max(stall)))
        )
    return rows


# --------------------------------------------------------------------------- #
# run directory
# --------------------------------------------------------------------------- #

def ledger_ndjson(insight: InsightRecord) -> str:
    """The migration ledger as NDJSON: a schema header line (entry
    layout, drop count, drop-proof totals), then one line per entry."""
    header = {
        "schema": LEDGER_SCHEMA,
        "fields": list(entry_dict(tuple([0.0, "", "", "", "", -1, -1, 0, 0])).keys()),
        "entries": len(insight.entries),
        "dropped": insight.dropped,
        "totals": {
            f"{kind}|{cause}|{tier_label(src)}|{tier_label(dst)}": list(v)
            for (kind, cause, src, dst), v in sorted(insight.totals.items())
        },
    }
    lines = [json.dumps(header, sort_keys=True)]
    for entry in insight.entries:
        lines.append(json.dumps(entry_dict(entry), sort_keys=True))
    return "\n".join(lines) + "\n"


def write_run_dir(
    record: TelemetryRecord,
    out_dir: str,
    insight: Optional[InsightRecord] = None,
) -> Dict[str, str]:
    """Write all exports under ``out_dir``; returns name -> path.

    With an :class:`InsightRecord` the directory additionally gains
    ``ledger.ndjson`` and ``insight.json``, the trace gains counter
    tracks, and the metrics table gains ledger/series rows.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = {}
    run_path = os.path.join(out_dir, RUN_FILE)
    with open(run_path, "w") as fh:
        json.dump(record.to_dict(), fh, indent=1, default=str)
    paths["run"] = run_path
    events_path = os.path.join(out_dir, EVENTS_FILE)
    with open(events_path, "w") as fh:
        fh.write(to_jsonl(record))
    paths["events"] = events_path
    trace_path = os.path.join(out_dir, TRACE_FILE)
    with open(trace_path, "w") as fh:
        json.dump(to_chrome_trace(record, insight), fh, default=str)
    paths["trace"] = trace_path
    metrics_path = os.path.join(out_dir, METRICS_FILE)
    with open(metrics_path, "w") as fh:
        fh.write(metrics_table(record, insight))
    paths["metrics"] = metrics_path
    if insight is not None:
        ledger_path = os.path.join(out_dir, LEDGER_FILE)
        with open(ledger_path, "w") as fh:
            fh.write(ledger_ndjson(insight))
        paths["ledger"] = ledger_path
        insight_path = os.path.join(out_dir, INSIGHT_FILE)
        with open(insight_path, "w") as fh:
            json.dump(insight.to_dict(), fh, default=str)
        paths["insight"] = insight_path
    return paths


def load_run_dir(run_dir: str) -> TelemetryRecord:
    run_path = os.path.join(run_dir, RUN_FILE)
    if not os.path.exists(run_path) and os.path.basename(run_dir) == RUN_FILE:
        run_path = run_dir  # allow pointing directly at run.json
    with open(run_path) as fh:
        return TelemetryRecord.from_dict(json.load(fh))


def load_insight_record(run_dir: str) -> Optional[InsightRecord]:
    """The run directory's insight record, or ``None`` when the run was
    recorded without the introspection plane."""
    path = os.path.join(run_dir, INSIGHT_FILE)
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return InsightRecord.from_dict(json.load(fh))


def find_run_dirs(root: str) -> List[str]:
    """All directories under ``root`` (inclusive) containing a run.json."""
    found: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        if RUN_FILE in filenames:
            found.append(dirpath)
    return sorted(found)


