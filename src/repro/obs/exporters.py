"""Export a :class:`~repro.obs.telemetry.TelemetryRecord` to files.

Three formats, one directory layout (``write_run_dir``):

``run.json``
    The canonical record — everything the other exports are derived
    from, and what ``python -m repro obs`` reads back.
``events.jsonl``
    One JSON object per line: every sim-time event, then every closed
    span (``{"kind": "span", ...}``).  Greppable, streamable.
``trace.json``
    Chrome ``trace_event`` JSON — open it in Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing``.  Wall-clock spans
    land on pid 1 with one thread per worker; simulated-time events land
    on pid 2 so the two timebases never share an axis.
``metrics.csv``
    Flat ``kind,name,labels,value`` table of counters and gauges plus
    histogram summary rows.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from .telemetry import TelemetryRecord, split_label

__all__ = [
    "load_run_dir",
    "metrics_table",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "write_run_dir",
]

RUN_FILE = "run.json"
EVENTS_FILE = "events.jsonl"
TRACE_FILE = "trace.json"
METRICS_FILE = "metrics.csv"

_MAIN_PID = 1       # wall-clock span track
_SIM_PID = 2        # simulated-time event track
_MAIN_THREAD = 0    # tid for spans recorded by the parent process


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile on a sorted copy (no numpy dependency)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[idx]


# --------------------------------------------------------------------------- #
# JSONL
# --------------------------------------------------------------------------- #

def to_jsonl(record: TelemetryRecord) -> str:
    lines = []
    for ev in record.events:
        lines.append(json.dumps({"kind": "event", **ev}, default=str))
    for s in record.spans:
        lines.append(
            json.dumps(
                {
                    "kind": "span",
                    "name": s.name,
                    "start": s.start,
                    "end": s.end,
                    "duration": s.duration,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "worker": s.worker,
                    **({"attrs": s.attrs} if s.attrs else {}),
                },
                default=str,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------------- #

def to_chrome_trace(record: TelemetryRecord) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document.

    Spans become complete ("X") events in microseconds relative to the
    run epoch, one tid per worker; counters become a single "C" sample;
    sim-time events become instants ("i") on a dedicated pid whose
    timestamp is ``sim_time * 1e6`` (so 1 trace-second == 1 simulated
    second when viewed).
    """
    events: List[Dict[str, Any]] = []
    tids = {"": _MAIN_THREAD}
    for w in record.workers:
        tids.setdefault(w, len(tids))
    for s in record.spans:
        tids.setdefault(s.worker, len(tids))

    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _MAIN_PID,
            "tid": 0,
            "args": {"name": f"repro wall-clock ({record.run_id})"},
        }
    )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _SIM_PID,
            "tid": 0,
            "args": {"name": "repro simulated time"},
        }
    )
    for worker, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _MAIN_PID,
                "tid": tid,
                "args": {"name": worker or "main"},
            }
        )

    for s in record.spans:
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "pid": _MAIN_PID,
                "tid": tids[s.worker],
                "ts": s.start * 1e6,
                "dur": max(0.0, s.duration) * 1e6,
                "cat": s.name.split(".", 1)[0],
                "args": {str(k): v for k, v in s.attrs.items()},
            }
        )

    for key, value in sorted(record.counters.items()):
        name, labels = split_label(key)
        events.append(
            {
                "name": key,
                "ph": "C",
                "pid": _MAIN_PID,
                "tid": _MAIN_THREAD,
                "ts": 0,
                "args": {labels.get("exp", name): value},
            }
        )

    for ev in record.events:
        payload = {k: v for k, v in ev.items() if k not in ("t", "cat", "subj")}
        events.append(
            {
                "name": f"{ev.get('cat', 'event')}:{ev.get('subj', '')}",
                "ph": "i",
                "s": "g",
                "pid": _SIM_PID,
                "tid": 0,
                "ts": float(ev.get("t", 0.0)) * 1e6,
                "cat": str(ev.get("cat", "event")),
                "args": {str(k): v for k, v in payload.items()},
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": record.run_id, **{str(k): str(v) for k, v in record.meta.items()}},
    }


_REQUIRED_BY_PHASE = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "M": ("name", "pid", "args"),
    "C": ("name", "ts", "pid", "args"),
    "i": ("name", "ts", "pid", "s"),
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural validation against the trace_event format; returns a
    list of problems (empty == valid).  Used by the CI smoke job."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event[{i}] is not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"event[{i}] missing ph")
            continue
        for field in _REQUIRED_BY_PHASE.get(ph, ("name", "pid")):
            if field not in ev:
                problems.append(f"event[{i}] ({ph}) missing {field!r}")
        if "ts" in ev and not isinstance(ev["ts"], (int, float)):
            problems.append(f"event[{i}] ts is not numeric")
        if ph == "X" and isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
            problems.append(f"event[{i}] has negative dur")
    return problems


# --------------------------------------------------------------------------- #
# flat metrics table
# --------------------------------------------------------------------------- #

def metrics_table(record: TelemetryRecord) -> str:
    rows = ["kind,name,labels,value"]

    def fmt(kind: str, key: str, value: float) -> str:
        name, labels = split_label(key)
        label_str = ";".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f'{kind},{name},"{label_str}",{value!r}'

    for key in sorted(record.counters):
        rows.append(fmt("counter", key, record.counters[key]))
    for key in sorted(record.gauges):
        rows.append(fmt("gauge", key, record.gauges[key]))
    for name in sorted(record.histograms):
        values = record.histograms[name]
        rows.append(fmt("histogram_count", name, float(len(values))))
        for q in (50, 95, 99):
            rows.append(fmt(f"histogram_p{q}", name, _percentile(values, q)))
    return "\n".join(rows) + "\n"


# --------------------------------------------------------------------------- #
# run directory
# --------------------------------------------------------------------------- #

def write_run_dir(record: TelemetryRecord, out_dir: str) -> Dict[str, str]:
    """Write all four exports under ``out_dir``; returns name -> path."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {}
    run_path = os.path.join(out_dir, RUN_FILE)
    with open(run_path, "w") as fh:
        json.dump(record.to_dict(), fh, indent=1, default=str)
    paths["run"] = run_path
    events_path = os.path.join(out_dir, EVENTS_FILE)
    with open(events_path, "w") as fh:
        fh.write(to_jsonl(record))
    paths["events"] = events_path
    trace_path = os.path.join(out_dir, TRACE_FILE)
    with open(trace_path, "w") as fh:
        json.dump(to_chrome_trace(record), fh, default=str)
    paths["trace"] = trace_path
    metrics_path = os.path.join(out_dir, METRICS_FILE)
    with open(metrics_path, "w") as fh:
        fh.write(metrics_table(record))
    paths["metrics"] = metrics_path
    return paths


def load_run_dir(run_dir: str) -> TelemetryRecord:
    run_path = os.path.join(run_dir, RUN_FILE)
    if not os.path.exists(run_path) and os.path.basename(run_dir) == RUN_FILE:
        run_path = run_dir  # allow pointing directly at run.json
    with open(run_path) as fh:
        return TelemetryRecord.from_dict(json.load(fh))


def find_run_dirs(root: str) -> List[str]:
    """All directories under ``root`` (inclusive) containing a run.json."""
    found: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        if RUN_FILE in filenames:
            found.append(dirpath)
    return sorted(found)


def percentile(values: List[float], q: float) -> float:
    """Public alias used by the CLI summary."""
    return _percentile(values, q)
