"""Process helpers layered on the event engine.

:class:`PeriodicProcess` models daemons (the per-node memory-management
daemon, metric samplers) that tick at a fixed simulated interval.
:class:`RateTracker` implements the fluid progress model described in
DESIGN.md §4: an amount of *work* drains at a *rate* that the surrounding
system may change at any event; the tracker converts between remaining work
and projected completion time.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..util.errors import SimulationError
from ..util.validation import check_non_negative, check_positive
from .engine import SimulationEngine
from .events import Event

__all__ = ["PeriodicProcess", "RateTracker"]


class PeriodicProcess:
    """Invoke a callback every ``interval`` simulated seconds until stopped.

    The callback receives the engine's current time.  The first tick fires
    ``interval`` after :meth:`start` (daemons observe a full interval of
    activity before acting, as kswapd-style scanners do).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        interval: float,
        fn: Callable[[float], Any],
        label: str = "periodic",
    ) -> None:
        check_positive(interval, "interval")
        self.engine = engine
        self.interval = float(interval)
        self.fn = fn
        self.label = label
        self._event: Optional[Event] = None
        self._stopped = True
        self.ticks: int = 0

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        if self.running:
            raise SimulationError(f"periodic process {self.label!r} already started")
        self._stopped = False
        self._event = self.engine.schedule(self.interval, self._tick, self.label)

    def stop(self) -> None:
        self._stopped = True
        self.engine.cancel(self._event)
        self._event = None

    def _tick(self) -> None:
        self.ticks += 1
        self.fn(self.engine.now)
        if self._stopped:  # the callback may have stopped us
            return
        self._event = self.engine.schedule(self.interval, self._tick, self.label)


class RateTracker:
    """Track draining work under a piecewise-constant rate.

    The canonical usage pattern, from a task-execution object::

        tracker = RateTracker(total_work)
        tracker.set_rate(now, rate)          # when placement/contention known
        eta = tracker.projected_finish(now)  # schedule completion event here
        ...
        tracker.set_rate(now2, new_rate)     # on any contention change
        eta = tracker.projected_finish(now2) # reschedule

    Work is measured in "ideal seconds" (the phase's duration at rate 1).
    """

    __slots__ = ("remaining", "rate", "_last_update")

    def __init__(self, work: float) -> None:
        check_non_negative(work, "work")
        self.remaining = float(work)
        self.rate = 0.0
        self._last_update: Optional[float] = None

    def set_rate(self, now: float, rate: float) -> None:
        """Account progress up to ``now`` at the old rate, then switch rates."""
        check_non_negative(rate, "rate")
        self._advance(now)
        self.rate = float(rate)
        self._last_update = now

    def _advance(self, now: float) -> None:
        if self._last_update is None:
            self._last_update = now
            return
        dt = now - self._last_update
        if dt < -1e-9:
            raise SimulationError(f"RateTracker time went backwards ({dt} s)")
        if dt > 0 and self.rate > 0:
            self.remaining = max(0.0, self.remaining - dt * self.rate)
        self._last_update = now

    def progress_to(self, now: float) -> float:
        """Advance the account to ``now`` and return remaining work."""
        self._advance(now)
        return self.remaining

    def projected_finish(self, now: float) -> Optional[float]:
        """Absolute time the work drains at the current rate, or ``None``
        if the rate is zero (stalled)."""
        self._advance(now)
        if self.remaining <= 0:
            return now
        if self.rate <= 0:
            return None
        return now + self.remaining / self.rate

    @property
    def done(self) -> bool:
        return self.remaining <= 1e-12
