"""Process helpers layered on the event engine.

:class:`PeriodicProcess` models daemons (the per-node memory-management
daemon, metric samplers) that tick at a fixed simulated interval.
:class:`TickGroup` coalesces many such daemons onto *one* heap event per
interval — the engine pops once and services every member callback, so a
64-node cluster costs one event per tick instead of 64.
:class:`RateTracker` implements the fluid progress model described in
DESIGN.md §4: an amount of *work* drains at a *rate* that the surrounding
system may change at any event; the tracker converts between remaining work
and projected completion time.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..util.errors import SimulationError
from ..util.validation import check_non_negative, check_positive
from .engine import SimulationEngine
from .events import Event

__all__ = ["PeriodicProcess", "ReportPeriod", "TickGroup", "RateTracker"]


class PeriodicProcess:
    """Invoke a callback every ``interval`` simulated seconds until stopped.

    The callback receives the engine's current time.  The first tick fires
    ``interval`` after :meth:`start` (daemons observe a full interval of
    activity before acting, as kswapd-style scanners do).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        interval: float,
        fn: Callable[[float], Any],
        label: str = "periodic",
    ) -> None:
        check_positive(interval, "interval")
        self.engine = engine
        self.interval = float(interval)
        self.fn = fn
        self.label = label
        self._event: Optional[Event] = None
        self._stopped = True
        self.ticks: int = 0

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self) -> None:
        if self.running:
            raise SimulationError(f"periodic process {self.label!r} already started")
        self._stopped = False
        self._event = self.engine.schedule(self.interval, self._tick, self.label)

    def stop(self) -> None:
        self._stopped = True
        self.engine.cancel(self._event)
        self._event = None

    def _tick(self) -> None:
        self.ticks += 1
        self.fn(self.engine.now)
        if self._stopped:  # the callback may have stopped us
            return
        self._event = self.engine.schedule(self.interval, self._tick, self.label)


class TickGroup:
    """Coalesced homogeneous periodic events: one engine event per interval
    drives every member callback.

    The per-node daemons of a cluster all tick at the same configured
    interval; scheduling them as N independent :class:`PeriodicProcess`
    events costs N heap pushes/pops per simulated second.  A TickGroup
    keeps *one* pending event and fans each firing out to all members in
    registration order — the callbacks still receive the engine's current
    time, and members added mid-cadence first fire at the group's next
    tick (the daemon is "already running on the node").

    The group's single event is created when the first member joins and
    cancelled when the last leaves, so an idle group costs nothing and the
    engine's live-event counter stays exact (see ``test_sim_engine``).
    """

    def __init__(
        self, engine: SimulationEngine, interval: float, label: str = "tick-group"
    ) -> None:
        check_positive(interval, "interval")
        self.engine = engine
        self.interval = float(interval)
        self.label = label
        self._members: dict[int, Callable[[float], Any]] = {}
        self._next_id = 0
        self._event: Optional[Event] = None
        self._firing = False
        self.ticks: int = 0

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def running(self) -> bool:
        return self._event is not None or self._firing

    def add(self, fn: Callable[[float], Any]) -> int:
        """Join the group; returns a handle for :meth:`remove`."""
        self._next_id += 1
        self._members[self._next_id] = fn
        if self._event is None and not self._firing:
            self._event = self.engine.schedule(self.interval, self._tick, self.label)
        return self._next_id

    def remove(self, handle: int) -> None:
        """Leave the group (idempotent).  The pending event is cancelled
        when the last member leaves, keeping the engine queue exact."""
        self._members.pop(handle, None)
        if not self._members and self._event is not None:
            self.engine.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        self.ticks += 1
        self._event = None
        self._firing = True
        now = self.engine.now
        try:
            # snapshot: members added by a callback join from the next tick;
            # members removed by an earlier callback this tick are skipped
            for handle, fn in list(self._members.items()):
                if handle in self._members:
                    fn(now)
        finally:
            self._firing = False
        if self._members:
            self._event = self.engine.schedule(self.interval, self._tick, self.label)


class ReportPeriod(TickGroup):
    """A :class:`TickGroup` whose members observe *windows*, not ticks.

    The steady-state service layer divides a run into fixed report
    windows; every periodic reporter (metrics sampler, admission
    telemetry, an autoscaling controller later) shares one engine event
    per boundary.  Members receive ``(window_index, window_start,
    window_end)`` — the window that just *closed* — instead of the bare
    clock, and the group tracks window boundaries from its own start
    time so a partial trailing window can be closed explicitly via
    :meth:`close_partial` when the run stops mid-window.
    """

    def __init__(
        self, engine: SimulationEngine, window: float, label: str = "report-period"
    ) -> None:
        super().__init__(engine, window, label)
        self.window = self.interval
        self.origin: float = engine.now
        self.windows_closed: int = 0

    def add_reporter(self, fn: "Callable[[int, float, float], Any]") -> int:
        """Join with window semantics (see class docstring)."""

        def member(_now: float) -> None:
            index = self.windows_closed
            start = self.origin + index * self.window
            self.windows_closed += 1
            fn(index, start, start + self.window)

        return self.add(member)

    def close_partial(self, fn: "Callable[[int, float, float], Any]") -> None:
        """Invoke ``fn`` for the trailing partial window (if the clock sits
        strictly inside one); used when a run stops at a horizon that is
        not a window multiple."""
        start = self.origin + self.windows_closed * self.window
        if self.engine.now > start:
            index = self.windows_closed
            self.windows_closed += 1
            fn(index, start, self.engine.now)


class RateTracker:
    """Track draining work under a piecewise-constant rate.

    The canonical usage pattern, from a task-execution object::

        tracker = RateTracker(total_work)
        tracker.set_rate(now, rate)          # when placement/contention known
        eta = tracker.projected_finish(now)  # schedule completion event here
        ...
        tracker.set_rate(now2, new_rate)     # on any contention change
        eta = tracker.projected_finish(now2) # reschedule

    Work is measured in "ideal seconds" (the phase's duration at rate 1).
    """

    __slots__ = ("remaining", "rate", "_last_update")

    def __init__(self, work: float) -> None:
        check_non_negative(work, "work")
        self.remaining = float(work)
        self.rate = 0.0
        self._last_update: Optional[float] = None

    def set_rate(self, now: float, rate: float) -> None:
        """Account progress up to ``now`` at the old rate, then switch rates."""
        check_non_negative(rate, "rate")
        self._advance(now)
        self.rate = float(rate)
        self._last_update = now

    def _advance(self, now: float) -> None:
        if self._last_update is None:
            self._last_update = now
            return
        dt = now - self._last_update
        if dt < -1e-9:
            raise SimulationError(f"RateTracker time went backwards ({dt} s)")
        if dt > 0 and self.rate > 0:
            self.remaining = max(0.0, self.remaining - dt * self.rate)
        self._last_update = now

    def progress_to(self, now: float) -> float:
        """Advance the account to ``now`` and return remaining work."""
        self._advance(now)
        return self.remaining

    def projected_finish(self, now: float) -> Optional[float]:
        """Absolute time the work drains at the current rate, or ``None``
        if the rate is zero (stalled)."""
        self._advance(now)
        if self.remaining <= 0:
            return now
        if self.rate <= 0:
            return None
        return now + self.remaining / self.rate

    @property
    def done(self) -> bool:
        return self.remaining <= 1e-12
