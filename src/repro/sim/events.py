"""Event objects for the discrete-event engine.

Events are *cancellable*: rather than remove entries from the middle of the
heap (O(n)), cancellation marks the event and the engine discards it lazily
when it reaches the top.  This is the standard lazy-deletion pattern and is
what lets the rate-based progress model cheaply reschedule thousands of
task-completion events as contention changes.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Event"]


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time the event fires at.
    seq:
        Monotonic tie-breaker; events at equal times fire in scheduling order.
    fn:
        Zero-argument callable invoked when the event fires.
    cancelled:
        True once :meth:`cancel` has been called; the engine skips it.
    fired:
        True once the engine has invoked ``fn`` — lets the engine's live
        count distinguish cancelling a queued event from a stale handle.
    label:
        Optional human-readable tag for tracing and error messages.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "fired", "label")

    def __init__(self, time: float, seq: int, fn: Callable[[], Any], label: str = "") -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.fired = False
        self.label = label

    def cancel(self) -> None:
        """Mark the event so the engine never fires it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        tag = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.6f} #{self.seq}{tag} {state}>"
