"""Structured simulation tracing.

A :class:`Tracer` records typed events (task lifecycle, phase boundaries,
daemon activity) with their simulated timestamps, for debugging policies
and building timelines.  Tracing is opt-in — the runtime takes an optional
tracer and emits nothing when absent, so the hot path stays clean.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time: float
    category: str
    subject: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {"t": self.time, "cat": self.category, "subj": self.subject, **self.data},
            sort_keys=True,
        )


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered by category.

    Parameters
    ----------
    categories:
        When given, only these categories are recorded; everything else is
        dropped at emit time (cheap filtering for long runs).
    capacity:
        Ring-buffer bound; the oldest events are discarded beyond it.
    """

    def __init__(
        self, categories: Optional[Iterable[str]] = None, capacity: int = 1_000_000
    ) -> None:
        self._categories = frozenset(categories) if categories is not None else None
        self.capacity = int(capacity)
        # deque(maxlen=...) evicts the oldest entry in O(1); a plain list's
        # pop(0) is O(n) per emit once the buffer fills, which made tracing
        # quadratic over long capacity-bound runs
        self._events: deque[TraceEvent] = deque(maxlen=self.capacity)
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return self._categories is None or category in self._categories

    def emit(self, time: float, category: str, subject: str, **data: Any) -> None:
        if not self.wants(category):
            return
        if len(self._events) == self.capacity:
            self.dropped += 1  # the append below auto-evicts the oldest
        self._events.append(TraceEvent(float(time), category, subject, data))

    # ------------------------------------------------------------------ #
    def events(
        self, category: Optional[str] = None, subject: Optional[str] = None
    ) -> list[TraceEvent]:
        out: Iterable[TraceEvent] = self._events
        if category is not None:
            out = [e for e in out if e.category == category]
        if subject is not None:
            out = [e for e in out if e.subject == subject]
        return list(out)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def to_jsonl(self) -> str:
        """Serialise every recorded event as JSON lines."""
        return "\n".join(e.to_json() for e in self._events)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())
            fh.write("\n")
