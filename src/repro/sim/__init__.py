"""Discrete-event simulation core: engine, events, process helpers, tracing."""

from .engine import SimulationEngine
from .events import Event
from .process import PeriodicProcess, RateTracker, ReportPeriod, TickGroup
from .trace import TraceEvent, Tracer

__all__ = [
    "SimulationEngine",
    "Event",
    "PeriodicProcess",
    "RateTracker",
    "ReportPeriod",
    "TickGroup",
    "TraceEvent",
    "Tracer",
]
