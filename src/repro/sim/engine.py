"""Discrete-event simulation engine.

A minimal but complete DES core: a binary-heap event queue over
:class:`~repro.sim.events.Event`, a simulation clock, and lazy cancellation.
Everything in :mod:`repro` that "takes time" (task phases, image pulls,
daemon ticks, job arrivals) is an event on one shared engine.

The engine deliberately has **no global state** — experiments construct one
engine each, which is what makes tests and benchmarks hermetic and
parallel-safe (see the hpc-parallel guidance on reproducible measurement).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .. import obs
from ..resilience import invariants as inv
from ..util.errors import SimulationError
from .events import Event

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Shared simulation clock and event queue.

    Examples
    --------
    >>> eng = SimulationEngine()
    >>> fired = []
    >>> _ = eng.schedule(2.0, lambda: fired.append(eng.now))
    >>> _ = eng.schedule(1.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = float(start_time)
        self._heap: list[Event] = []
        self._seq: int = 0
        self._live: int = 0
        self._running: bool = False
        self.events_fired: int = 0
        self.events_cancelled: int = 0

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, fn: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``fn`` to fire ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, fn, label)

    def schedule_at(self, time: float, fn: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``fn`` at absolute simulated time ``time``.

        Raises
        ------
        SimulationError
            If ``time`` precedes the current clock (events cannot fire in
            the past) or is not finite.
        """
        if time != time or time in (float("inf"), float("-inf")):
            raise SimulationError(f"event time must be finite, got {time!r} ({label!r})")
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self.now} ({label!r})"
            )
        self._seq += 1
        ev = Event(max(time, self.now), self._seq, fn, label)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel ``event`` if it is pending; a ``None`` argument is a no-op.

        Cancelling an event that already fired (or was already cancelled)
        is also a no-op: ``step`` decremented the live counter when it
        fired, so only a *pending* cancellation may decrement — otherwise
        stale handles held by callers (task completions rescheduled after
        firing, coalesced ticker handles) would double-decrement
        :meth:`pending` and inflate ``events_cancelled``.
        """
        if event is None or event.cancelled or event.fired:
            return
        event.cancel()
        self.events_cancelled += 1
        self._live -= 1

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        if ev.time < self.now - 1e-12:  # pragma: no cover - internal invariant
            raise SimulationError(f"clock went backwards: {ev!r} at now={self.now}")
        self.now = ev.time
        self.events_fired += 1
        ev.fired = True
        self._live -= 1
        ev.fn()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When stopping on ``until``, the clock is advanced to exactly
        ``until`` (pending later events stay queued), matching the usual
        "run for T seconds" semantics.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant: run() called from within run()")
        self._running = True
        fired = 0
        # Spans wrap the whole drain, never individual events — step() is
        # the hot path and stays uninstrumented.
        tel_on = obs.enabled()
        if tel_on:
            fired_before = self.events_fired
            run_span = obs.span("sim.run", start=self.now).__enter__()
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
            if tel_on:
                run_span.set(end=self.now)
                run_span.__exit__(None, None, None)
                obs.counter("sim.events_fired", self.events_fired - fired_before)
        if until is not None and self.now < until:
            self.now = until
        # End-of-drain consistency check: the O(1) live counter must still
        # match a heap recount after everything above has fired.
        checker = inv.active()
        if checker.enabled:
            checker.engine(self)

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter maintained by ``schedule``/``cancel``/``step``
        rather than a scan of the heap (which grows to hundreds of
        thousands of lazily-cancelled entries in cluster runs).
        """
        return self._live

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SimulationEngine now={self.now:.6f} pending={self.pending()}>"
