"""Unit helpers for memory sizes, time, and bandwidth.

All internal accounting in :mod:`repro` uses SI base units:

* memory sizes in **bytes** (``int``),
* time in **seconds** (``float``, simulated time),
* bandwidth in **bytes per second** (``float``),
* latency in **seconds** (``float``).

These helpers exist so that configuration code reads like the paper's
testbed description (``GiB(512)``, ``ns(80)``, ``GBps(100)``) instead of
opaque exponents.
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "KB",
    "MB",
    "GB",
    "TB",
    "ns",
    "us",
    "ms",
    "seconds",
    "GBps",
    "MBps",
    "bytes_to_human",
    "time_to_human",
]

_KIB = 1024
_MIB = 1024**2
_GIB = 1024**3
_TIB = 1024**4


def KiB(n: float) -> int:
    """``n`` kibibytes as an integer byte count."""
    return int(n * _KIB)


def MiB(n: float) -> int:
    """``n`` mebibytes as an integer byte count."""
    return int(n * _MIB)


def GiB(n: float) -> int:
    """``n`` gibibytes as an integer byte count."""
    return int(n * _GIB)


def TiB(n: float) -> int:
    """``n`` tebibytes as an integer byte count."""
    return int(n * _TIB)


def KB(n: float) -> int:
    """``n`` kilobytes (decimal) as an integer byte count."""
    return int(n * 1_000)


def MB(n: float) -> int:
    """``n`` megabytes (decimal) as an integer byte count."""
    return int(n * 1_000_000)


def GB(n: float) -> int:
    """``n`` gigabytes (decimal) as an integer byte count."""
    return int(n * 1_000_000_000)


def TB(n: float) -> int:
    """``n`` terabytes (decimal) as an integer byte count."""
    return int(n * 1_000_000_000_000)


def ns(n: float) -> float:
    """``n`` nanoseconds in seconds."""
    return n * 1e-9


def us(n: float) -> float:
    """``n`` microseconds in seconds."""
    return n * 1e-6


def ms(n: float) -> float:
    """``n`` milliseconds in seconds."""
    return n * 1e-3


def seconds(n: float) -> float:
    """Identity helper for symmetry when building configs."""
    return float(n)


def GBps(n: float) -> float:
    """``n`` gigabytes per second as bytes per second."""
    return n * 1e9


def MBps(n: float) -> float:
    """``n`` megabytes per second as bytes per second."""
    return n * 1e6


def bytes_to_human(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``512.0 GiB``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for suffix, scale in (("TiB", _TIB), ("GiB", _GIB), ("MiB", _MIB), ("KiB", _KIB)):
        if n >= scale:
            return f"{sign}{n / scale:.1f} {suffix}"
    return f"{sign}{n:.0f} B"


def time_to_human(t: float) -> str:
    """Render a duration in the most natural unit, e.g. ``1.25 ms``."""
    t = float(t)
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t >= 1.0:
        return f"{sign}{t:.2f} s"
    if t >= 1e-3:
        return f"{sign}{t * 1e3:.2f} ms"
    if t >= 1e-6:
        return f"{sign}{t * 1e6:.2f} us"
    return f"{sign}{t * 1e9:.1f} ns"
