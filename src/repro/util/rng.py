"""Deterministic random-number stream management.

Experiments in the paper are averaged over ten runs with <5 % variance
(§IV-B).  To make our reproduction exactly repeatable we derive every
random stream from a single experiment seed using
:func:`numpy.random.SeedSequence.spawn`-style key derivation: each consumer
asks for a named child stream, so adding a new consumer never perturbs the
draws seen by existing ones.
"""

from __future__ import annotations

import zlib
from typing import Iterator

import numpy as np

__all__ = ["RngFactory", "derive_seed"]


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a child seed from ``base_seed`` and a stream ``name``.

    Uses CRC32 over the name mixed into the base seed; stable across runs
    and Python versions (unlike ``hash``).
    """
    return (int(base_seed) * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) % (2**63)


class RngFactory:
    """Factory producing independent, named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        The experiment-level seed.  Two factories built with the same seed
        hand out identical streams for identical names, regardless of the
        order streams are requested in.

    Examples
    --------
    >>> f = RngFactory(42)
    >>> a = f.stream("workload.dl.0")
    >>> b = f.stream("workload.dm.0")
    >>> a is not b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (ignores the cache).

        Useful when a component needs to re-play its stream from the start.
        """
        return np.random.default_rng(derive_seed(self.seed, name))

    def spawn(self, prefix: str, n: int) -> Iterator[np.random.Generator]:
        """Yield ``n`` fresh streams named ``{prefix}.{i}``."""
        for i in range(n):
            yield self.stream(f"{prefix}.{i}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngFactory(seed={self.seed}, streams={len(self._streams)})"
