"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "AllocationError",
    "OutOfMemoryError",
    "SchedulingError",
    "SimulationError",
    "WorkflowError",
    "ContainerError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """An object was configured with invalid or inconsistent parameters."""


class AllocationError(ReproError):
    """A tiered-memory allocation request could not be satisfied."""


class OutOfMemoryError(AllocationError):
    """No tier (including swap) can hold the requested pages.

    Mirrors the workflow-failure mode the paper attributes to memory
    exhaustion on constrained nodes (§I, §III-A objective 1).
    """


class SchedulingError(ReproError):
    """The scheduler was asked to do something impossible (e.g. a job that
    can never fit on any node of the cluster)."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency (e.g. an event
    scheduled in the past)."""


class WorkflowError(ReproError):
    """A workflow DAG is malformed (cycle, missing dependency, bad phase)."""


class ContainerError(ReproError):
    """Container image or runtime failure (unknown image, bad registry)."""
