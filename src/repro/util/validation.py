"""Small argument-validation helpers.

These raise :class:`~repro.util.errors.ConfigurationError` with readable
messages; they keep constructor bodies terse while still failing fast on
nonsense configurations (negative capacities, fractions outside [0, 1], ...).
"""

from __future__ import annotations

from typing import Iterable, TypeVar

from .errors import ConfigurationError

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_in",
    "check_probabilities",
]

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def check_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` and return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate ``value >= 0`` and return it."""
    if not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate ``0 <= value <= 1`` and return it."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(value: T, allowed: Iterable[T], name: str) -> T:
    """Validate ``value`` is one of ``allowed`` and return it."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_probabilities(values: Iterable[float], name: str, tol: float = 1e-9) -> tuple[float, ...]:
    """Validate a probability vector (non-negative, sums to 1) and return it."""
    vec = tuple(float(v) for v in values)
    if any(v < 0 for v in vec):
        raise ConfigurationError(f"{name} must be non-negative, got {vec!r}")
    total = sum(vec)
    if abs(total - 1.0) > tol:
        raise ConfigurationError(f"{name} must sum to 1 (got {total!r})")
    return vec
