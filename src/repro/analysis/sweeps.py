"""Generic parameter sweeps over environments.

The figure harnesses are hand-shaped for the paper; :func:`sweep` is the
general tool a downstream user reaches for: vary one knob (DRAM fraction,
instance count, CXL share, daemon interval, ...), measure any scalar per
environment kind, and get an aligned :class:`FigureResult` back.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..envs.environments import EnvKind, Environment
from ..experiments.common import FigureResult
from ..metrics.collector import MetricsRegistry
from ..util.validation import require

__all__ = ["sweep", "makespan_metric", "mean_exec_metric"]


def makespan_metric(metrics: MetricsRegistry, env: Environment) -> float:
    return metrics.makespan()


def mean_exec_metric(wclass: Optional[str] = None):
    """Metric factory: mean execution time, optionally for one class."""

    def metric(metrics: MetricsRegistry, env: Environment) -> float:
        return metrics.mean_execution_time(wclass)

    return metric


def sweep(
    *,
    name: str,
    description: str,
    values: Sequence[object],
    kinds: Sequence[EnvKind],
    build: Callable[[EnvKind, object], Environment],
    run: Callable[[Environment, object], MetricsRegistry],
    metric: Callable[[MetricsRegistry, Environment], float] = makespan_metric,
    xlabel: Callable[[object], str] = str,
) -> FigureResult:
    """Run ``metric`` for every (environment kind, sweep value) pair.

    Parameters
    ----------
    build:
        ``(kind, value) -> Environment`` — constructs a fresh environment
        for each grid point (environments are single-use).
    run:
        ``(env, value) -> MetricsRegistry`` — executes the workload.

    Examples
    --------
    ::

        result = sweep(
            name="dram-sweep",
            description="makespan vs DRAM fraction",
            values=[0.2, 0.4, 0.8],
            kinds=[EnvKind.TME, EnvKind.IMME],
            build=lambda kind, f: build_env(kind, specs, dram_fraction=f),
            run=lambda env, f: env.run_batch(specs),
        )
    """
    require(len(values) > 0, "sweep needs at least one value")
    require(len(kinds) > 0, "sweep needs at least one environment kind")
    result = FigureResult(
        figure=name, description=description, xlabels=[xlabel(v) for v in values]
    )
    for kind in kinds:
        series: list[float] = []
        for value in values:
            env = build(kind, value)
            try:
                metrics = run(env, value)
                series.append(float(metric(metrics, env)))
            finally:
                env.stop()
        result.add_series(kind.name, series)
    return result
