"""Analysis helpers: replication statistics and generic parameter sweeps."""

from .stats import Comparison, ReplicationResult, compare, relative_improvement, replicate
from .sweeps import makespan_metric, mean_exec_metric, sweep

__all__ = [
    "Comparison",
    "ReplicationResult",
    "compare",
    "relative_improvement",
    "replicate",
    "makespan_metric",
    "mean_exec_metric",
    "sweep",
]
