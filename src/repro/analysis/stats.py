"""Replication statistics.

The paper runs every experiment ten times and reports means with <5%
variance (§IV-B).  :func:`replicate` is the library-side version: run a
seeded measurement across seeds and summarise mean, spread, and a
t-distribution confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..util.validation import require

try:  # scipy is an optional test dependency; fall back to normal quantiles
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy is present in CI
    _scipy_stats = None

__all__ = ["ReplicationResult", "replicate", "relative_improvement", "compare"]


@dataclass(frozen=True)
class ReplicationResult:
    """Summary of one measurement replicated across seeds."""

    label: str
    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0 for single runs."""
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def cv(self) -> float:
        """Coefficient of variation — the paper's <5% variance metric."""
        m = self.mean
        return self.std / m if m else 0.0

    def ci95(self) -> tuple[float, float]:
        """95% confidence interval for the mean (t-distribution)."""
        if self.n < 2:
            return (self.mean, self.mean)
        sem = self.std / np.sqrt(self.n)
        if _scipy_stats is not None:
            t = float(_scipy_stats.t.ppf(0.975, df=self.n - 1))
        else:  # pragma: no cover
            t = 1.96
        return (self.mean - t * sem, self.mean + t * sem)

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        lo, hi = self.ci95()
        return f"{self.label}: {self.mean:.2f} ±{hi - self.mean:.2f} (CV {100 * self.cv:.1f}%)"


def replicate(
    fn: Callable[[int], float],
    seeds: Sequence[int] = tuple(range(10)),
    *,
    label: str = "measurement",
) -> ReplicationResult:
    """Run ``fn(seed)`` for every seed (the paper's 10-run methodology)."""
    require(len(seeds) >= 1, "need at least one seed")
    values = tuple(float(fn(int(s))) for s in seeds)
    return ReplicationResult(label, values)


def relative_improvement(
    baseline: ReplicationResult, treatment: ReplicationResult
) -> float:
    """Mean relative reduction of ``treatment`` versus ``baseline``
    (positive = treatment is faster), matching the paper's convention."""
    b = baseline.mean
    if b <= 0:
        return 0.0
    return (b - treatment.mean) / b


@dataclass(frozen=True)
class Comparison:
    """Outcome of a two-sample comparison."""

    improvement: float
    p_value: float
    significant: bool

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        mark = "significant" if self.significant else "not significant"
        return f"{100 * self.improvement:+.1f}% (p={self.p_value:.3g}, {mark})"


def compare(
    baseline: ReplicationResult,
    treatment: ReplicationResult,
    *,
    alpha: float = 0.05,
) -> Comparison:
    """Welch's t-test between two replicated measurements.

    Degenerate inputs (single runs, or zero variance on both sides —
    common with a deterministic simulator) yield ``p=0`` when the means
    differ and ``p=1`` when they are identical.
    """
    imp = relative_improvement(baseline, treatment)
    if baseline.n < 2 or treatment.n < 2 or (baseline.std == 0 and treatment.std == 0):
        p = 1.0 if baseline.mean == treatment.mean else 0.0
    elif _scipy_stats is not None:
        p = float(
            _scipy_stats.ttest_ind(
                baseline.values, treatment.values, equal_var=False
            ).pvalue
        )
    else:  # pragma: no cover - scipy absent
        # normal-approximation fallback
        import math

        se = math.sqrt(
            baseline.std**2 / baseline.n + treatment.std**2 / treatment.n
        )
        z = abs(baseline.mean - treatment.mean) / se if se else float("inf")
        p = math.erfc(z / math.sqrt(2.0))
    return Comparison(improvement=imp, p_value=p, significant=p < alpha)
