"""Top-level CLI: ``python -m repro`` delegates to the experiment runner.

``python -m repro --list`` enumerates everything that can be regenerated;
any other arguments are passed straight to
:mod:`repro.experiments.runner`.
"""

import sys

from .experiments.runner import ALL_EXPERIMENTS, main

if "--list" in sys.argv[1:]:
    print("available experiments (python -m repro <name> ...):")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    sys.exit(0)

sys.exit(main(sys.argv[1:]))
