"""Top-level CLI: ``python -m repro`` delegates to the experiment runner.

``python -m repro --list`` enumerates everything that can be regenerated;
``python -m repro scenarios ...`` drops into the declarative scenario
layer (:mod:`repro.scenarios.cli`); ``python -m repro obs ...`` inspects
recorded telemetry (:mod:`repro.obs.cli`); any other arguments are passed
straight to :mod:`repro.experiments.runner`.
"""

import sys

argv = sys.argv[1:]

if argv[:1] == ["scenarios"]:
    from .scenarios.cli import main as scenarios_main

    sys.exit(scenarios_main(argv[1:]))

if argv[:1] == ["obs"]:
    from .obs.cli import main as obs_main

    sys.exit(obs_main(argv[1:]))

from .experiments.runner import ALL_EXPERIMENTS, main

if "--list" in argv:
    print("available experiments (python -m repro <name> ...):")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    print("scenario layer: python -m repro scenarios {list,show,run,verify}")
    print("telemetry:      python -m repro obs {summary,trace,top}")
    sys.exit(0)

sys.exit(main(argv))
