"""Top-level CLI: ``python -m repro`` delegates to the experiment runner.

``python -m repro --list`` enumerates everything that can be regenerated;
``python -m repro scenarios ...`` drops into the declarative scenario
layer (:mod:`repro.scenarios.cli`); any other arguments are passed
straight to :mod:`repro.experiments.runner`.
"""

import sys

from .experiments.runner import ALL_EXPERIMENTS, main

argv = sys.argv[1:]

if argv[:1] == ["scenarios"]:
    from .scenarios.cli import main as scenarios_main

    sys.exit(scenarios_main(argv[1:]))

if "--list" in argv:
    print("available experiments (python -m repro <name> ...):")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    print("scenario layer: python -m repro scenarios {list,show,run,verify}")
    sys.exit(0)

sys.exit(main(argv))
