"""Ordered process-pool fan-out with a safe in-process fallback.

The contract is deliberately narrow: :func:`map_ordered` applies a
picklable callable to a sequence of picklable items and returns the
results *in input order*, so callers (sweep harnesses, ``run_all``) emit
byte-identical tables whether cells ran sequentially or across a pool.

Workers are forked (cheap, inherits the imported modules) when the
platform offers it; when it does not — or when ``jobs`` resolves to 1 or
there is nothing worth fanning out — execution degrades to a plain
in-process loop, which is also what keeps nested sweeps from spawning
pools inside pool workers.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Optional, Sequence, TypeVar

from .. import obs
from ..obs import insight as _insight
from ..util.validation import require

__all__ = ["available_parallelism", "map_ordered", "resolve_jobs", "supports_fork"]

_T = TypeVar("_T")

#: set in forked workers so nested map_ordered calls stay in-process
_IN_WORKER = False


class _Telemetered:
    """Wrapper a pool worker returns when telemetry (or the insight
    plane) is active: the real result plus the worker's snapshots for
    the parent to merge.  ``record`` is the telemetry snapshot (or
    ``None``), ``insight`` the insight snapshot (or ``None``)."""

    __slots__ = ("result", "record", "insight")

    def __init__(self, result: Any, record: Any, insight: Any = None) -> None:
        self.result = result
        self.record = record
        self.insight = insight


def available_parallelism() -> int:
    """Usable CPU count (>= 1)."""
    return os.cpu_count() or 1


def supports_fork() -> bool:
    """Whether this platform can fork workers (Linux/macOS yes, Windows no)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None`` → 1 (sequential), ``0`` or
    negative → all available cores, anything else is taken literally."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return available_parallelism()
    return jobs


def _call(fn: Callable[[Any], _T], item: Any) -> Any:
    global _IN_WORKER
    _IN_WORKER = True
    # A forked worker inherits the parent's active Telemetry object, but
    # mutating it here would be invisible across the process boundary —
    # so swap in a fresh child context and ship its snapshot back with
    # the result for the parent to merge.
    worker_tel = obs.worker_telemetry()
    worker_ins = _insight.worker_insight()
    if worker_tel is None and worker_ins is None:
        return fn(item)
    if worker_tel is None:
        with _insight.session(worker_ins):
            result = fn(item)
        return _Telemetered(result, None, worker_ins.snapshot())
    if worker_ins is None:
        with obs.session(worker_tel):
            result = fn(item)
        return _Telemetered(result, worker_tel.snapshot())
    with obs.session(worker_tel), _insight.session(worker_ins):
        result = fn(item)
    return _Telemetered(result, worker_tel.snapshot(), worker_ins.snapshot())


def _map_dispatch(fn: Callable[[Any], _T], items: "list[Any]", jobs: Optional[int]) -> list[_T]:
    """The raw ordered fan-out: pool when worthwhile, loop otherwise."""
    n_jobs = min(resolve_jobs(jobs), len(items))
    if n_jobs <= 1 or len(items) < 2 or not supports_fork() or _IN_WORKER:
        return [fn(item) for item in items]
    ctx = multiprocessing.get_context("fork")
    pool = ctx.Pool(processes=n_jobs)
    try:
        # starmap preserves input order and re-raises worker errors.
        raw = pool.starmap(_call, [(fn, item) for item in items])
        pool.close()
    except BaseException:
        # Reap the children before propagating: without the terminate, a
        # raising cell (or a Ctrl-C here) leaves live workers grinding
        # through the rest of the sweep with nobody collecting them.
        pool.terminate()
        raise
    finally:
        pool.join()
    tel = obs.active()
    ins = _insight.active()
    results: list[_T] = []
    for entry in raw:
        if isinstance(entry, _Telemetered):
            if entry.record is not None:
                tel.merge(entry.record)
            if entry.insight is not None:
                ins.merge(entry.insight)
            results.append(entry.result)
        else:
            results.append(entry)
    return results


def map_ordered(
    fn: Callable[[Any], _T],
    items: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    cache: Optional[Any] = None,
    cache_key: Optional[Callable[[Any], Any]] = None,
) -> list[_T]:
    """``[fn(item) for item in items]`` — possibly across a process pool.

    Results always come back in input order.  Falls back to the
    in-process loop when the effective job count is 1, the platform
    cannot fork, there are fewer than two items, or we are already
    inside a worker (no nested pools).  Worker exceptions propagate to
    the caller; the pool is torn down either way.

    ``cache`` + ``cache_key`` enable memoization (the sweep-cell result
    cache, :mod:`repro.cache`): ``cache_key(item)`` derives each item's
    key (``None`` → uncacheable, always computed), ``cache.get(key)``
    returns ``(hit, result)``, and ``cache.put(key, result)`` persists.
    Hits skip worker dispatch entirely — only the misses fan out — and
    write-back happens in *this* process after ordered collection, so
    pool workers never touch the store.
    """
    items = list(items)
    require(callable(fn), "fn must be callable")
    if cache is None or cache_key is None:
        return _map_dispatch(fn, items, jobs)
    keys = [cache_key(item) for item in items]
    results: list[Any] = [None] * len(items)
    miss_idx: list[int] = []
    for i, key in enumerate(keys):
        hit, value = cache.get(key)
        if hit:
            results[i] = value
        else:
            miss_idx.append(i)
    if miss_idx:
        computed = _map_dispatch(fn, [items[i] for i in miss_idx], jobs)
        for i, value in zip(miss_idx, computed):
            results[i] = value
            cache.put(keys[i], value)
    return results
