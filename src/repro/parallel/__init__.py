"""Parallel sweep execution for independent simulation cells.

Every :class:`~repro.sim.engine.SimulationEngine` is hermetic — no global
state — so independent (environment, policy, seed) cells can fan out
across worker processes without sharing anything but their inputs.  This
package provides the process-pool plumbing; the sweep *description* layer
(:class:`~repro.experiments.common.SweepSpec`) lives with the experiment
harnesses that use it.
"""

from .executor import (
    available_parallelism,
    map_ordered,
    resolve_jobs,
    supports_fork,
)

__all__ = [
    "available_parallelism",
    "map_ordered",
    "resolve_jobs",
    "supports_fork",
]
