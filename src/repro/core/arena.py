"""Node-level struct-of-arrays arena backend (``REPRO_CORE=arena``).

The object backend keeps one set of per-chunk arrays *per task*
(:class:`~repro.memory.pageset.PageSet`), so every daemon tick pays one
Python dispatch per task per primitive — the cost that dominates
``bench_policy_micro`` and caps the ROADMAP's "millions of simulated
tasks" goal.  :class:`NodeArena` packs every resident task's chunks into
one contiguous arena of parallel numpy arrays::

    slot:         0 ......... hi ............. capacity
    tier          ├─ task A ─┤├─ task B ─┤ ... │ (free: UNMAPPED)
    temperature   ├─ task A ─┤├─ task B ─┤ ... │ 0.0
    access_weight ├─ task A ─┤├─ task B ─┤ ... │ 0.0
    pinned / in_page_cache / region             │ defaults
    task_id       per-slot compact task handle  │ -1
    rank          (registration_seq << 32) | local_index

and rewrites the hot path as whole-node kernels: one fused
decay+classification pass (:meth:`advance`), cross-task victim and
promotion selection via masked ``argpartition`` (:meth:`select_victims`,
:meth:`global_coldest`), and vectorised tier/weight reductions
(:meth:`counts_by_tier`, :meth:`evictable_bytes`).

Adopted :class:`PageSet` objects keep their full API: their arrays are
rebound to *views* of arena slices, so ``policies/``, ``core/manager``,
``core/movement`` and the fault-evacuation paths work unchanged.  Every
kernel reproduces the object backend's selection order bit-for-bit —
identical float32 arithmetic, identical tie-breaks ((protected,
temperature, registration order, chunk index)), identical RNG draws — so
scenario digests are byte-identical across backends (tested in
``tests/test_arena.py``).

Backend selection: :func:`resolve_backend` reads the ``REPRO_CORE``
environment variable (``object`` | ``arena`` | ``arena-fast``).  The
switch deliberately lives *outside*
:class:`~repro.scenarios.spec.ScenarioSpec`: digests hash every spec
field, and the whole point is that every backend produces the same
digest for the same scenario.

``arena-fast`` relaxes the bit-exact contract: the movement daemon and
replacement paths run as whole-node batched kernels (:meth:`hot_by_tier`
/ :meth:`cold_by_tier` masked scans, :meth:`migrate_batch` /
:meth:`shadow_batch` commits) that select candidates for *all* tasks
from one pre-pass snapshot per tier instead of re-reading node state
after every pageset.  Results are statistically equivalent to the exact
backends (tolerance bands pinned in ``tests/test_arena_fast.py``), not
byte-identical — see ``docs/performance.md``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Iterable, Optional

import numpy as np

from .. import obs
from ..memory.pageset import NO_REGION, UNMAPPED, _stable_top_k
from ..memory.tiers import DRAM, NUM_TIERS, TierKind
from ..util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..memory.pageset import PageSet

__all__ = ["NodeArena", "BACKENDS", "EXACT_BACKENDS", "resolve_backend"]

BACKEND_OBJECT = "object"
BACKEND_ARENA = "arena"
BACKEND_ARENA_FAST = "arena-fast"
BACKENDS = (BACKEND_OBJECT, BACKEND_ARENA, BACKEND_ARENA_FAST)
#: the backends that promise byte-identical traces (arena-fast promises
#: statistical equivalence only — see tests/test_arena_fast.py)
EXACT_BACKENDS = (BACKEND_OBJECT, BACKEND_ARENA)

#: env var naming the backend every new NodeMemorySystem uses by default
ENV_VAR = "REPRO_CORE"

_MIN_CAPACITY = 1024

# shared empty-result index array for the candidate kernels' fast path
# (frozen so a caller can never mutate it in place)
_EMPTY_IDX = np.empty(0, dtype=np.intp)
_EMPTY_IDX.setflags(write=False)

# slots not covered by any task keep these values, so tier/task masks
# exclude them without a separate liveness array
_FREE_TIER = UNMAPPED
_FREE_TASK = -1


def resolve_backend(explicit: Optional[str] = None) -> str:
    """The core backend to use: ``explicit`` when given, else ``$REPRO_CORE``,
    else the object backend."""
    name = explicit if explicit is not None else os.environ.get(ENV_VAR, BACKEND_OBJECT)
    name = str(name).strip().lower() or BACKEND_OBJECT
    require(name in BACKENDS, f"unknown core backend {name!r} (expected one of {BACKENDS})")
    return name


class _TaskEntry:
    """Bookkeeping for one adopted pageset: its arena segment and identity."""

    __slots__ = ("owner", "ps", "start", "n", "chunk_size", "slot", "seq")

    def __init__(self, owner, ps, start, n, chunk_size, slot, seq):
        self.owner = owner
        self.ps = ps
        self.start = start
        self.n = n
        self.chunk_size = chunk_size
        self.slot = slot
        self.seq = seq


def _top_k_by_temp_rank(
    temp: np.ndarray, rank: np.ndarray, cand: np.ndarray, k: int
) -> np.ndarray:
    """The ``k`` positions from ``cand`` with the smallest
    ``(temp, rank)`` key, returned in ascending key order.

    Equivalent to ``cand[np.lexsort((rank[cand], temp[cand]))][:k]`` but
    O(n + k log k): partition on temperature, then break boundary ties by
    rank — exactly the object backend's global ``sort(key=(protected,
    temperature, registration order, index))`` within one protection
    class, because ``rank`` encodes (registration seq, local index).
    """
    if k <= 0 or cand.size == 0:
        return cand[:0]
    t = temp[cand]
    if k >= t.size:
        order = np.lexsort((rank[cand], t))
        return cand[order]
    kth = np.partition(t, k - 1)[k - 1]
    below = np.flatnonzero(t < kth)
    ties = np.flatnonzero(t == kth)
    m = k - below.size
    if m < ties.size:
        # admit the m boundary ties with the smallest ranks (rank is unique)
        ties = ties[np.argpartition(rank[cand[ties]], m - 1)[:m]]
    sel = np.concatenate([below, ties])
    order = np.lexsort((rank[cand[sel]], t[sel]))
    return cand[sel[order]]


class NodeArena:
    """Packed per-chunk state for every pageset resident on one node.

    Segments are allocated first-fit from a free list and zeroed on
    release; the backing arrays double when full, re-pointing every live
    pageset's views (segment offsets never move, so only the base arrays
    change).  ``hi`` is the scan watermark — kernels touch ``[:hi]`` only.
    """

    def __init__(self, node_id: str = "node0") -> None:
        self.node_id = node_id
        self.capacity = 0
        #: end of the highest allocated segment; kernels scan [:hi]
        self.hi = 0
        self._seq = 0
        self._tasks: dict[str, _TaskEntry] = {}  # insertion order == registration order
        self._slots: list[Optional[_TaskEntry]] = []
        self._free_slots: list[int] = []
        self._free: list[list[int]] = []  # [start, length], sorted by start
        # (owners, seg_owner, seg_lens) run-length map of [0, hi); rebuilt
        # lazily after adopt/release so advance() can np.repeat the per-task
        # rate·dt gains instead of looping a segment assignment per task
        self._seg_cache: Optional[tuple[list[str], np.ndarray, np.ndarray]] = None
        # packed per-slot protection flags for the arena-fast masked scans;
        # rebuilt by refresh_protection() at the top of every fast tick and
        # invalidated whenever the slot table changes
        self._prot_slots: Optional[np.ndarray] = None
        self._alloc_arrays(0)
        #: cumulative obs rollups (cheap ints; emitted when telemetry is on)
        self.cells_advanced = 0
        self.kernel_invocations = 0

    def _alloc_arrays(self, n: int) -> None:
        self.tier = np.full(n, _FREE_TIER, dtype=np.int8)
        self.temperature = np.zeros(n, dtype=np.float32)
        self.access_weight = np.zeros(n, dtype=np.float32)
        self.pinned = np.zeros(n, dtype=bool)
        self.in_page_cache = np.zeros(n, dtype=bool)
        self.region = np.full(n, NO_REGION, dtype=np.int16)
        self.task_id = np.full(n, _FREE_TASK, dtype=np.int32)
        self.rank = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # segment allocation
    # ------------------------------------------------------------------ #
    def _recompute_hi(self) -> None:
        if self._free and self._free[-1][0] + self._free[-1][1] == self.capacity:
            self.hi = self._free[-1][0]
        else:
            self.hi = self.capacity

    def _grow(self, need: int) -> None:
        new_cap = max(self.capacity * 2, need, _MIN_CAPACITY)
        old = (
            self.tier, self.temperature, self.access_weight, self.pinned,
            self.in_page_cache, self.region, self.task_id, self.rank,
        )
        n = self.capacity
        self._alloc_arrays(new_cap)
        for dst, src in zip(
            (self.tier, self.temperature, self.access_weight, self.pinned,
             self.in_page_cache, self.region, self.task_id, self.rank),
            old,
        ):
            dst[:n] = src
        # the tail joins the free list (coalescing with a trailing hole)
        if self._free and self._free[-1][0] + self._free[-1][1] == n:
            self._free[-1][1] += new_cap - n
        else:
            self._free.append([n, new_cap - n])
        self.capacity = new_cap
        # segment offsets are stable across growth; only the base arrays
        # changed, so every live pageset's views must be re-pointed
        for entry in self._tasks.values():
            entry.ps._bind_arena_views(self, entry.start)

    def _alloc(self, n: int) -> int:
        while True:
            for i, seg in enumerate(self._free):
                if seg[1] >= n:
                    start = seg[0]
                    if seg[1] == n:
                        self._free.pop(i)
                    else:
                        seg[0] += n
                        seg[1] -= n
                    self._recompute_hi()
                    return start
            self._grow(self.capacity + n)

    def _release_segment(self, start: int, n: int) -> None:
        # insert sorted and coalesce with both neighbours
        import bisect

        starts = [s[0] for s in self._free]
        i = bisect.bisect_left(starts, start)
        self._free.insert(i, [start, n])
        if i + 1 < len(self._free) and start + n == self._free[i + 1][0]:
            self._free[i][1] += self._free[i + 1][1]
            self._free.pop(i + 1)
        if i > 0 and self._free[i - 1][0] + self._free[i - 1][1] == start:
            self._free[i - 1][1] += self._free[i][1]
            self._free.pop(i)
        self._recompute_hi()

    # ------------------------------------------------------------------ #
    # adoption lifecycle
    # ------------------------------------------------------------------ #
    def adopt(self, ps: "PageSet") -> None:
        """Move ``ps``'s per-chunk state into the arena and rebind its
        arrays to views of the allocated segment."""
        require(ps.owner not in self._tasks, f"pageset {ps.owner!r} already adopted")
        require(ps.arena is None, f"pageset {ps.owner!r} is adopted by another arena")
        n = ps.n_chunks
        start = self._alloc(n)
        end = start + n
        self.tier[start:end] = ps.tier
        self.temperature[start:end] = ps.temperature
        self.access_weight[start:end] = ps.access_weight
        self.pinned[start:end] = ps.pinned
        self.in_page_cache[start:end] = ps.in_page_cache
        self.region[start:end] = ps.region
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = len(self._slots)
            self._slots.append(None)
        self._seq += 1
        entry = _TaskEntry(ps.owner, ps, start, n, ps.chunk_size, slot, self._seq)
        self.task_id[start:end] = slot
        # rank = (registration seq, local index) packed into one int64 so a
        # single lexsort key reproduces the object backend's tie-break
        self.rank[start:end] = (np.int64(self._seq) << np.int64(32)) + np.arange(
            n, dtype=np.int64
        )
        self._tasks[ps.owner] = entry
        self._slots[slot] = entry
        self._seg_cache = None
        self._prot_slots = None
        ps._bind_arena_views(self, start)

    def release(self, ps: "PageSet") -> None:
        """Detach ``ps`` — copy its state back out to standalone arrays and
        zero the segment so kernels never see stale chunks."""
        entry = self._tasks.pop(ps.owner, None)
        require(entry is not None and entry.ps is ps, f"pageset {ps.owner!r} not adopted here")
        start, end = entry.start, entry.start + entry.n
        ps._unbind_arena_views()
        self.tier[start:end] = _FREE_TIER
        self.temperature[start:end] = 0.0
        self.access_weight[start:end] = 0.0
        self.pinned[start:end] = False
        self.in_page_cache[start:end] = False
        self.region[start:end] = NO_REGION
        self.task_id[start:end] = _FREE_TASK
        self.rank[start:end] = 0
        self._slots[entry.slot] = None
        self._free_slots.append(entry.slot)
        self._seg_cache = None
        self._prot_slots = None
        self._release_segment(start, entry.n)

    def entries(self) -> Iterable[_TaskEntry]:
        """Adopted tasks in registration order."""
        return self._tasks.values()

    def __len__(self) -> int:
        return len(self._tasks)

    def _chunk_sizes(self) -> np.ndarray:
        """``int64[n_slots]`` chunk size per task slot (0 for free slots)."""
        out = np.zeros(max(1, len(self._slots)), dtype=np.int64)
        for entry in self._tasks.values():
            out[entry.slot] = entry.chunk_size
        return out

    def min_chunk_size(self) -> int:
        """Smallest chunk size across adopted tasks (0 with no tasks) —
        the conservative divisor for byte→chunk candidate caps on nodes
        with mixed chunk sizes."""
        return min((e.chunk_size for e in self._tasks.values()), default=0)

    def chunk_cost(self, positions: np.ndarray) -> np.ndarray:
        """``int64`` byte cost per arena position (each owner's chunk
        size), the term every byte-budgeted prefix cut integrates."""
        if positions.size == 0:
            return np.zeros(0, dtype=np.int64)
        return self._chunk_sizes()[self.task_id[positions]]

    def owner_chunk_counts(self, positions: np.ndarray) -> list[tuple[str, int]]:
        """Per-owner chunk counts for ``positions`` (registration order) —
        how batched moves fan back out to per-task fault accounting."""
        if positions.size == 0:
            return []
        counts = np.bincount(self.task_id[positions], minlength=len(self._slots))
        return [(e.owner, int(counts[e.slot])) for e in self._tasks.values() if counts[e.slot]]

    def refresh_protection(self, classify: Callable[[str], bool]) -> None:
        """Rebuild the packed per-slot protection column the arena-fast
        masked scans honour.  Runs once per fast tick (O(tasks)), so the
        per-chunk scans never call back into Python per candidate."""
        prot = np.zeros(max(1, len(self._slots)), dtype=bool)
        for entry in self._tasks.values():
            if classify(entry.owner):
                prot[entry.slot] = True
        self._prot_slots = prot

    def _rate_segments(self) -> tuple[list[str], np.ndarray, np.ndarray]:
        """Run-length map of ``[0, hi)`` for the advance kernel: ``owners``
        lists adopted tasks in segment order, ``seg_owner[i]`` indexes it
        (-1 for free runs) and ``seg_lens[i]`` is the run length.  Cached
        until the next adopt/release changes the layout."""
        cache = self._seg_cache
        if cache is not None:
            return cache
        entries = sorted(self._tasks.values(), key=lambda en: en.start)
        owners = [en.owner for en in entries]
        seg_owner: list[int] = []
        seg_lens: list[int] = []
        pos = 0
        for i, en in enumerate(entries):
            if en.start > pos:
                seg_owner.append(-1)
                seg_lens.append(en.start - pos)
            seg_owner.append(i)
            seg_lens.append(en.n)
            pos = en.start + en.n
        if pos < self.hi:
            seg_owner.append(-1)
            seg_lens.append(self.hi - pos)
        out = (
            owners,
            np.asarray(seg_owner, dtype=np.intp),
            np.asarray(seg_lens, dtype=np.int64),
        )
        self._seg_cache = out
        return out

    # ------------------------------------------------------------------ #
    # kernel: fused temperature decay + classification
    # ------------------------------------------------------------------ #
    def advance(self, dt: float, decay: float, rates: Optional[dict[str, float]]) -> int:
        """One whole-node heatmap pass: decay every resident temperature and
        add each running task's ``access_weight * rate * dt`` gain, in one
        fused float32 sweep.  Returns the number of cells touched.

        Bit-identical to the per-pageset path: the same f32 decay factor
        multiplies every element, and a per-slot f32 rate·dt array makes
        the gain term elementwise-identical to the per-task scalar
        broadcast (idle slices gain 0, and x+0.0f == x for the
        non-negative temperatures the heatmap maintains).
        """
        if not obs.enabled():
            return self._advance_kernel(dt, decay, rates)
        # telemetry-on path: per-node kernel time as a span, cells as a
        # counter — one emission pair per daemon tick, never per cell
        with obs.span("arena.advance", node=self.node_id):
            n = self._advance_kernel(dt, decay, rates)
        obs.counter("arena.cells_advanced", n, node=self.node_id)
        return n

    def _advance_kernel(
        self, dt: float, decay: float, rates: Optional[dict[str, float]]
    ) -> int:
        hi = self.hi
        if hi == 0:
            return 0
        t = self.temperature[:hi]
        owners, seg_owner, seg_lens = self._rate_segments()
        if rates is None:
            per_task = [1.0] * len(owners)
        else:
            per_task = [rates.get(o, 0.0) for o in owners]
        rdt: Optional[np.ndarray] = None
        if any(r > 0.0 for r in per_task):
            # one f32 value per task (clamped: non-running tasks gain 0)
            # plus a trailing 0 that free runs (seg_owner == -1) pick up,
            # expanded over the segment map in a single repeat — identical
            # values to the per-task scalar assignments this replaces
            vals = np.asarray(per_task, dtype=np.float64) * dt
            vals[vals < 0.0] = 0.0
            gain = np.append(vals, 0.0).astype(np.float32)
            rdt = np.repeat(gain[seg_owner], seg_lens)
        has_heat = bool(t.any())
        if not has_heat and rdt is None:
            return 0
        if has_heat:
            t *= np.float32(decay)
        if rdt is not None:
            t += self.access_weight[:hi] * rdt
        self.cells_advanced += hi
        self.kernel_invocations += 1
        return hi

    # ------------------------------------------------------------------ #
    # kernel: per-task threshold-filtered candidates
    # ------------------------------------------------------------------ #
    def cold_chunks(
        self,
        ps: "PageSet",
        tier: TierKind,
        max_chunks: int,
        *,
        max_temperature: Optional[float] = None,
        include_pinned: bool = False,
    ) -> np.ndarray:
        """``ps.coldest_in(tier, max_chunks)`` post-filtered to
        ``temperature <= max_temperature``, computed filter-first.

        Filtering before the top-k is an exact rewrite: every unfiltered
        top-k entry above the bar survives in the same stable order, and
        once one entry falls below the bar so does everything after it —
        so both orders yield the same list.  Filtering first keeps the
        partition tiny when only a sliver of the slice qualifies (the
        proactive-swap common case), instead of top-k over the full slice.
        """
        entry = self._tasks.get(ps.owner)
        if entry is None or entry.ps is not ps:
            require(False, f"{ps.owner!r} not adopted")
        s, e = entry.start, entry.start + entry.n
        mask = self.tier[s:e] == int(tier)
        if not mask.any():
            return _EMPTY_IDX
        temp = self.temperature[s:e]
        if not include_pinned:
            mask &= ~self.pinned[s:e]
        if max_temperature is not None:
            mask &= temp <= max_temperature
        cand = mask.nonzero()[0]
        if cand.size == 0 or max_chunks <= 0:
            return cand[:0]
        return cand[_stable_top_k(temp[cand], max_chunks)]

    def hot_chunks(
        self,
        ps: "PageSet",
        tier: TierKind,
        max_chunks: int,
        *,
        min_temperature: Optional[float] = None,
    ) -> np.ndarray:
        """``ps.hottest_in(tier, max_chunks)`` post-filtered to
        ``temperature >= min_temperature`` (filter-first, same argument as
        :meth:`cold_chunks` with the order reversed)."""
        entry = self._tasks.get(ps.owner)
        if entry is None or entry.ps is not ps:
            require(False, f"{ps.owner!r} not adopted")
        s, e = entry.start, entry.start + entry.n
        mask = self.tier[s:e] == int(tier)
        if not mask.any():
            return _EMPTY_IDX
        temp = self.temperature[s:e]
        if min_temperature is not None:
            mask &= temp >= min_temperature
        cand = mask.nonzero()[0]
        if cand.size == 0 or max_chunks <= 0:
            return cand[:0]
        return cand[_stable_top_k(-temp[cand], max_chunks)]

    # ------------------------------------------------------------------ #
    # kernel: cross-task victim selection (Algorithm 2's global scan)
    # ------------------------------------------------------------------ #
    def select_victims(
        self,
        tier: TierKind,
        need_chunks: int,
        classify: Callable[[str], bool],
        *,
        protect_owner: Optional[str] = None,
    ) -> list[tuple["PageSet", np.ndarray]]:
        """Globally-coldest unpinned victims in ``tier``, unprotected
        workflows first — the arena form of
        :meth:`~repro.core.replacement.PageReplacementPolicy.select_victims`.

        One masked pass over the arena replaces the object backend's
        per-task ``coldest_in`` calls plus the Python merge loop; the
        two-level (protected, temperature, registration, index) order is
        reproduced by selecting per protection class with
        :func:`_top_k_by_temp_rank`.  Returns ``(pageset, local_indices)``
        in first-appearance order with chunks in selection order.
        """
        return self._group_in_order(
            self.select_victim_positions(
                tier, need_chunks, classify, protect_owner=protect_owner
            )
        )

    def select_victim_positions(
        self,
        tier: TierKind,
        need_chunks: int,
        classify: Callable[[str], bool],
        *,
        protect_owner: Optional[str] = None,
    ) -> np.ndarray:
        """:meth:`select_victims` before grouping: raw arena positions in
        selection order — the form the arena-fast batched demotion path
        consumes directly."""
        hi = self.hi
        if hi == 0 or need_chunks <= 0 or not self._tasks:
            return _EMPTY_IDX
        elig = self.tier[:hi] == int(tier)
        elig &= ~self.pinned[:hi]
        n_slots = len(self._slots)
        prot_tab = np.zeros(n_slots, dtype=bool)
        for entry in self._tasks.values():
            if entry.owner == protect_owner:
                elig[entry.start : entry.start + entry.n] = False
            elif classify(entry.owner):
                prot_tab[entry.slot] = True
        cand = np.flatnonzero(elig)
        if cand.size == 0:
            return _EMPTY_IDX
        self.kernel_invocations += 1
        if obs.enabled():
            obs.counter("arena.cells_scanned", hi, node=self.node_id, kernel="select_victims")
        temp = self.temperature[:hi]
        rank = self.rank[:hi]
        prot_c = prot_tab[self.task_id[cand]]
        unprot = cand[~prot_c]
        chosen = _top_k_by_temp_rank(temp, rank, unprot, min(need_chunks, unprot.size))
        if chosen.size < need_chunks:
            prot = cand[prot_c]
            if prot.size:
                extra = _top_k_by_temp_rank(
                    temp, rank, prot, min(need_chunks - chosen.size, prot.size)
                )
                chosen = np.concatenate([chosen, extra])
        return chosen

    def _group_in_order(self, chosen: np.ndarray) -> list[tuple["PageSet", np.ndarray]]:
        """Group selected arena positions by owner (first-appearance order),
        keeping each owner's chunks in selection order as local indices."""
        if chosen.size == 0:
            return []
        tids = self.task_id[chosen]
        uniq, first = np.unique(tids, return_index=True)
        out: list[tuple["PageSet", np.ndarray]] = []
        for slot in uniq[np.argsort(first, kind="stable")]:
            entry = self._slots[slot]
            local = chosen[tids == slot] - entry.start
            out.append((entry.ps, local.astype(np.int64)))
        return out

    # ------------------------------------------------------------------ #
    # kernel: global LRU scan (the Linux baseline's victim walk)
    # ------------------------------------------------------------------ #
    def global_coldest(
        self,
        tier: TierKind,
        max_chunks: int,
        rng: np.random.Generator,
        *,
        include_pinned: bool = False,
        skip_owners: frozenset[str] = frozenset(),
        scan_noise: float = 0.0,
    ) -> list[tuple["PageSet", np.ndarray]]:
        """The arena form of :func:`repro.policies.linux.global_coldest`:
        ``max_chunks`` victims, the cold share globally coldest and the
        noise share uniform over candidate chunks, with the *identical*
        single ``rng.choice`` draw (same pool total, same pick→chunk map)
        so RNG streams match the object backend exactly.
        """
        if max_chunks <= 0 or not self._tasks:
            return []
        hi = self.hi
        if hi == 0:
            return []
        n_noise = int(round(max_chunks * scan_noise)) if scan_noise > 0 else 0
        n_cold = max_chunks - n_noise
        elig = self.tier[:hi] == int(tier)
        if not include_pinned:
            elig &= ~self.pinned[:hi]
        for owner in skip_owners:
            entry = self._tasks.get(owner)
            if entry is not None:
                elig[entry.start : entry.start + entry.n] = False
        cand = np.flatnonzero(elig)
        if cand.size == 0:
            return []
        self.kernel_invocations += 1
        if obs.enabled():
            obs.counter("arena.cells_scanned", hi, node=self.node_id, kernel="global_coldest")
        temp = self.temperature[:hi]
        tids = self.task_id[cand]
        chosen = _top_k_by_temp_rank(temp, self.rank[:hi], cand, min(n_cold, cand.size))
        picks_pos: list[np.ndarray] = [chosen]
        if n_noise:
            # per-task pools capped at max_chunks, in registration order —
            # the object backend's pool layout, so the single choice() draw
            # and its pick→(task, j-th coldest) decoding line up exactly
            counts = np.bincount(tids, minlength=len(self._slots))
            pool_entries = [e for e in self._tasks.values() if counts[e.slot] > 0]
            sizes = np.array(
                [min(int(counts[e.slot]), max_chunks) for e in pool_entries], dtype=np.int64
            )
            total = int(sizes.sum())
            if total:
                picks = rng.choice(total, size=min(n_noise, total), replace=False)
                offsets = np.concatenate(([0], np.cumsum(sizes)))
                by_task: dict[int, np.ndarray] = {}
                noise = np.empty(picks.size, dtype=np.int64)
                for j, p in enumerate(picks):
                    k = int(np.searchsorted(offsets, p, side="right")) - 1
                    entry = pool_entries[k]
                    order = by_task.get(entry.slot)
                    if order is None:
                        c = cand[tids == entry.slot]
                        order = c[np.argsort(temp[c], kind="stable")]
                        by_task[entry.slot] = order
                    noise[j] = order[int(p) - int(offsets[k])]
                picks_pos.append(noise)
        allpos = np.concatenate(picks_pos)
        # group by owner in first-appearance order; per-owner indices are
        # deduped ascending (np.unique == the object backend's sorted(set))
        all_tids = self.task_id[allpos]
        uniq, first = np.unique(all_tids, return_index=True)
        out: list[tuple["PageSet", np.ndarray]] = []
        for slot in uniq[np.argsort(first, kind="stable")]:
            entry = self._slots[slot]
            local = np.unique(allpos[all_tids == slot] - entry.start)
            out.append((entry.ps, local.astype(np.int64)))
        return out

    # ------------------------------------------------------------------ #
    # kernels: cross-task candidate scans + batch commits (arena-fast)
    #
    # The exact backends must interleave candidate scans with migrations
    # (mid-pass moves feed later scans), which forces a Python loop per
    # task.  These kernels instead select candidates for *all* tasks from
    # one pre-pass snapshot per tier and commit moves in one vectorised
    # pass — the relaxed arena-fast contract.
    # ------------------------------------------------------------------ #
    def hot_by_tier(
        self,
        tier: TierKind,
        max_chunks: int,
        *,
        min_temperature: Optional[float] = None,
    ) -> np.ndarray:
        """Up to ``max_chunks`` arena positions resident in ``tier``,
        hottest first (ties by registration order then chunk index),
        across every adopted task in one masked scan."""
        hi = self.hi
        if hi == 0 or max_chunks <= 0 or not self._tasks:
            return _EMPTY_IDX
        mask = self.tier[:hi] == int(tier)
        if not mask.any():
            return _EMPTY_IDX
        temp = self.temperature[:hi]
        if min_temperature is not None:
            mask &= temp >= min_temperature
        cand = np.flatnonzero(mask)
        if cand.size == 0:
            return cand
        self.kernel_invocations += 1
        if obs.enabled():
            obs.counter("arena.cells_scanned", hi, node=self.node_id, kernel="hot_by_tier")
        return _top_k_by_temp_rank(-temp, self.rank[:hi], cand, min(max_chunks, cand.size))

    def cold_by_tier(
        self,
        tier: TierKind,
        max_chunks: int,
        *,
        max_temperature: Optional[float] = None,
        skip_protected: bool = False,
        protect_owner: Optional[str] = None,
        include_pinned: bool = False,
    ) -> np.ndarray:
        """Up to ``max_chunks`` arena positions resident in ``tier``,
        coldest first across every adopted task.  ``skip_protected``
        honours the packed per-slot protection column (which
        :meth:`refresh_protection` must have rebuilt this tick)."""
        hi = self.hi
        if hi == 0 or max_chunks <= 0 or not self._tasks:
            return _EMPTY_IDX
        mask = self.tier[:hi] == int(tier)
        if not mask.any():
            return _EMPTY_IDX
        if not include_pinned:
            mask &= ~self.pinned[:hi]
        temp = self.temperature[:hi]
        if max_temperature is not None:
            mask &= temp <= max_temperature
        if protect_owner is not None:
            entry = self._tasks.get(protect_owner)
            if entry is not None:
                mask[entry.start : entry.start + entry.n] = False
        cand = np.flatnonzero(mask)
        if skip_protected and cand.size:
            prot = self._prot_slots
            require(prot is not None, "refresh_protection() must run before protected scans")
            cand = cand[~prot[self.task_id[cand]]]
        if cand.size == 0:
            return cand
        self.kernel_invocations += 1
        if obs.enabled():
            obs.counter("arena.cells_scanned", hi, node=self.node_id, kernel="cold_by_tier")
        return _top_k_by_temp_rank(temp, self.rank[:hi], cand, min(max_chunks, cand.size))

    def migrate_batch(self, positions: np.ndarray, dst: TierKind) -> tuple[np.ndarray, int, int]:
        """Commit tier moves for ``positions`` (all mapped, none already in
        ``dst``) in one vectorised pass.  Returns ``(bytes_per_src,
        shadow_chunks_dropped, shadow_bytes_dropped)`` so the caller
        (:meth:`NodeMemorySystem.migrate_positions`) can settle the
        used/free/page-cache counters and invariant deltas without looping
        per chunk range.  Shadows drop only on arrival in DRAM (the
        authoritative copy is byte-addressable again)."""
        csizes = self._chunk_sizes()
        comp = (
            self.task_id[positions].astype(np.int64) * NUM_TIERS
            + self.tier[positions].astype(np.int64)
        )
        counts = np.bincount(comp, minlength=csizes.size * NUM_TIERS)
        bytes_per_src = (counts.reshape(csizes.size, NUM_TIERS) * csizes[:, None]).sum(axis=0)
        sh_chunks = 0
        sh_bytes = 0
        if dst == DRAM:
            shadowed = positions[self.in_page_cache[positions]]
            if shadowed.size:
                self.in_page_cache[shadowed] = False
                sh_chunks = int(shadowed.size)
                sh_bytes = int(csizes[self.task_id[shadowed]].sum())
        self.tier[positions] = np.int8(int(dst))
        self.kernel_invocations += 1
        return bytes_per_src, sh_chunks, sh_bytes

    def shadow_batch(self, positions: np.ndarray, room_bytes: int) -> tuple[np.ndarray, int]:
        """Mark page-cache shadow copies for the not-yet-shadowed prefix of
        ``positions`` that fits in ``room_bytes`` of free DRAM.  Returns
        ``(taken_positions, nbytes)``."""
        fresh = positions[~self.in_page_cache[positions]]
        if fresh.size == 0 or room_bytes <= 0:
            return fresh[:0], 0
        cum = np.cumsum(self.chunk_cost(fresh))
        take = fresh[: int(np.searchsorted(cum, room_bytes, side="right"))]
        if take.size == 0:
            return take, 0
        self.in_page_cache[take] = True
        self.kernel_invocations += 1
        return take, int(cum[take.size - 1])

    # ------------------------------------------------------------------ #
    # kernel: tier reductions
    # ------------------------------------------------------------------ #
    def counts_by_task_tier(self) -> np.ndarray:
        """``int64[n_slots, NUM_TIERS]`` mapped-chunk counts per task/tier."""
        hi = self.hi
        n_slots = max(1, len(self._slots))
        if hi == 0:
            return np.zeros((n_slots, NUM_TIERS), dtype=np.int64)
        tier = self.tier[:hi]
        mapped = tier != UNMAPPED
        comp = (
            self.task_id[:hi][mapped].astype(np.int64) * NUM_TIERS
            + tier[mapped].astype(np.int64)
        )
        return np.bincount(comp, minlength=n_slots * NUM_TIERS).reshape(n_slots, NUM_TIERS)

    def used_bytes_by_tier(self) -> np.ndarray:
        """``int64[NUM_TIERS]`` resident bytes per tier — the reduction
        ``NodeMemorySystem.validate`` checks its counters against."""
        return (self.counts_by_task_tier() * self._chunk_sizes()[:, None]).sum(axis=0)

    def shadow_bytes(self) -> int:
        """Total bytes of DRAM page-cache shadow copies."""
        hi = self.hi
        if hi == 0:
            return 0
        shadow = self.in_page_cache[:hi]
        if not shadow.any():
            return 0
        counts = np.bincount(
            self.task_id[:hi][shadow].astype(np.int64), minlength=len(self._slots)
        )
        return int((counts * self._chunk_sizes()[: counts.size]).sum())

    def evictable_bytes(
        self,
        tiers: Iterable[TierKind],
        cold_threshold: float,
        *,
        protect_owner: Optional[str] = None,
    ) -> dict[TierKind, int]:
        """Cold, unpinned, unprotected bytes per tier — Algorithm 1's
        evictable map as one composite bincount instead of a per-task loop."""
        tiers = tuple(tiers)
        hi = self.hi
        if hi == 0:
            return {t: 0 for t in tiers}
        tier = self.tier[:hi]
        elig = (tier != UNMAPPED) & ~self.pinned[:hi]
        elig &= self.temperature[:hi] <= cold_threshold
        if protect_owner is not None:
            entry = self._tasks.get(protect_owner)
            if entry is not None:
                elig[entry.start : entry.start + entry.n] = False
        if not elig.any():
            return {t: 0 for t in tiers}
        comp = (
            self.task_id[:hi][elig].astype(np.int64) * NUM_TIERS
            + tier[elig].astype(np.int64)
        )
        n_slots = max(1, len(self._slots))
        counts = np.bincount(comp, minlength=n_slots * NUM_TIERS).reshape(n_slots, NUM_TIERS)
        per_tier = (counts * self._chunk_sizes()[:, None]).sum(axis=0)
        return {t: int(per_tier[int(t)]) for t in tiers}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<NodeArena {self.node_id} tasks={len(self._tasks)} "
            f"hi={self.hi} capacity={self.capacity}>"
        )
