"""Shared memory across workflows on CXL (§III-C5).

Three strategies from the paper:

1. **Locality-aware shared regions** — read-only data shared between
   workflows lives in cluster-visible CXL memory, with per-node local
   buffer caching for fast repeated access.
2. **CXL-hosted container images** — the scheduler stages images into the
   shared pool once, so scale-outs hit CXL instead of re-pulling over the
   network (the Fig. 10/11 startup-time win).
3. **Scale-down safety** — shared regions are reference-counted; memory
   is freed only "when all references in the corresponding page tables
   have been removed".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory.topology import SharedCXLPool
from ..util.validation import check_positive, require

__all__ = ["SharedRegionHandle", "SharedMemoryManager"]


@dataclass(frozen=True)
class SharedRegionHandle:
    """An attached shared region as seen by one workflow."""

    name: str
    nbytes: int
    owner: str


@dataclass
class _NodeCache:
    """Per-node local-buffer cache of shared regions (strategy 1)."""

    cached: set[str] = field(default_factory=set)


class SharedMemoryManager:
    """Tracks shared CXL regions, per-node caches, and references."""

    def __init__(self, pool: SharedCXLPool, n_nodes: int) -> None:
        check_positive(n_nodes, "n_nodes")
        self.pool = pool
        self._node_caches = [_NodeCache() for _ in range(n_nodes)]
        self._attachments: dict[tuple[str, str], SharedRegionHandle] = {}
        self.stage_count = 0
        self.cache_hits = 0

    # ------------------------------------------------------------------ #
    # staging & attachment
    # ------------------------------------------------------------------ #
    def stage(self, name: str, nbytes: int, owner: str = "_platform") -> SharedRegionHandle:
        """Stage (or re-reference) a region in shared CXL memory.

        The platform itself holds the initial reference for images so a
        burst of container starts never races region teardown.
        """
        fresh = self.pool.stage(name, nbytes)
        if fresh:
            self.stage_count += 1
        handle = SharedRegionHandle(name, self.pool.region_bytes(name), owner)
        self._attachments[(owner, name)] = handle
        return handle

    def attach(self, owner: str, name: str) -> SharedRegionHandle:
        """A workflow maps an existing shared region."""
        require(self.pool.contains(name), f"shared region {name!r} is not staged")
        key = (owner, name)
        require(key not in self._attachments, f"{owner!r} already attached to {name!r}")
        self.pool.acquire(name)
        handle = SharedRegionHandle(name, self.pool.region_bytes(name), owner)
        self._attachments[key] = handle
        return handle

    def detach(self, owner: str, name: str) -> bool:
        """Drop one workflow's reference; returns True when the region was
        freed (last reference gone — the scale-down rule)."""
        key = (owner, name)
        require(key in self._attachments, f"{owner!r} is not attached to {name!r}")
        del self._attachments[key]
        freed = self.pool.release(name)
        if freed:
            for cache in self._node_caches:
                cache.cached.discard(name)
        return freed

    def detach_all(self, owner: str) -> int:
        """Release every region ``owner`` holds (container teardown)."""
        names = [name for (o, name) in list(self._attachments) if o == owner]
        for name in names:
            self.detach(owner, name)
        return len(names)

    # ------------------------------------------------------------------ #
    # locality (strategy 1)
    # ------------------------------------------------------------------ #
    def is_cached_on(self, node_index: int, name: str) -> bool:
        return name in self._node_caches[node_index].cached

    def note_access(self, node_index: int, name: str) -> bool:
        """Record an access from a node; the first access populates the
        node's local buffer cache, later ones are cache hits.  Returns
        whether this access was a hit."""
        require(self.pool.contains(name), f"shared region {name!r} is not staged")
        cache = self._node_caches[node_index].cached
        if name in cache:
            self.cache_hits += 1
            return True
        cache.add(name)
        return False

    def attachments_of(self, owner: str) -> tuple[SharedRegionHandle, ...]:
        return tuple(h for (o, _), h in self._attachments.items() if o == owner)

    @property
    def staged_bytes(self) -> int:
        return self.pool.used
