"""The paper's contribution: application-attuned tiered-memory management.

Exposes the Tiered Memory Manager (the IMME policy), Algorithm 1
(allocation), Algorithm 2 (replacement), the intelligent page-movement
daemon, the flag predictor, page heatmaps, shared-memory management, and
the Table I ``allocate_TM``/``free_TM`` API.

Attributes are resolved lazily (PEP 562): :mod:`repro.policies` imports
:mod:`repro.core.flags` while :mod:`repro.core.manager` imports
:mod:`repro.policies`, and lazy resolution is what keeps that dependency
diamond acyclic at import time.
"""

from importlib import import_module
from typing import TYPE_CHECKING

_EXPORTS = {
    "AllocationPlan": ".allocation",
    "EvictableMap": ".allocation",
    "TierAllocator": ".allocation",
    "bandwidth_fractions": ".allocation",
    "RegionHandle": ".api",
    "TieredMemoryClient": ".api",
    "BACKEND_ARENA": ".arena",
    "BACKEND_OBJECT": ".arena",
    "NodeArena": ".arena",
    "resolve_backend": ".arena",
    "MemFlag": ".flags",
    "normalize_flags": ".flags",
    "parse_flags": ".flags",
    "HeatmapConfig": ".heatmap",
    "PageHeatmap": ".heatmap",
    "hot_mask": ".heatmap",
    "idle_fraction": ".heatmap",
    "TieredMemoryManager": ".manager",
    "classify_tiers": ".manager",
    "IntelligentPageMovement": ".movement",
    "MovementConfig": ".movement",
    "ExecutionLogStore": ".predictor",
    "ExecutionRecord": ".predictor",
    "FlagPredictor": ".predictor",
    "flag_sizes_from_heatmap": ".predictor",
    "PageReplacementPolicy": ".replacement",
    "is_protected": ".replacement",
    "SharedMemoryManager": ".sharing",
    "SharedRegionHandle": ".sharing",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module, __name__), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static typing only
    from .allocation import (  # noqa: F401
        AllocationPlan,
        EvictableMap,
        TierAllocator,
        bandwidth_fractions,
    )
    from .api import RegionHandle, TieredMemoryClient  # noqa: F401
    from .arena import (  # noqa: F401
        BACKEND_ARENA,
        BACKEND_OBJECT,
        NodeArena,
        resolve_backend,
    )
    from .flags import MemFlag, normalize_flags, parse_flags  # noqa: F401
    from .heatmap import HeatmapConfig, PageHeatmap, hot_mask, idle_fraction  # noqa: F401
    from .manager import TieredMemoryManager, classify_tiers  # noqa: F401
    from .movement import IntelligentPageMovement, MovementConfig  # noqa: F401
    from .predictor import (  # noqa: F401
        ExecutionLogStore,
        ExecutionRecord,
        FlagPredictor,
        flag_sizes_from_heatmap,
    )
    from .replacement import PageReplacementPolicy, is_protected  # noqa: F401
    from .sharing import SharedMemoryManager, SharedRegionHandle  # noqa: F401
