"""Algorithm 1 — page allocation policy for HPC workflows with tiered memory.

A faithful transcription of the paper's pseudo-code.  ``TierAlloc`` takes a
workflow id, a requested size and an optional flag list, and produces a
per-tier allocation plan:

* missing flags are predicted from execution logs
  (:class:`~repro.core.predictor.FlagPredictor`);
* composite flags are recursively decomposed into atoms with predicted
  per-flag sizes (Alg. 1 lines 4–8);
* **LAT/SHL** cascades greedily from the fastest tier down
  (local → pmem → cxl, lines 15–21), with CXL treated as unlimited;
* **BW** splits across all tiers proportionally to their attainable
  throughput, spilling each tier's unsatisfied remainder to the next
  (lines 22–29, the "multi-path memory access" approach);
* **CAP** goes straight to CXL (lines 30–31);
* the global allocation and evictable maps are updated (lines 34–35).

The plan is in bytes per tier; mapping the plan onto concrete chunks
(including the pinned/pageable split of Fig. 4 and pre-faulting for LAT)
is :func:`plan_to_chunks` + the manager's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..memory.tiers import CXL, DRAM, MEMORY_TIERS, NUM_TIERS, PMEM, TierKind, TierSpec
from ..util.validation import check_positive, require
from .flags import MemFlag
from .predictor import FlagPredictor

__all__ = ["AllocationPlan", "EvictableMap", "TierAllocator", "bandwidth_fractions"]


def bandwidth_fractions(specs: Mapping[TierKind, TierSpec]) -> dict[TierKind, float]:
    """BW-split fractions: "directly proportional to the available
    read/write throughput observed from that tier" (§III-C2)."""
    bws = {t: specs[t].bandwidth for t in MEMORY_TIERS if specs[t].capacity > 0}
    total = sum(bws.values())
    require(total > 0, "no byte-addressable tier has capacity")
    return {t: bw / total for t, bw in bws.items()}


@dataclass
class EvictableMap:
    """The global map of allocatable memory per tier (Alg. 1 input ``ev``).

    Holds *free plus cold-evictable* bytes for local tiers; consuming an
    allocation debits it.  CXL follows the paper's unlimited-capacity
    assumption: it never runs dry (debits clamp at zero but allocations
    against CXL always succeed).
    """

    available: dict[TierKind, int] = field(
        default_factory=lambda: {t: 0 for t in MEMORY_TIERS}
    )

    def __getitem__(self, tier: TierKind) -> int:
        return self.available.get(tier, 0)

    def consume(self, tier: TierKind, nbytes: int) -> None:
        self.available[tier] = max(0, self.available.get(tier, 0) - int(nbytes))

    def copy(self) -> "EvictableMap":
        return EvictableMap(dict(self.available))


@dataclass
class AllocationPlan:
    """Result of ``TierAlloc``: bytes per tier, per atomic flag."""

    owner: str
    per_flag: dict[MemFlag, dict[TierKind, int]] = field(default_factory=dict)

    def add(self, flag: MemFlag, tier: TierKind, nbytes: int) -> None:
        if nbytes <= 0:
            return
        tier_map = self.per_flag.setdefault(flag, {})
        tier_map[tier] = tier_map.get(tier, 0) + int(nbytes)

    def totals(self) -> dict[TierKind, int]:
        out: dict[TierKind, int] = {}
        for tier_map in self.per_flag.values():
            for t, n in tier_map.items():
                out[t] = out.get(t, 0) + n
        return out

    @property
    def total_bytes(self) -> int:
        return sum(self.totals().values())

    def bytes_for(self, flag: MemFlag) -> int:
        return sum(self.per_flag.get(flag, {}).values())


class TierAllocator:
    """Algorithm 1 implementation.

    Complexity is linear in the number of tiers — constant for the
    three-tier systems studied (§III-C2's O(1) claim) — which the
    allocation micro-benchmark verifies empirically.
    """

    def __init__(
        self,
        specs: Mapping[TierKind, TierSpec],
        predictor: Optional[FlagPredictor] = None,
    ) -> None:
        self.specs = dict(specs)
        self.predictor = predictor if predictor is not None else FlagPredictor()
        self.bw_fractions = bandwidth_fractions(specs)
        #: Alg. 1's global ``alloc_map``: workflow id → bytes per tier.
        self.alloc_map: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # TierAlloc (Alg. 1)
    # ------------------------------------------------------------------ #
    def tier_alloc(
        self,
        w_id: str,
        nbytes: int,
        flags: MemFlag,
        ev: EvictableMap,
    ) -> AllocationPlan:
        """Produce the allocation plan ``A`` for one request.

        ``ev`` is debited in place; the global ``alloc_map`` entry for
        ``w_id`` is updated (lines 34–35).
        """
        check_positive(nbytes, "nbytes")
        plan = AllocationPlan(owner=w_id)
        # Line 2-3: predict flags when none are given.
        if flags is MemFlag.NONE:
            flags = self.predictor.predict_flags(w_id, nbytes)
        atoms = flags.atoms()
        require(len(atoms) > 0, f"request for {w_id!r} resolved to no flags")
        # Lines 4-8: recursive decomposition of composite flags.
        if len(atoms) > 1:
            sizes = self.predictor.predict_flag_sizes(w_id, nbytes, flags)
            for atom in atoms:
                part = sizes.get(atom, 0)
                if part > 0:
                    self._alloc_atomic(plan, w_id, part, atom, ev)
        else:
            self._alloc_atomic(plan, w_id, nbytes, atoms[0], ev)
        # Lines 34-35: update global maps.
        entry = self.alloc_map.setdefault(w_id, np.zeros(NUM_TIERS, dtype=np.int64))
        for tier, n in plan.totals().items():
            entry[int(tier)] += n
        return plan

    def _alloc_atomic(
        self, plan: AllocationPlan, w_id: str, nbytes: int, flag: MemFlag, ev: EvictableMap
    ) -> None:
        if flag in (MemFlag.LAT, MemFlag.SHL):
            self._alloc_cascading(plan, nbytes, flag, ev)
        elif flag is MemFlag.BW:
            self._alloc_bandwidth(plan, nbytes, ev)
        elif flag is MemFlag.CAP:
            # Lines 30-31: additional capacity straight from CXL.
            plan.add(MemFlag.CAP, CXL, nbytes)
            ev.consume(CXL, nbytes)
        else:  # pragma: no cover - atoms() never yields NONE
            raise AssertionError(f"unexpected atomic flag {flag!r}")

    def _alloc_cascading(
        self, plan: AllocationPlan, nbytes: int, flag: MemFlag, ev: EvictableMap
    ) -> None:
        """Lines 15-21: greedy fastest-first for LAT/SHL, CXL unlimited."""
        remaining = nbytes
        for tier in (DRAM, PMEM):
            if remaining <= 0:
                return
            take = min(remaining, ev[tier])
            if take > 0:
                plan.add(flag, tier, take)
                ev.consume(tier, take)
                remaining -= take
        if remaining > 0:
            plan.add(flag, CXL, remaining)  # "Unlimited CXL mem"
            ev.consume(CXL, remaining)

    def _alloc_bandwidth(self, plan: AllocationPlan, nbytes: int, ev: EvictableMap) -> None:
        """Lines 22-29: throughput-proportional multi-path split.

        Each tier is offered its bandwidth share; whatever it cannot hold
        (contention / exhausted evictable space) rolls to the next tier,
        with CXL absorbing the final remainder.
        """
        remaining = nbytes
        carry = 0
        tiers = [t for t in MEMORY_TIERS if t in self.bw_fractions]
        for tier in tiers:
            if remaining <= 0:
                break
            want = int(round(nbytes * self.bw_fractions[tier])) + carry
            want = min(want, remaining)
            take = want if tier == CXL else min(want, ev[tier])
            if take > 0:
                plan.add(MemFlag.BW, tier, take)
                ev.consume(tier, take)
                remaining -= take
            carry = want - take
        if remaining > 0:
            plan.add(MemFlag.BW, CXL, remaining)
            ev.consume(CXL, remaining)

    # ------------------------------------------------------------------ #
    def allocated_to(self, w_id: str) -> np.ndarray:
        """Bytes per tier currently planned for ``w_id`` (``int64[NUM_TIERS]``)."""
        return self.alloc_map.get(w_id, np.zeros(NUM_TIERS, dtype=np.int64)).copy()

    def forget(self, w_id: str) -> None:
        self.alloc_map.pop(w_id, None)
