"""Algorithm 2 — page replacement policy (§III-C3).

When DRAM must shed pages (page faults need space, or the allocator's
evictable budget is consumed), the kernel's victim list is *filtered*:
pages belonging to latency-sensitive or short-lived workflows are "tracked
and moved to the lower memory tier rather than swapped out to the
underlying disk-based swap space", while unprotected victims take the
kernel path to swap.  Pinned chunks (the guaranteed slice of LAT/SHL
allocations, Fig. 4) are never candidates at all.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..memory.pageset import PageSet
from ..memory.tiers import CXL, DRAM, PMEM, SWAP, TierKind
from ..obs import insight as _insight
from ..policies.base import PolicyContext
from ..util.validation import require
from .flags import MemFlag

__all__ = ["PageReplacementPolicy", "is_protected"]


def is_protected(flags: MemFlag) -> bool:
    """LAT/SHL workflows get replacement protection (§III-C3)."""
    return bool(flags & (MemFlag.LAT | MemFlag.SHL))


class PageReplacementPolicy:
    """Workflow-aware victim filtering and demotion.

    Parameters
    ----------
    owner_flags:
        Callable resolving a pageset owner to its effective flags — the
        manager's registry.
    demote_order:
        Where protected victims go instead of swap (lower tiers, fastest
        first; CXL precedes PMem because the testbed's CXL latency is the
        lower of the two).
    """

    def __init__(
        self,
        owner_flags: Callable[[str], MemFlag],
        demote_order: tuple[TierKind, ...] = (CXL, PMEM),
    ) -> None:
        require(DRAM not in demote_order, "cannot demote into DRAM")
        self.owner_flags = owner_flags
        self.demote_order = tuple(demote_order)

    # ------------------------------------------------------------------ #
    def select_victims(
        self,
        ctx: PolicyContext,
        need_chunks: int,
        *,
        protect_owner: Optional[str] = None,
    ) -> list[tuple[PageSet, np.ndarray]]:
        """Globally-coldest DRAM victims, with workflow-aware priority.

        Unprotected workflows' chunks are considered first (coldest-first
        within the class); protected workflows contribute only their
        pageable (unpinned) chunks, and only when the unprotected pool
        falls short — the paper's two-level prioritisation (§III-C4).
        """
        if need_chunks <= 0:
            return []
        arena = ctx.memory.arena
        if arena is not None:
            # one masked argpartition over the whole arena; identical
            # two-level (protected, temperature, registration, index) order
            def classify(owner: str) -> bool:
                return is_protected(self.owner_flags(owner))

            return arena.select_victims(
                DRAM, need_chunks, classify, protect_owner=protect_owner
            )
        ordered: list[tuple[int, float, int, PageSet, int]] = []
        for order_key, ps in enumerate(ctx.memory.pagesets()):
            if ps.owner == protect_owner:
                continue
            protected = 1 if is_protected(self.owner_flags(ps.owner)) else 0
            cand = ps.coldest_in(DRAM, need_chunks)
            for i in cand:
                ordered.append((protected, float(ps.temperature[i]), order_key, ps, int(i)))
        ordered.sort(key=lambda e: (e[0], e[1], e[2], e[4]))
        chosen = ordered[:need_chunks]
        grouped: dict[str, tuple[PageSet, list[int]]] = {}
        for _, _, _, ps, i in chosen:
            grouped.setdefault(ps.owner, (ps, []))[1].append(i)
        return [(ps, np.asarray(idx, dtype=np.int64)) for ps, idx in grouped.values()]

    def replace(
        self,
        ctx: PolicyContext,
        nbytes: int,
        *,
        protect_owner: Optional[str] = None,
        shadow_demotions: bool = False,
    ) -> int:
        """Free ``nbytes`` of DRAM via filtered replacement.

        All victims demote through the lower byte-addressable tiers first
        — the §III-C4 rule that pages move to CXL "instead of swapping
        pages to the swap space" — and hit disk only when those tiers are
        full.  Protection manifests in *selection*: unprotected workflows'
        pages are victimised first, and protected workflows contribute
        only their pageable region.  Returns bytes actually freed.  With
        ``shadow_demotions`` the demoted pages keep page-cache copies when
        room remains (the proactive path's minor-fault optimisation).
        """
        if nbytes <= 0:
            return 0
        mem = ctx.memory
        if mem.arena is not None and getattr(mem, "fast_core", False):
            return self._replace_fast(
                ctx, nbytes, protect_owner=protect_owner, shadow_demotions=shadow_demotions
            )
        any_ps = next(iter(ctx.memory.pagesets()), None)
        if any_ps is None:
            return 0
        need_chunks = -(-nbytes // any_ps.chunk_size)
        freed = 0
        # label direct invocations in the migration ledger without
        # overriding a more specific caller scope (reactive / ensure-room)
        with _insight.fallback_cause("replace"):
            for ps, idx in self.select_victims(ctx, need_chunks, protect_owner=protect_owner):
                remaining = idx
                for tier in self.demote_order:
                    if remaining.size == 0:
                        break
                    room = max(0, mem.free(tier)) // ps.chunk_size
                    take = remaining[: int(room)]
                    if take.size:
                        freed += mem.migrate(ps, take, tier)
                        if shadow_demotions:
                            mem.add_page_cache_shadow(ps, take)
                        remaining = remaining[take.size:]
                if remaining.size:
                    # every lower tier full: pages must swap after all
                    freed += mem.swap_out(ps, remaining)
        return freed

    def _replace_fast(
        self,
        ctx: PolicyContext,
        nbytes: int,
        *,
        protect_owner: Optional[str] = None,
        shadow_demotions: bool = False,
    ) -> int:
        """:meth:`replace` as batched arena kernels (``arena-fast``):
        victims for all tasks come from one selection pass, and each
        demotion tier takes one byte-room prefix of the cross-task victim
        order instead of a per-pageset migrate loop.  Statistically
        equivalent to the exact path, not byte-identical."""
        mem = ctx.memory
        arena = mem.arena
        min_cs = arena.min_chunk_size()
        if min_cs <= 0:
            return 0

        def classify(owner: str) -> bool:
            return is_protected(self.owner_flags(owner))

        victims = arena.select_victim_positions(
            DRAM, -(-nbytes // min_cs), classify, protect_owner=protect_owner
        )
        if victims.size == 0:
            return 0
        cum = np.cumsum(arena.chunk_cost(victims))
        # the shortest victim prefix covering nbytes (selection order)
        k = min(int(np.searchsorted(cum, nbytes, side="left")) + 1, victims.size)
        victims = victims[:k]
        cum = cum[:k]
        freed = 0
        start = 0
        with _insight.fallback_cause("replace"):
            for tier in self.demote_order:
                if start >= victims.size:
                    break
                room = max(0, mem.free(tier))
                base = int(cum[start - 1]) if start else 0
                end = int(np.searchsorted(cum, base + room, side="right"))
                take = victims[start:end]
                if take.size:
                    freed += mem.migrate_positions(take, tier)
                    if shadow_demotions:
                        mem.add_page_cache_shadows_batch(take)
                    start = end
            if start < victims.size:
                # every lower tier full: pages must swap after all
                freed += mem.migrate_positions(victims[start:], SWAP)
        return freed
