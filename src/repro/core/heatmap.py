"""Page-temperature tracking (§III-C1: "track the hotness/coldness of
workflow pages ... heatmaps are used to identify frequently accessed pages
and least frequently accessed pages for efficient page movement").

Temperatures follow an exponentially-decayed access-rate estimate,
vectorised over each pageset's chunk arrays:

``T ← T·exp(-dt/τ) + access_weight · access_rate · dt``

so a chunk's temperature approximates its recent accesses-per-τ.  The same
machinery answers the §II-C cold-page question ("~55–80 % of the allocated
memory remains idle" early in BERT training) via :func:`idle_fraction`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..memory.pageset import PageSet
from ..memory.system import NodeMemorySystem
from ..util.validation import check_fraction, check_positive

__all__ = ["HeatmapConfig", "PageHeatmap", "idle_fraction", "hot_mask"]


@dataclass(frozen=True)
class HeatmapConfig:
    """Tuning for temperature tracking.

    ``tau`` is the decay time-constant: pages untouched for a few τ read
    as cold.  ``hot_quantile_share`` is the heat share used to delimit the
    "hot set" (the paper's 80 %-of-accesses heuristic).
    """

    tau: float = 30.0
    hot_quantile_share: float = 0.80

    def __post_init__(self) -> None:
        check_positive(self.tau, "tau")
        check_fraction(self.hot_quantile_share, "hot_quantile_share")


class PageHeatmap:
    """Maintains temperatures for every pageset on one node."""

    def __init__(self, config: HeatmapConfig | None = None) -> None:
        self.config = config if config is not None else HeatmapConfig()

    def advance(self, ps: PageSet, dt: float, access_rate: float = 1.0) -> None:
        """Decay and accumulate one pageset's temperatures over ``dt``
        seconds of the current phase's access distribution.

        Pagesets that are stone cold (all-zero temperatures) with no
        incoming accesses are skipped outright — idle tasks dominate large
        colocations and decaying zeros is pure waste.
        """
        if dt <= 0:
            return
        gains = access_rate > 0 and bool(ps.access_weight.any())
        if not gains and not ps.temperature.any():
            return
        decay = math.exp(-dt / self.config.tau)
        ps.temperature *= np.float32(decay)
        if gains:
            ps.temperature += ps.access_weight * np.float32(access_rate * dt)

    def advance_node(
        self, memory: NodeMemorySystem, dt: float, rates: dict[str, float] | None = None
    ) -> None:
        """Advance every registered pageset; ``rates`` optionally maps
        owner → relative access rate (idle tasks decay only).

        The zero-work skip is hoisted here: an idle owner (rate 0) whose
        pageset is stone cold gets no :meth:`advance` call at all, so the
        idle majority of a large colocation costs one ``any()`` per tick
        instead of a call plus decay arithmetic.

        Under the arena backend the whole node advances in one fused
        kernel call (:meth:`~repro.core.arena.NodeArena.advance`) —
        identical float32 arithmetic, no per-pageset dispatch.
        """
        if dt <= 0:
            return
        if memory.arena is not None:
            memory.arena.advance(dt, math.exp(-dt / self.config.tau), rates)
            return
        for ps in memory.pagesets():
            rate = 1.0 if rates is None else rates.get(ps.owner, 0.0)
            if rate <= 0.0 and not ps.temperature.any():
                continue
            self.advance(ps, dt, rate)

    # ------------------------------------------------------------------ #
    # analyses used by the allocation/movement policies
    # ------------------------------------------------------------------ #
    def hot_set_bytes(self, ps: PageSet) -> int:
        """Bytes in the minimal chunk set absorbing ``hot_quantile_share``
        of current heat — the LAT-size heuristic of §III-C2."""
        mask = hot_mask(ps, self.config.hot_quantile_share)
        return int(np.count_nonzero(mask)) * ps.chunk_size

    def cold_chunks(self, ps: PageSet, threshold: float = 0.0) -> np.ndarray:
        """Chunks whose temperature is at or below ``threshold``."""
        return np.flatnonzero(ps.temperature <= threshold)


def hot_mask(ps: PageSet, heat_share: float) -> np.ndarray:
    """Boolean mask of the smallest chunk set holding ``heat_share`` of the
    total temperature (ties broken toward fewer chunks)."""
    check_fraction(heat_share, "heat_share")
    temps = ps.temperature.astype(np.float64)
    total = temps.sum()
    mask = np.zeros(ps.n_chunks, dtype=bool)
    if total <= 0 or heat_share == 0:
        return mask
    order = np.argsort(-temps, kind="stable")
    csum = np.cumsum(temps[order])
    # tiny relative tolerance so float32 rounding cannot inflate the set
    target = heat_share * total * (1.0 - 1e-6)
    k = int(np.searchsorted(csum, target, side="left")) + 1
    mask[order[: min(k, ps.n_chunks)]] = True
    return mask


def idle_fraction(ps: PageSet, threshold: float = 0.0) -> float:
    """Fraction of *mapped* chunks never (or barely) touched — the §II-C
    cold-memory measurement."""
    mapped = ps.mapped_mask
    n = int(np.count_nonzero(mapped))
    if n == 0:
        return 0.0
    idle = int(np.count_nonzero(mapped & (ps.temperature <= threshold)))
    return idle / n
