"""Flag and flag-size prediction from execution history (§III-C1/C2).

When a workflow arrives without Table-I flags, the Tiered Memory Manager
"assigns either single or multiple flags to each workflow based on the
previous execution logs, heuristics, and predictor".  Two pieces model
that:

* :class:`ExecutionLogStore` — per-workflow-key records of observed flag
  sizes ("if a job allocates 40 GB ... and only 512 MB of pages are
  accessed 80 % of the time ... 512 MB is determined to be
  latency-sensitive (LAT) while the remaining memory is classified as
  capacity-sensitive (CAP)").
* :class:`FlagPredictor` — exact-key lookup, nearest-match fallback
  ("for cases where logs are not available or the exact match is not
  found, we utilize the nearest match as hints"), and a conservative
  default heuristic when the store is empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..memory.pageset import PageSet
from ..util.validation import check_fraction, check_positive, require
from .flags import MemFlag
from .heatmap import hot_mask

__all__ = ["ExecutionRecord", "ExecutionLogStore", "FlagPredictor", "flag_sizes_from_heatmap"]


@dataclass(frozen=True)
class ExecutionRecord:
    """One completed execution's observed memory behaviour."""

    key: str
    footprint: int
    flag_sizes: dict[MemFlag, int]
    duration: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.footprint, "footprint")
        for f, s in self.flag_sizes.items():
            require(isinstance(f, MemFlag), "flag_sizes keys must be MemFlag atoms")
            require(s >= 0, f"flag size for {f} must be >= 0")


class ExecutionLogStore:
    """Keeps the most recent record per workflow key.

    Keys are the workflow configuration identity the paper looks up with
    ("workflow configuration information, parameters, flags, etc.") —
    in this library, the task spec name or any caller-chosen string.
    """

    def __init__(self) -> None:
        self._records: dict[str, ExecutionRecord] = {}

    def record(self, rec: ExecutionRecord) -> None:
        self._records[rec.key] = rec

    def get(self, key: str) -> Optional[ExecutionRecord]:
        return self._records.get(key)

    def nearest(self, key: str, footprint: int) -> Optional[ExecutionRecord]:
        """Nearest match: prefer a shared name prefix (same application,
        different parameters), then closest footprint."""
        if not self._records:
            return None
        stem = key.split("-")[0]
        same_family = [r for k, r in self._records.items() if k.split("-")[0] == stem]
        pool = same_family if same_family else list(self._records.values())
        return min(pool, key=lambda r: abs(r.footprint - footprint))

    def __len__(self) -> int:
        return len(self._records)


def flag_sizes_from_heatmap(
    ps: PageSet, hot_share: float = 0.80, bw_weight: float = 0.0
) -> dict[MemFlag, int]:
    """Derive per-flag sizes from observed page temperatures.

    The hot set (smallest chunk set with ``hot_share`` of the heat)
    is latency-sensitive; the remainder is capacity.  A ``bw_weight``
    fraction of the hot set may be tagged BW instead when the workload's
    throughput demand dominates (callers pass their own judgement).
    """
    check_fraction(hot_share, "hot_share")
    check_fraction(bw_weight, "bw_weight")
    hot = hot_mask(ps, hot_share)
    hot_bytes = int(np.count_nonzero(hot)) * ps.chunk_size
    total = int(np.count_nonzero(ps.mapped_mask)) * ps.chunk_size
    bw_bytes = int(hot_bytes * bw_weight)
    lat_bytes = hot_bytes - bw_bytes
    out: dict[MemFlag, int] = {}
    if lat_bytes:
        out[MemFlag.LAT] = lat_bytes
    if bw_bytes:
        out[MemFlag.BW] = bw_bytes
    cap = max(0, total - hot_bytes)
    if cap or not out:
        out[MemFlag.CAP] = cap
    return out


@dataclass
class FlagPredictor:
    """Predicts flags / per-flag sizes for incoming allocations.

    ``default_lat_fraction`` drives the cold-start heuristic: with no
    history at all, a ``default_lat_fraction`` slice of the request is
    assumed latency-sensitive and the rest capacity — a conservative split
    that keeps unknown workloads partly in fast memory.
    """

    store: ExecutionLogStore = field(default_factory=ExecutionLogStore)
    default_lat_fraction: float = 0.10

    def __post_init__(self) -> None:
        check_fraction(self.default_lat_fraction, "default_lat_fraction")

    # ------------------------------------------------------------------ #
    def predict_flags(self, key: str, nbytes: int) -> MemFlag:
        """Algorithm 1's ``predict_flags``: which flags apply at all."""
        check_positive(nbytes, "nbytes")
        rec = self.store.get(key) or self.store.nearest(key, nbytes)
        if rec is not None:
            flags = MemFlag.NONE
            for f, s in rec.flag_sizes.items():
                if s > 0:
                    flags |= f
            if flags is not MemFlag.NONE:
                return flags
        return MemFlag.LAT | MemFlag.CAP

    def predict_flag_sizes(self, key: str, nbytes: int, flags: MemFlag) -> dict[MemFlag, int]:
        """Algorithm 1's ``predict_flag_mem_size``: bytes per atomic flag,
        scaled to the current request and guaranteed to sum to ``nbytes``."""
        check_positive(nbytes, "nbytes")
        atoms = flags.atoms()
        require(len(atoms) > 0, "flags must contain at least one atom")
        rec = self.store.get(key) or self.store.nearest(key, nbytes)
        if rec is not None:
            known = {f: rec.flag_sizes.get(f, 0) for f in atoms}
            total_known = sum(known.values())
            if total_known > 0:
                sizes = {f: int(nbytes * s / total_known) for f, s in known.items()}
            else:
                sizes = {f: nbytes // len(atoms) for f in atoms}
        elif MemFlag.LAT in flags and MemFlag.CAP in flags and len(atoms) == 2:
            lat = int(nbytes * self.default_lat_fraction)
            sizes = {MemFlag.LAT: lat, MemFlag.CAP: nbytes - lat}
        else:
            sizes = {f: nbytes // len(atoms) for f in atoms}
        # fix rounding so sizes sum exactly to the request
        drift = nbytes - sum(sizes.values())
        last = atoms[-1]
        sizes[last] = sizes.get(last, 0) + drift
        return {f: s for f, s in sizes.items() if s > 0}

    # ------------------------------------------------------------------ #
    def learn(self, key: str, ps: PageSet, duration: float, bw_weight: float = 0.0) -> None:
        """Record a finished execution's heat profile for future predictions."""
        sizes = flag_sizes_from_heatmap(ps, bw_weight=bw_weight)
        footprint = max(ps.mapped_bytes, ps.chunk_size)
        self.store.record(ExecutionRecord(key, footprint, sizes, duration))
