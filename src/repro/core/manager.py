"""The Tiered Memory Manager (§III-C1) — the paper's runtime, as a policy.

One manager instance runs per node (the paper deploys "a manager and a
client ... on the cluster nodes").  Its responsibilities map one-to-one to
the paper's list:

1. *identify memory types* / 2. *categorize into tiers* —
   :meth:`classify_tiers` orders discovered :class:`TierSpec` objects by
   access latency;
3. *create staging buffers on each tier* — fair-share slices reserved for
   transparent data movement, sized by :attr:`staging_fraction`;
4. *dynamically adjust buffers* — each tick the buffers shrink under tier
   pressure and regrow when utilisation falls (§III-C1), throttling how
   much the movement daemon may migrate per tick;
5. *track page hotness* — a :class:`~repro.core.heatmap.PageHeatmap`
   drives every promotion/demotion decision.

Placement requests flow through Algorithm 1
(:class:`~repro.core.allocation.TierAllocator`), evictions through
Algorithm 2 (:class:`~repro.core.replacement.PageReplacementPolicy`), and
tick-time movement through
:class:`~repro.core.movement.IntelligentPageMovement`.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

import numpy as np

from ..memory.pageset import UNMAPPED, PageSet
from ..memory.tiers import CXL, DRAM, MEMORY_TIERS, PMEM, TierKind, TierSpec
from ..obs import insight as _insight
from ..policies.base import (
    AllocationRequest,
    MemoryPolicy,
    PolicyContext,
    stripe_assignment,
)
from ..util.errors import OutOfMemoryError
from ..util.validation import check_fraction, require
from .allocation import AllocationPlan, EvictableMap, TierAllocator
from .flags import MemFlag
from .heatmap import HeatmapConfig, PageHeatmap
from .movement import IntelligentPageMovement, MovementConfig
from .predictor import FlagPredictor
from .replacement import PageReplacementPolicy

__all__ = ["TieredMemoryManager", "classify_tiers"]


def classify_tiers(specs: Mapping[TierKind, TierSpec]) -> tuple[TierKind, ...]:
    """Order byte-addressable tiers by access latency, fastest first —
    the manager's tier classification step.  DRAM is asserted primary."""
    tiers = sorted(
        (t for t in MEMORY_TIERS if specs[t].capacity > 0),
        key=lambda t: specs[t].latency,
    )
    require(len(tiers) > 0, "no byte-addressable tier has capacity")
    require(tiers[0] == DRAM, "DRAM must be the primary (fastest) tier")
    return tuple(tiers)


class TieredMemoryManager(MemoryPolicy):
    """Application-attuned memory policy (the IMME environment's brain)."""

    name = "tiered-memory-manager"

    def __init__(
        self,
        specs: Mapping[TierKind, TierSpec],
        *,
        predictor: Optional[FlagPredictor] = None,
        movement_config: Optional[MovementConfig] = None,
        heatmap_config: Optional[HeatmapConfig] = None,
        pin_fraction: float = 0.60,
        staging_fraction: float = 0.02,
        prefault_heat: float = 0.10,
        cold_threshold: float = 0.01,
    ) -> None:
        check_fraction(pin_fraction, "pin_fraction")
        check_fraction(staging_fraction, "staging_fraction")
        self.specs = dict(specs)
        self.tier_order = classify_tiers(specs)
        self.predictor = predictor if predictor is not None else FlagPredictor()
        self.allocator = TierAllocator(specs, self.predictor)
        self.heatmap = PageHeatmap(heatmap_config)
        self.replacement = PageReplacementPolicy(self.flags_of)
        self.movement = IntelligentPageMovement(
            self.flags_of, self.replacement, movement_config
        )
        self.pin_fraction = pin_fraction
        self.staging_fraction = staging_fraction
        self.prefault_heat = prefault_heat
        self.cold_threshold = cold_threshold
        self._owner_flags: dict[str, MemFlag] = {}
        #: staging-buffer bytes per tier (responsibility 3), tick-adjusted.
        self.staging_buffers: dict[TierKind, int] = {
            t: int(self.specs[t].capacity * staging_fraction) for t in MEMORY_TIERS
        }

    # ------------------------------------------------------------------ #
    # flag registry
    # ------------------------------------------------------------------ #
    def flags_of(self, owner: str) -> MemFlag:
        return self._owner_flags.get(owner, MemFlag.NONE)

    def register_workflow(self, owner: str, flags: MemFlag) -> None:
        self._owner_flags[owner] = flags

    def finish_workflow(self, owner: str, ps: PageSet, duration: float) -> None:
        """Task teardown: learn the heat profile for future predictions and
        drop registry state."""
        flags = self.flags_of(owner)
        bw_weight = 0.5 if MemFlag.BW in flags else 0.0
        key = owner.rsplit("#", 1)[0]  # strip instance suffix → spec identity
        self.predictor.learn(key, ps, duration, bw_weight=bw_weight)
        self._owner_flags.pop(owner, None)
        self.allocator.forget(owner)

    # ------------------------------------------------------------------ #
    # MemoryPolicy: placement (Algorithm 1 realized onto chunks)
    # ------------------------------------------------------------------ #
    def place(self, ctx: PolicyContext, ps: PageSet, request: AllocationRequest) -> None:
        owner = request.owner
        if owner not in self._owner_flags or request.region == 0:
            self.register_workflow(owner, request.flags)
        idx = ctx.region_chunks(ps, request.region)
        unmapped = idx[ps.tier[idx] == UNMAPPED]
        if unmapped.size == 0:
            return
        nbytes = int(unmapped.size) * ps.chunk_size
        ev = self._evictable_map(ctx, protect_owner=owner)
        plan = self.allocator.tier_alloc(owner, nbytes, request.flags, ev)
        self._realize(ctx, ps, unmapped, plan)

    def _evictable_map(self, ctx: PolicyContext, protect_owner: str) -> EvictableMap:
        """Free + cold-evictable bytes per tier, minus the staging reserve.

        Arena backend: one composite bincount over the node arena replaces
        the per-tier x per-task scan (the sums are order-free integers, so
        the result is identical).
        """
        mem = ctx.memory
        ev = EvictableMap()
        if mem.arena is not None:
            cold_bytes = mem.arena.evictable_bytes(
                MEMORY_TIERS, self.cold_threshold, protect_owner=protect_owner
            )
            for tier in MEMORY_TIERS:
                free = max(0, mem.free(tier) - self.staging_buffers.get(tier, 0))
                ev.available[tier] = free + cold_bytes[tier]
            return ev
        for tier in MEMORY_TIERS:
            avail = max(0, mem.free(tier) - self.staging_buffers.get(tier, 0))
            for other in mem.pagesets():
                if other.owner == protect_owner:
                    continue
                in_tier = other.chunks_in(tier)
                if in_tier.size == 0:
                    continue
                cold = in_tier[
                    (~other.pinned[in_tier])
                    & (other.temperature[in_tier] <= self.cold_threshold)
                ]
                avail += int(cold.size) * other.chunk_size
            ev.available[tier] = avail
        return ev

    def _realize(
        self, ctx: PolicyContext, ps: PageSet, unmapped: np.ndarray, plan: AllocationPlan
    ) -> None:
        """Map the byte plan onto concrete chunks.

        Chunk order within an allocation is hot-first by the pattern
        convention, so flags are consumed in priority order: LAT/SHL get
        the leading (hottest-expected) chunks, BW the middle, CAP the
        tail.  LAT/SHL chunks cascade fastest-tier-first with a pinned
        head (Fig. 4); BW chunks stripe round-robin across their tiers.
        """
        cursor = 0
        order = (MemFlag.LAT, MemFlag.SHL, MemFlag.BW, MemFlag.CAP)
        present = [f for f in order if f in plan.per_flag]
        for pos, flag in enumerate(present):
            if pos == len(present) - 1:
                chunks = unmapped[cursor:]
            else:
                n = int(round(plan.bytes_for(flag) / ps.chunk_size))
                n = min(n, unmapped.size - cursor)
                chunks = unmapped[cursor : cursor + n]
            cursor += chunks.size
            if chunks.size == 0:
                continue
            counts = self._chunk_counts(plan.per_flag[flag], chunks.size)
            if flag in (MemFlag.LAT, MemFlag.SHL):
                self._place_cascading(ctx, ps, chunks, counts, pin=True)
            elif flag is MemFlag.BW:
                self._place_striped(ctx, ps, chunks, counts)
            else:
                self._place_cascading(ctx, ps, chunks, counts, pin=False)

    @staticmethod
    def _chunk_counts(tier_bytes: Mapping[TierKind, int], n_chunks: int) -> dict[TierKind, int]:
        """Largest-remainder conversion of a byte map into exact chunk counts."""
        total = sum(tier_bytes.values())
        if total <= 0:
            return {DRAM: n_chunks}
        raw = {t: n_chunks * b / total for t, b in tier_bytes.items()}
        counts = {t: int(math.floor(v)) for t, v in raw.items()}
        short = n_chunks - sum(counts.values())
        for t in sorted(raw, key=lambda t: raw[t] - counts[t], reverse=True)[:short]:
            counts[t] += 1
        return {t: c for t, c in counts.items() if c > 0}

    def _place_cascading(
        self,
        ctx: PolicyContext,
        ps: PageSet,
        chunks: np.ndarray,
        counts: Mapping[TierKind, int],
        *,
        pin: bool,
    ) -> None:
        mem = ctx.memory
        remaining = chunks
        carry = 0
        for tier in self.tier_order:
            want = counts.get(tier, 0) + carry
            carry = 0
            if want <= 0 or remaining.size == 0:
                continue
            take = remaining[: min(want, remaining.size)]
            self._ensure_room(ctx, tier, int(take.size) * ps.chunk_size, ps.owner)
            placed = int(min(max(0, mem.free(tier)) // ps.chunk_size, take.size))
            head = take[:placed]
            if head.size:
                mem.place(ps, head, tier)
                if pin:
                    n_pin = int(round(head.size * self.pin_fraction))
                    ps.pinned[head[:n_pin]] = True
                # pre-faulting (§III-C2): warm the pages so the movement
                # daemon treats them as recently touched
                ps.temperature[head] += np.float32(self.prefault_heat)
            carry = take.size - placed  # overflow cascades to the next tier
            remaining = remaining[placed:]
        if remaining.size:
            self._ensure_room(ctx, CXL, int(remaining.size) * ps.chunk_size, ps.owner)
            if max(0, mem.free(CXL)) // ps.chunk_size < remaining.size:
                raise OutOfMemoryError(
                    f"node {mem.node_id}: cannot back {remaining.size} chunks for {ps.owner!r}"
                )
            mem.place(ps, remaining, CXL)
            if pin:
                ps.temperature[remaining] += np.float32(self.prefault_heat)

    def _place_striped(
        self,
        ctx: PolicyContext,
        ps: PageSet,
        chunks: np.ndarray,
        counts: Mapping[TierKind, int],
    ) -> None:
        """Round-robin proportional striping so a BW allocation's hot set
        spans every planned tier (the multi-path bandwidth aggregation)."""
        mem = ctx.memory
        tiers = [t for t in self.tier_order if counts.get(t, 0) > 0]
        if CXL not in tiers and counts.get(CXL, 0) > 0:
            tiers.append(CXL)
        assignment = stripe_assignment([counts.get(t, 0) for t in tiers])
        pad = chunks.size - assignment.size
        if pad > 0:
            assignment = np.concatenate([assignment, np.full(pad, len(tiers) - 1)])
        for k, tier in enumerate(tiers):
            mine = chunks[assignment[: chunks.size] == k]
            if mine.size == 0:
                continue
            self._ensure_room(ctx, tier, int(mine.size) * ps.chunk_size, ps.owner)
            room = max(0, mem.free(tier)) // ps.chunk_size
            head, spill = mine[: int(room)], mine[int(room):]
            if head.size:
                mem.place(ps, head, tier)
            if spill.size:
                self._ensure_room(ctx, CXL, int(spill.size) * ps.chunk_size, ps.owner)
                mem.place(ps, spill, CXL)

    def _ensure_room(self, ctx: PolicyContext, tier: TierKind, nbytes: int, owner: str) -> None:
        """Evict/demote cold pages so ``tier`` can take ``nbytes`` (the
        allocator may have counted other workflows' cold pages as
        evictable)."""
        mem = ctx.memory
        deficit = nbytes - mem.free(tier)
        if deficit <= 0:
            return
        # allocation-pressure movements are ledgered apart from daemon ones
        with _insight.cause("ensure-room"):
            if tier == DRAM:
                self.replacement.replace(ctx, deficit, protect_owner=owner)
            elif tier == PMEM:
                self._demote_tier(ctx, PMEM, CXL, deficit, owner)
            # CXL: unlimited by assumption; nothing to do

    def _demote_tier(
        self, ctx: PolicyContext, src: TierKind, dst: TierKind, nbytes: int, protect: str
    ) -> int:
        mem = ctx.memory
        arena = mem.arena
        if arena is not None and getattr(mem, "fast_core", False):
            # arena-fast: one cross-task cold scan + one batched commit
            # (globally coldest order, vs the exact path's
            # registration-then-coldest; statistically equivalent)
            min_cs = arena.min_chunk_size()
            if min_cs <= 0:
                return 0
            cold = arena.cold_by_tier(src, -(-nbytes // min_cs), protect_owner=protect)
            if cold.size == 0:
                return 0
            cum = np.cumsum(arena.chunk_cost(cold))
            k = min(int(np.searchsorted(cum, nbytes, side="left")) + 1, cold.size)
            return mem.migrate_positions(cold[:k], dst)
        freed = 0
        for other in list(mem.pagesets()):
            if freed >= nbytes or other.owner == protect:
                continue
            need = -(-(nbytes - freed) // other.chunk_size)
            cold = other.coldest_in(src, need)
            if cold.size:
                freed += mem.migrate(other, cold, dst)
        return freed

    # ------------------------------------------------------------------ #
    # MemoryPolicy: daemon tick
    # ------------------------------------------------------------------ #
    def tick(self, ctx: PolicyContext) -> None:
        self._adjust_staging_buffers(ctx)
        self.movement.tick(ctx, promote_budget_bytes=self.staging_buffers[DRAM])

    def _adjust_staging_buffers(self, ctx: PolicyContext) -> None:
        """Responsibility 4: shrink buffers on pressured tiers, regrow idle
        ones (bounded by 0.25x–2x of the configured fair share)."""
        mem = ctx.memory
        for tier in MEMORY_TIERS:
            cap = mem.capacity(tier)
            if cap <= 0:
                continue
            base = int(cap * self.staging_fraction)
            util = mem.used(tier) / cap
            if util > 0.90:
                target = base // 4
            elif util < 0.50:
                target = base * 2
            else:
                target = base
            self.staging_buffers[tier] = target

    # ------------------------------------------------------------------ #
    # MemoryPolicy: faults & pressure
    # ------------------------------------------------------------------ #
    def make_room(self, ctx: PolicyContext, nbytes: int, protect: Optional[str] = None) -> int:
        return self.replacement.replace(ctx, nbytes, protect_owner=protect)

    def fault_in_order(self, ctx: PolicyContext) -> tuple[TierKind, ...]:
        return self.tier_order
