"""Intelligent page movement and proactive swapping (§III-C4).

The movement daemon does four things each tick, in order:

1. **Promotion** — pages "previously identified as cold but later
   categorized as hot" move up: swap→DRAM (as minor faults when shadowed,
   background-major otherwise), PMem→CXL/DRAM, CXL→DRAM, budget-limited
   by the staging buffers.
2. **Proactive swap** — above a DRAM utilisation threshold, cold pages of
   non-latency-sensitive workflows move to CXL *before* pressure forces
   reactive eviction; DRAM shadow copies are kept in the page cache when
   room remains, so re-touching them costs only a minor fault.
3. **Reactive replacement** — if DRAM is still over its high watermark,
   Algorithm 2 (:class:`~repro.core.replacement.PageReplacementPolicy`)
   runs with its workflow-aware victim filtering.
4. **Compaction** — a compaction pass is recorded when proactive swapping
   freed enough space to matter (§III-C4's fragmentation reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import obs
from ..memory.tiers import CXL, DRAM, PMEM, SWAP
from ..policies.base import PolicyContext
from ..util.validation import check_fraction, check_positive, require
from .flags import MemFlag
from .replacement import PageReplacementPolicy, is_protected

__all__ = ["MovementConfig", "IntelligentPageMovement"]


@dataclass(frozen=True)
class MovementConfig:
    """Thresholds and budgets for the movement daemon."""

    #: DRAM rss fraction above which proactive swapping starts.
    proactive_threshold: float = 0.85
    #: DRAM rss fraction proactive swapping drives down to.
    proactive_target: float = 0.78
    #: DRAM rss fraction that triggers reactive (Alg. 2) replacement.
    high_watermark: float = 0.96
    low_watermark: float = 0.90
    #: minimum temperature for a slow-tier chunk to be promotion-worthy.
    promote_threshold: float = 0.05
    #: temperature bar for *exchange* promotion (evicting resident DRAM
    #: pages to make room); higher than promote_threshold to avoid
    #: ping-ponging lukewarm pages.
    exchange_threshold: float = 0.20
    #: temperature below which a DRAM chunk counts as proactively-swappable.
    cold_threshold: float = 0.01
    #: record a compaction when a tick frees at least this many chunks.
    compaction_min_chunks: int = 16

    def __post_init__(self) -> None:
        check_fraction(self.proactive_threshold, "proactive_threshold")
        check_fraction(self.proactive_target, "proactive_target")
        check_fraction(self.high_watermark, "high_watermark")
        check_fraction(self.low_watermark, "low_watermark")
        require(self.proactive_target <= self.proactive_threshold, "target above threshold")
        require(self.low_watermark <= self.high_watermark, "low watermark above high")
        check_positive(self.compaction_min_chunks, "compaction_min_chunks")


class IntelligentPageMovement:
    """The per-tick movement engine behind the IMME environment."""

    def __init__(
        self,
        owner_flags: Callable[[str], MemFlag],
        replacement: PageReplacementPolicy,
        config: MovementConfig | None = None,
    ) -> None:
        self.owner_flags = owner_flags
        self.replacement = replacement
        self.config = config if config is not None else MovementConfig()

    # ------------------------------------------------------------------ #
    def tick(self, ctx: PolicyContext, promote_budget_bytes: int) -> None:
        """One daemon pass; ``promote_budget_bytes`` is the staging-buffer
        capacity the manager grants this tick."""
        self._promote(ctx, promote_budget_bytes)
        freed = self._proactive_swap(ctx)
        self._reactive(ctx)
        any_ps = next(iter(ctx.memory.pagesets()), None)
        if any_ps is not None and freed >= self.config.compaction_min_chunks * any_ps.chunk_size:
            ctx.memory.compact()

    # ------------------------------------------------------------------ #
    # candidate selection (object backend: top-k then threshold filter;
    # arena backend: the same list filter-first via the arena kernels,
    # which is an exact rewrite — see NodeArena.cold_chunks)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _hot_candidates(ps, tier, max_chunks: int, min_temperature: float) -> np.ndarray:
        if ps.arena is not None:
            return ps.arena.hot_chunks(ps, tier, max_chunks, min_temperature=min_temperature)
        hot = ps.hottest_in(tier, max_chunks)
        return hot[ps.temperature[hot] >= min_temperature]

    @staticmethod
    def _cold_candidates(ps, tier, max_chunks: int, max_temperature: float) -> np.ndarray:
        if ps.arena is not None:
            return ps.arena.cold_chunks(ps, tier, max_chunks, max_temperature=max_temperature)
        cold = ps.coldest_in(tier, max_chunks)
        return cold[ps.temperature[cold] <= max_temperature]

    # ------------------------------------------------------------------ #
    # promotion
    # ------------------------------------------------------------------ #
    def _promote(self, ctx: PolicyContext, budget_bytes: int) -> None:
        mem = ctx.memory
        cfg = self.config
        # Pass 1 — swap-resident hot pages, globally, before anything else:
        # these are the most damaging, and must not be starved by
        # streaming workloads' tier-to-tier churn.
        for ps in list(mem.pagesets()):
            if budget_bytes <= 0:
                return
            # all-cold pagesets can never clear promote_threshold, so skip
            # the candidate scan outright (idle tasks dominate large nodes)
            if cfg.promote_threshold > 0 and not ps.temperature.any():
                continue
            hot_swap = self._hot_candidates(
                ps, SWAP, budget_bytes // ps.chunk_size, cfg.promote_threshold
            )
            if hot_swap.size:
                moved_idx = self._pull_up(ctx, ps, hot_swap)
                if moved_idx.size:
                    obs.counter("imme.promotions", int(moved_idx.size), source="swap")
                    # shadowed swap-ins are free remaps (minor); the rest
                    # were brought in by the background daemon, which the
                    # paper counts as converting major faults into minors.
                    ctx.record_minor(ps.owner, int(moved_idx.size))
                    budget_bytes -= int(moved_idx.size) * ps.chunk_size
        # Pass 2 — PMem/CXL hot pages move toward DRAM.
        for ps in list(mem.pagesets()):
            if budget_bytes <= 0:
                return
            if cfg.promote_threshold > 0 and not ps.temperature.any():
                continue
            for tier in (PMEM, CXL):
                hot = self._hot_candidates(
                    ps, tier, budget_bytes // ps.chunk_size, cfg.promote_threshold
                )
                if hot.size == 0:
                    continue
                room = max(0, mem.free(DRAM)) // ps.chunk_size
                if room < hot.size:
                    # exchange: very hot slow-tier pages displace cold DRAM
                    # pages (demoted via Algorithm 2, never swapped blindly)
                    very_hot = hot[ps.temperature[hot] >= cfg.exchange_threshold]
                    want = int(very_hot.size) - int(room)
                    if want > 0:
                        self.replacement.replace(
                            ctx, want * ps.chunk_size, protect_owner=ps.owner
                        )
                        room = max(0, mem.free(DRAM)) // ps.chunk_size
                take = hot[: int(room)]
                if tier is PMEM and take.size < hot.size and mem.free(CXL) > 0:
                    # heatmap-driven PMem→CXL rebalance when DRAM is full:
                    # CXL is the faster of the two in the testbed.
                    spill = hot[take.size:]
                    spill_room = max(0, mem.free(CXL)) // ps.chunk_size
                    spill = spill[: int(spill_room)]
                    if spill.size:
                        mem.migrate(ps, spill, CXL)
                        ctx.record_minor(ps.owner, int(spill.size))
                        budget_bytes -= int(spill.size) * ps.chunk_size
                if take.size:
                    mem.migrate(ps, take, DRAM)
                    ctx.record_minor(ps.owner, int(take.size))
                    obs.counter("imme.promotions", int(take.size), source=tier.name.lower())
                    budget_bytes -= int(take.size) * ps.chunk_size
                if budget_bytes <= 0:
                    return

    def _pull_up(self, ctx: PolicyContext, ps, idx: np.ndarray) -> np.ndarray:
        """Move swap chunks into the fastest tiers with room; returns the
        chunks actually moved."""
        mem = ctx.memory
        moved = []
        remaining = idx
        for tier in (DRAM, CXL, PMEM):
            if remaining.size == 0:
                break
            room = max(0, mem.free(tier)) // ps.chunk_size
            take = remaining[: int(room)]
            if take.size:
                mem.migrate(ps, take, tier)
                moved.append(take)
                remaining = remaining[take.size:]
        return np.concatenate(moved) if moved else idx[:0]

    # ------------------------------------------------------------------ #
    # proactive swapping
    # ------------------------------------------------------------------ #
    def _proactive_swap(self, ctx: PolicyContext) -> int:
        """Move cold, unprotected DRAM pages to CXL ahead of pressure.

        Pages from latency-sensitive/short-lived workflows are skipped
        entirely at this stage; their pageable remainder is only touched
        by reactive replacement when nothing else is left.
        """
        mem = ctx.memory
        cfg = self.config
        cap = mem.capacity(DRAM)
        if cap <= 0 or mem.capacity(CXL) <= 0:
            return 0
        rss = mem.rss(DRAM)
        if rss <= cfg.proactive_threshold * cap:
            return 0
        target_free = int(rss - cfg.proactive_target * cap)
        freed = 0
        for ps in list(mem.pagesets()):
            if freed >= target_free:
                break
            if is_protected(self.owner_flags(ps.owner)):
                continue
            need_chunks = -(-(target_free - freed) // ps.chunk_size)
            cold = self._cold_candidates(ps, DRAM, need_chunks, cfg.cold_threshold)
            if cold.size == 0:
                continue
            room = max(0, mem.free(CXL)) // ps.chunk_size
            cold = cold[: int(room)]
            if cold.size == 0:
                break
            freed += mem.migrate(ps, cold, CXL)
            obs.counter("imme.proactive_swaps", int(cold.size))
            # keep page-cache shadows while DRAM still has free space, so a
            # re-touch is a minor fault served at DRAM speed (§III-C4)
            mem.add_page_cache_shadow(ps, cold)
        return freed

    # ------------------------------------------------------------------ #
    # reactive replacement (Algorithm 2)
    # ------------------------------------------------------------------ #
    def _reactive(self, ctx: PolicyContext) -> None:
        mem = ctx.memory
        cfg = self.config
        cap = mem.capacity(DRAM)
        if cap <= 0:
            return
        rss = mem.rss(DRAM)
        if rss > cfg.high_watermark * cap:
            obs.counter("imme.reactive_passes")
            self.replacement.replace(ctx, int(rss - cfg.low_watermark * cap))
