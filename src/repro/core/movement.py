"""Intelligent page movement and proactive swapping (§III-C4).

The movement daemon does four things each tick, in order:

1. **Promotion** — pages "previously identified as cold but later
   categorized as hot" move up: swap→DRAM (as minor faults when shadowed,
   background-major otherwise), PMem→CXL/DRAM, CXL→DRAM, budget-limited
   by the staging buffers.
2. **Proactive swap** — above a DRAM utilisation threshold, cold pages of
   non-latency-sensitive workflows move to CXL *before* pressure forces
   reactive eviction; DRAM shadow copies are kept in the page cache when
   room remains, so re-touching them costs only a minor fault.
3. **Reactive replacement** — if DRAM is still over its high watermark,
   Algorithm 2 (:class:`~repro.core.replacement.PageReplacementPolicy`)
   runs with its workflow-aware victim filtering.
4. **Compaction** — a compaction pass is recorded when proactive swapping
   freed enough space to matter (§III-C4's fragmentation reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .. import obs
from ..memory.pageset import DEFAULT_CHUNK_SIZE
from ..obs import insight as _insight
from ..memory.tiers import CXL, DRAM, PMEM, SWAP
from ..policies.base import PolicyContext
from ..util.validation import check_fraction, check_positive, require
from .flags import MemFlag
from .replacement import PageReplacementPolicy, is_protected

__all__ = ["MovementConfig", "IntelligentPageMovement"]


@dataclass(frozen=True)
class MovementConfig:
    """Thresholds and budgets for the movement daemon."""

    #: DRAM rss fraction above which proactive swapping starts.
    proactive_threshold: float = 0.85
    #: DRAM rss fraction proactive swapping drives down to.
    proactive_target: float = 0.78
    #: DRAM rss fraction that triggers reactive (Alg. 2) replacement.
    high_watermark: float = 0.96
    low_watermark: float = 0.90
    #: minimum temperature for a slow-tier chunk to be promotion-worthy.
    promote_threshold: float = 0.05
    #: temperature bar for *exchange* promotion (evicting resident DRAM
    #: pages to make room); higher than promote_threshold to avoid
    #: ping-ponging lukewarm pages.
    exchange_threshold: float = 0.20
    #: temperature below which a DRAM chunk counts as proactively-swappable.
    cold_threshold: float = 0.01
    #: deprecated alias for :attr:`compaction_min_bytes` (in units of
    #: :data:`~repro.memory.pageset.DEFAULT_CHUNK_SIZE`); kept so old
    #: configs keep constructing.  Prefer ``compaction_min_bytes``.
    compaction_min_chunks: int = 16
    #: record a compaction when a tick frees at least this many bytes.
    #: Defaults to ``compaction_min_chunks * DEFAULT_CHUNK_SIZE``.  Bytes,
    #: not chunks: a node can host pagesets with different chunk sizes, so
    #: thresholding on an arbitrary pageset's chunk size mis-fires.
    compaction_min_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        check_fraction(self.proactive_threshold, "proactive_threshold")
        check_fraction(self.proactive_target, "proactive_target")
        check_fraction(self.high_watermark, "high_watermark")
        check_fraction(self.low_watermark, "low_watermark")
        require(self.proactive_target <= self.proactive_threshold, "target above threshold")
        require(self.low_watermark <= self.high_watermark, "low watermark above high")
        check_positive(self.compaction_min_chunks, "compaction_min_chunks")
        if self.compaction_min_bytes is None:
            object.__setattr__(
                self,
                "compaction_min_bytes",
                int(self.compaction_min_chunks) * DEFAULT_CHUNK_SIZE,
            )
        check_positive(self.compaction_min_bytes, "compaction_min_bytes")


class IntelligentPageMovement:
    """The per-tick movement engine behind the IMME environment."""

    def __init__(
        self,
        owner_flags: Callable[[str], MemFlag],
        replacement: PageReplacementPolicy,
        config: MovementConfig | None = None,
    ) -> None:
        self.owner_flags = owner_flags
        self.replacement = replacement
        self.config = config if config is not None else MovementConfig()

    # ------------------------------------------------------------------ #
    def tick(self, ctx: PolicyContext, promote_budget_bytes: int) -> None:
        """One daemon pass; ``promote_budget_bytes`` is the staging-buffer
        capacity the manager grants this tick.

        Under the ``arena-fast`` backend the promote/proactive stages run
        as whole-node batched kernels (one masked scan per tier) instead
        of per-pageset loops — statistically equivalent, not
        byte-identical (see ``tests/test_arena_fast.py``).
        """
        mem = ctx.memory
        if mem.arena is not None and getattr(mem, "fast_core", False):
            freed = self._tick_fast(ctx, promote_budget_bytes)
        else:
            # cause scopes label the migration ledger: every movement the
            # stage triggers (including nested reclaims / exchange
            # evictions) is attributed to the stage that decided it
            with _insight.cause("promote"):
                self._promote(ctx, promote_budget_bytes)
            with _insight.cause("proactive"):
                freed = self._proactive_swap(ctx)
            with _insight.cause("reactive"):
                self._reactive(ctx)
        if freed >= self.config.compaction_min_bytes:
            mem.compact()

    # ------------------------------------------------------------------ #
    # candidate selection (object backend: top-k then threshold filter;
    # arena backend: the same list filter-first via the arena kernels,
    # which is an exact rewrite — see NodeArena.cold_chunks)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _hot_candidates(ps, tier, max_chunks: int, min_temperature: float) -> np.ndarray:
        if ps.arena is not None:
            return ps.arena.hot_chunks(ps, tier, max_chunks, min_temperature=min_temperature)
        hot = ps.hottest_in(tier, max_chunks)
        return hot[ps.temperature[hot] >= min_temperature]

    @staticmethod
    def _cold_candidates(ps, tier, max_chunks: int, max_temperature: float) -> np.ndarray:
        if ps.arena is not None:
            return ps.arena.cold_chunks(ps, tier, max_chunks, max_temperature=max_temperature)
        cold = ps.coldest_in(tier, max_chunks)
        return cold[ps.temperature[cold] <= max_temperature]

    # ------------------------------------------------------------------ #
    # promotion
    # ------------------------------------------------------------------ #
    def _promote(self, ctx: PolicyContext, budget_bytes: int) -> None:
        mem = ctx.memory
        cfg = self.config
        # Running room counters replace the mem.free() re-read per pageset:
        # every migration's effect on free space is a closed-form delta
        # (moved bytes, minus any DRAM shadows the move dropped), so the
        # counters stay bit-exact against the re-read while the loop does
        # O(tasks) fewer accounting passes.
        # Pass 1 — swap-resident hot pages, globally, before anything else:
        # these are the most damaging, and must not be starved by
        # streaming workloads' tier-to-tier churn.
        room_bytes = {t: mem.free(t) for t in (DRAM, CXL, PMEM)}
        for ps in list(mem.pagesets()):
            if budget_bytes <= 0:
                return
            # all-cold pagesets can never clear promote_threshold, so skip
            # the candidate scan outright (idle tasks dominate large nodes)
            if cfg.promote_threshold > 0 and not ps.temperature.any():
                continue
            hot_swap = self._hot_candidates(
                ps, SWAP, budget_bytes // ps.chunk_size, cfg.promote_threshold
            )
            if hot_swap.size:
                moved_idx = self._pull_up(ctx, ps, hot_swap, room_bytes=room_bytes)
                if moved_idx.size:
                    obs.counter("imme.promotions", int(moved_idx.size), source="swap")
                    # shadowed swap-ins are free remaps (minor); the rest
                    # were brought in by the background daemon, which the
                    # paper counts as converting major faults into minors.
                    ctx.record_minor(ps.owner, int(moved_idx.size))
                    budget_bytes -= int(moved_idx.size) * ps.chunk_size
        # Pass 2 — PMem/CXL hot pages move toward DRAM.
        dram_free = mem.free(DRAM)
        cxl_free = mem.free(CXL)
        for ps in list(mem.pagesets()):
            if budget_bytes <= 0:
                return
            if cfg.promote_threshold > 0 and not ps.temperature.any():
                continue
            for tier in (PMEM, CXL):
                hot = self._hot_candidates(
                    ps, tier, budget_bytes // ps.chunk_size, cfg.promote_threshold
                )
                if hot.size == 0:
                    continue
                room = max(0, dram_free) // ps.chunk_size
                if room < hot.size:
                    # exchange: very hot slow-tier pages displace cold DRAM
                    # pages (demoted via Algorithm 2, never swapped blindly)
                    very_hot = hot[ps.temperature[hot] >= cfg.exchange_threshold]
                    want = int(very_hot.size) - int(room)
                    if want > 0:
                        self.replacement.replace(
                            ctx, want * ps.chunk_size, protect_owner=ps.owner
                        )
                        # replacement demotes through CXL/PMem and may swap:
                        # resync both counters from ground truth
                        dram_free = mem.free(DRAM)
                        cxl_free = mem.free(CXL)
                        room = max(0, dram_free) // ps.chunk_size
                take = hot[: int(room)]
                if tier is PMEM and take.size < hot.size and cxl_free > 0:
                    # heatmap-driven PMem→CXL rebalance when DRAM is full:
                    # CXL is the faster of the two in the testbed.
                    spill = hot[take.size:]
                    spill_room = max(0, cxl_free) // ps.chunk_size
                    spill = spill[: int(spill_room)]
                    if spill.size:
                        mem.migrate(ps, spill, CXL)
                        cxl_free -= int(spill.size) * ps.chunk_size
                        ctx.record_minor(ps.owner, int(spill.size))
                        budget_bytes -= int(spill.size) * ps.chunk_size
                if take.size:
                    # arriving in DRAM drops any shadows take carried, so
                    # the net DRAM cost is the moved bytes minus the
                    # page-cache bytes the move released
                    shadowed = int(np.count_nonzero(ps.in_page_cache[take]))
                    mem.migrate(ps, take, DRAM)
                    dram_free -= (int(take.size) - shadowed) * ps.chunk_size
                    if tier is CXL:
                        cxl_free += int(take.size) * ps.chunk_size
                    ctx.record_minor(ps.owner, int(take.size))
                    obs.counter("imme.promotions", int(take.size), source=tier.name.lower())
                    budget_bytes -= int(take.size) * ps.chunk_size
                if budget_bytes <= 0:
                    return

    def _pull_up(
        self,
        ctx: PolicyContext,
        ps,
        idx: np.ndarray,
        room_bytes: Optional[dict] = None,
    ) -> np.ndarray:
        """Move swap chunks into the fastest tiers with room; returns the
        chunks actually moved.  ``room_bytes`` lets the promotion loop
        thread running free-space counters across pagesets instead of
        re-deriving them from the accounting each call (bit-exact)."""
        mem = ctx.memory
        if room_bytes is None:
            room_bytes = {t: mem.free(t) for t in (DRAM, CXL, PMEM)}
        moved = []
        remaining = idx
        for tier in (DRAM, CXL, PMEM):
            if remaining.size == 0:
                break
            room = max(0, room_bytes[tier]) // ps.chunk_size
            take = remaining[: int(room)]
            if take.size:
                shadowed = (
                    int(np.count_nonzero(ps.in_page_cache[take])) if tier is DRAM else 0
                )
                mem.migrate(ps, take, tier)
                room_bytes[tier] -= (int(take.size) - shadowed) * ps.chunk_size
                moved.append(take)
                remaining = remaining[take.size:]
        return np.concatenate(moved) if moved else idx[:0]

    # ------------------------------------------------------------------ #
    # proactive swapping
    # ------------------------------------------------------------------ #
    def _proactive_swap(self, ctx: PolicyContext) -> int:
        """Move cold, unprotected DRAM pages to CXL ahead of pressure.

        Pages from latency-sensitive/short-lived workflows are skipped
        entirely at this stage; their pageable remainder is only touched
        by reactive replacement when nothing else is left.
        """
        mem = ctx.memory
        cfg = self.config
        cap = mem.capacity(DRAM)
        if cap <= 0 or mem.capacity(CXL) <= 0:
            return 0
        rss = mem.rss(DRAM)
        if rss <= cfg.proactive_threshold * cap:
            return 0
        target_free = int(rss - cfg.proactive_target * cap)
        freed = 0
        # running CXL-room counter: a DRAM→CXL migration consumes exactly
        # the moved bytes of CXL free space (shadow inserts only touch
        # DRAM), so the re-read per pageset is redundant (bit-exact)
        cxl_free = mem.free(CXL)
        for ps in list(mem.pagesets()):
            if freed >= target_free:
                break
            if is_protected(self.owner_flags(ps.owner)):
                continue
            need_chunks = -(-(target_free - freed) // ps.chunk_size)
            cold = self._cold_candidates(ps, DRAM, need_chunks, cfg.cold_threshold)
            if cold.size == 0:
                continue
            room = max(0, cxl_free) // ps.chunk_size
            cold = cold[: int(room)]
            if cold.size == 0:
                break
            moved = mem.migrate(ps, cold, CXL)
            freed += moved
            cxl_free -= moved
            obs.counter("imme.proactive_swaps", int(cold.size))
            # keep page-cache shadows while DRAM still has free space, so a
            # re-touch is a minor fault served at DRAM speed (§III-C4)
            mem.add_page_cache_shadow(ps, cold)
        return freed

    # ------------------------------------------------------------------ #
    # reactive replacement (Algorithm 2)
    # ------------------------------------------------------------------ #
    def _reactive(self, ctx: PolicyContext) -> None:
        mem = ctx.memory
        cfg = self.config
        cap = mem.capacity(DRAM)
        if cap <= 0:
            return
        rss = mem.rss(DRAM)
        if rss > cfg.high_watermark * cap:
            obs.counter("imme.reactive_passes")
            self.replacement.replace(ctx, int(rss - cfg.low_watermark * cap))

    # ------------------------------------------------------------------ #
    # arena-fast: whole-node batched tick (REPRO_CORE=arena-fast)
    #
    # The exact path above must interleave candidate scans with the
    # migrations they trigger (later pagesets observe earlier moves), so
    # it walks pagesets one at a time.  This path instead takes one
    # pre-pass snapshot per tier — candidates for all tasks in a single
    # masked argpartition, budget apportioned by hotness rank across
    # tasks, byte-cumsum prefix cuts against room/budget — and commits
    # moves through NodeMemorySystem.migrate_positions.  Differences vs
    # the exact path (all statistical, banded in tests/test_arena_fast.py):
    # promotion order is globally hottest-first instead of
    # registration-then-hotness, exchange eviction sizes from the
    # cross-task very-hot deficit without protecting the promoting owner,
    # and free-space is observed once per stage instead of per pageset.
    # ------------------------------------------------------------------ #
    def _tick_fast(self, ctx: PolicyContext, budget_bytes: int) -> int:
        """One batched daemon pass; returns proactively-freed bytes."""
        arena = ctx.memory.arena
        arena.refresh_protection(lambda owner: is_protected(self.owner_flags(owner)))
        with _insight.cause("promote"):
            self._promote_fast(ctx, budget_bytes)
        with _insight.cause("proactive"):
            freed = self._proactive_swap_fast(ctx)
        with _insight.cause("reactive"):
            self._reactive(ctx)
        return freed

    def _promote_fast(self, ctx: PolicyContext, budget_bytes: int) -> None:
        mem = ctx.memory
        arena = mem.arena
        cfg = self.config
        min_cs = arena.min_chunk_size()
        if budget_bytes <= 0 or min_cs <= 0:
            return
        # Pass 1 — swap-resident hot pages, hottest-first across all tasks.
        hot = arena.hot_by_tier(
            SWAP, budget_bytes // min_cs, min_temperature=cfg.promote_threshold
        )
        if hot.size:
            cum = np.cumsum(arena.chunk_cost(hot))
            hot = hot[: int(np.searchsorted(cum, budget_bytes, side="right"))]
        if hot.size:
            budget_bytes -= self._pull_up_fast(ctx, hot)
        # Pass 2 — PMem/CXL hot pages toward DRAM.
        for tier in (PMEM, CXL):
            if budget_bytes < min_cs:
                return
            hot = arena.hot_by_tier(
                tier, budget_bytes // min_cs, min_temperature=cfg.promote_threshold
            )
            if hot.size == 0:
                continue
            cum = np.cumsum(arena.chunk_cost(hot))
            hot = hot[: int(np.searchsorted(cum, budget_bytes, side="right"))]
            if hot.size == 0:
                continue
            cum = cum[: hot.size]
            dram_free = max(0, mem.free(DRAM))
            fit = int(np.searchsorted(cum, dram_free, side="right"))
            if fit < hot.size:
                # exchange: the cross-task very-hot byte deficit sizes one
                # Algorithm 2 eviction for the whole tier (masked
                # sub-selection instead of a per-task replace call)
                very_hot = hot[arena.temperature[hot] >= cfg.exchange_threshold]
                want = int(arena.chunk_cost(very_hot).sum()) - dram_free
                if want > 0:
                    self.replacement.replace(ctx, want)
                    dram_free = max(0, mem.free(DRAM))
                    fit = int(np.searchsorted(cum, dram_free, side="right"))
            take = hot[:fit]
            if tier is PMEM and fit < hot.size:
                # heatmap-driven PMem→CXL rebalance when DRAM is full
                cxl_free = max(0, mem.free(CXL))
                if cxl_free > 0:
                    spill = hot[fit:]
                    scum = np.cumsum(arena.chunk_cost(spill))
                    spill = spill[: int(np.searchsorted(scum, cxl_free, side="right"))]
                    if spill.size:
                        budget_bytes -= mem.migrate_positions(spill, CXL)
                        for owner, n in arena.owner_chunk_counts(spill):
                            ctx.record_minor(owner, n)
            if take.size:
                budget_bytes -= mem.migrate_positions(take, DRAM)
                for owner, n in arena.owner_chunk_counts(take):
                    ctx.record_minor(owner, n)
                obs.counter("imme.promotions", int(take.size), source=tier.name.lower())

    def _pull_up_fast(self, ctx: PolicyContext, positions: np.ndarray) -> int:
        """Batched swap pull-up: fill DRAM→CXL→PMem by byte-room prefix
        over the hottest-first candidate order.  Returns bytes moved."""
        mem = ctx.memory
        arena = mem.arena
        cum = np.cumsum(arena.chunk_cost(positions))
        moved_bytes = 0
        start = 0
        for tier in (DRAM, CXL, PMEM):
            if start >= positions.size:
                break
            room = max(0, mem.free(tier))
            base = int(cum[start - 1]) if start else 0
            end = int(np.searchsorted(cum, base + room, side="right"))
            take = positions[start:end]
            if take.size:
                moved_bytes += mem.migrate_positions(take, tier)
                start = end
        moved = positions[:start]
        if moved.size:
            obs.counter("imme.promotions", int(moved.size), source="swap")
            for owner, n in arena.owner_chunk_counts(moved):
                ctx.record_minor(owner, n)
        return moved_bytes

    def _proactive_swap_fast(self, ctx: PolicyContext) -> int:
        """Batched proactive swap: one protected-aware cold scan of DRAM,
        prefix-cut to the free target and the CXL room, one batched
        migrate + shadow commit.  Returns bytes freed."""
        mem = ctx.memory
        arena = mem.arena
        cfg = self.config
        cap = mem.capacity(DRAM)
        if cap <= 0 or mem.capacity(CXL) <= 0:
            return 0
        rss = mem.rss(DRAM)
        if rss <= cfg.proactive_threshold * cap:
            return 0
        min_cs = arena.min_chunk_size()
        if min_cs <= 0:
            return 0
        target_free = int(rss - cfg.proactive_target * cap)
        cold = arena.cold_by_tier(
            DRAM,
            -(-target_free // min_cs),
            max_temperature=cfg.cold_threshold,
            skip_protected=True,
        )
        if cold.size == 0:
            return 0
        cum = np.cumsum(arena.chunk_cost(cold))
        # enough of the coldest chunks to reach the target...
        k = min(int(np.searchsorted(cum, target_free, side="left")) + 1, cold.size)
        # ...capped by what CXL can absorb
        k = min(k, int(np.searchsorted(cum, max(0, mem.free(CXL)), side="right")))
        take = cold[:k]
        if take.size == 0:
            return 0
        freed = mem.migrate_positions(take, CXL)
        obs.counter("imme.proactive_swaps", int(take.size))
        # keep page-cache shadows while DRAM still has free space, so a
        # re-touch is a minor fault served at DRAM speed (§III-C4)
        mem.add_page_cache_shadows_batch(take)
        return freed
