"""The Table I programmatic API: ``allocate_TM`` / ``free_TM``.

Workflows use these to "request tiered memory for expansion, staging
input data, or storing intermediate and output data beyond the initial
memory allocation" (§III-C1).  A :class:`TieredMemoryClient` is bound to
one task's pageset on one node — the per-node *client* of the paper's
manager/client deployment — and hands out :class:`RegionHandle` tokens in
place of raw pointers.

Flags are advisory: passing none lets the manager predict them, exactly
as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..memory.pageset import NO_REGION, UNMAPPED, PageSet
from ..policies.base import AllocationRequest, MemoryPolicy, PolicyContext
from ..util.errors import AllocationError
from ..util.validation import check_positive, require
from .flags import MemFlag, normalize_flags

__all__ = ["RegionHandle", "TieredMemoryClient"]


@dataclass(frozen=True)
class RegionHandle:
    """Opaque token standing in for the C API's ``void*``."""

    owner: str
    region: int
    nbytes: int
    flags: MemFlag


class TieredMemoryClient:
    """Per-task allocation front-end (Table I).

    Examples
    --------
    ::

        client = TieredMemoryClient(ctx, policy, pageset)
        h = client.allocate_TM(GiB(2), MemFlag.LAT)   # hot lookup tables
        ...
        client.free_TM(h)
    """

    def __init__(self, ctx: PolicyContext, policy: MemoryPolicy, ps: PageSet) -> None:
        self.ctx = ctx
        self.policy = policy
        self.ps = ps
        self._next_region = 0
        self._live: dict[int, RegionHandle] = {}

    # ------------------------------------------------------------------ #
    def allocate_TM(self, size: int, flags: "MemFlag | None" = None) -> RegionHandle:
        """Allocate ``size`` bytes of tiered memory per ``flags``.

        Chunks come from the pageset's unassigned pool; the bound policy
        decides tier placement (Algorithm 1 under the Tiered Memory
        Manager, the oblivious baselines otherwise).
        """
        check_positive(size, "size")
        flags = normalize_flags(flags)
        ps = self.ps
        need = -(-int(size) // ps.chunk_size)
        pool = np.flatnonzero((ps.region == NO_REGION) & (ps.tier == UNMAPPED))
        if pool.size < need:
            raise AllocationError(
                f"{ps.owner!r}: address space exhausted "
                f"(need {need} chunks, {pool.size} unassigned remain)"
            )
        region = self._next_region
        self._next_region += 1
        idx = pool[:need]
        ps.region[idx] = region
        ps.region_flags[region] = flags
        request = AllocationRequest(owner=ps.owner, region=region, nbytes=int(size), flags=flags)
        try:
            self.policy.place(self.ctx, ps, request)
        except Exception:
            ps.region[idx] = NO_REGION
            ps.region_flags.pop(region, None)
            raise
        handle = RegionHandle(ps.owner, region, int(size), flags)
        self._live[region] = handle
        return handle

    def free_TM(self, handle: RegionHandle) -> None:
        """Release a region previously returned by :meth:`allocate_TM`."""
        require(handle.owner == self.ps.owner, "handle belongs to a different task")
        live = self._live.pop(handle.region, None)
        if live is None:
            raise AllocationError(f"double free or foreign handle: {handle!r}")
        idx = np.flatnonzero(self.ps.region == handle.region)
        self.policy.release(self.ctx, self.ps, idx)
        self.ps.region[idx] = NO_REGION
        self.ps.region_flags.pop(handle.region, None)

    def free_region(self, region: int) -> None:
        """Free by region id (used by phase specs' ``release_region``)."""
        handle = self._live.get(region)
        require(handle is not None, f"region {region} is not live for {self.ps.owner!r}")
        self.free_TM(handle)

    # ------------------------------------------------------------------ #
    @property
    def live_regions(self) -> tuple[RegionHandle, ...]:
        return tuple(self._live.values())

    @property
    def allocated_bytes(self) -> int:
        return sum(h.nbytes for h in self._live.values())
