"""Memory-characteristic flags (paper Table I / §III-C1).

Workflows pass these advisory hints with allocation requests; the Tiered
Memory Manager also infers them from execution logs when absent
(:mod:`repro.core.predictor`).

* ``LAT`` — extremely latency-sensitive; place in the fastest tier.
* ``BW``  — bandwidth-intensive; stripe across tiers for aggregate throughput.
* ``CAP`` — capacity-only; not sensitive to latency or bandwidth.
* ``SHL`` — short-lived; treated like ``LAT`` for placement priority.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

__all__ = ["MemFlag", "normalize_flags", "parse_flags"]


class MemFlag(enum.Flag):
    """Advisory memory-characteristic flag bits (Table I)."""

    NONE = 0
    LAT = enum.auto()
    BW = enum.auto()
    CAP = enum.auto()
    SHL = enum.auto()

    @property
    def label(self) -> str:
        """SLURM job-script spelling of a single flag."""
        if self is MemFlag.NONE:
            return "NONE"
        names = [f.name for f in MemFlag if f is not MemFlag.NONE and f in self]
        return "|".join(names)  # type: ignore[arg-type]

    def atoms(self) -> tuple["MemFlag", ...]:
        """Decompose a combined flag into its atomic members, in the
        priority order Algorithm 1 recurses over (LAT, SHL, BW, CAP)."""
        order = (MemFlag.LAT, MemFlag.SHL, MemFlag.BW, MemFlag.CAP)
        return tuple(f for f in order if f in self)


def normalize_flags(flags: "MemFlag | Iterable[MemFlag] | None") -> MemFlag:
    """Collapse ``None`` / a single flag / an iterable of flags into one
    :class:`MemFlag` value."""
    if flags is None:
        return MemFlag.NONE
    if isinstance(flags, MemFlag):
        return flags
    out = MemFlag.NONE
    for f in flags:
        if not isinstance(f, MemFlag):
            raise TypeError(f"expected MemFlag, got {type(f).__name__}")
        out |= f
    return out


def parse_flags(spec: "str | Sequence[str]") -> MemFlag:
    """Parse the SLURM job-script flag syntax, e.g. ``"LAT|SHL"`` or
    ``["BW", "CAP"]`` (the paper's modified-SLURM integration, §IV-A)."""
    if isinstance(spec, str):
        parts = [p for p in spec.replace(",", "|").split("|") if p.strip()]
    else:
        parts = list(spec)
    out = MemFlag.NONE
    for part in parts:
        name = part.strip().upper()
        if name in ("", "NONE"):
            continue
        try:
            out |= MemFlag[name]
        except KeyError:
            raise ValueError(f"unknown memory flag {part!r} (expected LAT/BW/CAP/SHL)") from None
    return out
