"""Singularity-like container substrate: images, registry, contended
pulls, and cgroup memory limits."""

from .cgroup import MemoryCgroup, OomKill
from .image import ContainerImage, ImageRegistry, default_images
from .runtime import ContainerRuntime, NetworkFabric

__all__ = [
    "MemoryCgroup",
    "OomKill",
    "ContainerImage",
    "ImageRegistry",
    "default_images",
    "ContainerRuntime",
    "NetworkFabric",
]
