"""Container images and the image registry.

Singularity images are single ``.sif`` files; "launching thousands of HPC
workflows using a custom Singularity container image requires the image to
be moved to all the servers that will run the job workflows" (§III-C5) —
the registry is where those pulls come from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import ContainerError
from ..util.units import GiB
from ..util.validation import check_positive

__all__ = ["ContainerImage", "ImageRegistry", "default_images"]


@dataclass(frozen=True)
class ContainerImage:
    """A named, immutable container image."""

    name: str
    size: int

    def __post_init__(self) -> None:
        check_positive(self.size, "size")


class ImageRegistry:
    """Name → image catalogue (the site registry / shared filesystem)."""

    def __init__(self) -> None:
        self._images: dict[str, ContainerImage] = {}

    def add(self, image: ContainerImage) -> None:
        self._images[image.name] = image

    def get(self, name: str) -> ContainerImage:
        img = self._images.get(name)
        if img is None:
            raise ContainerError(f"unknown container image {name!r}")
        return img

    def __contains__(self, name: str) -> bool:
        return name in self._images

    def __len__(self) -> int:
        return len(self._images)


def default_images(scale: float = 1.0) -> ImageRegistry:
    """The evaluation workloads' images (sizes typical of HPC .sif files)."""
    reg = ImageRegistry()
    for name, size in (
        ("dl-bert.sif", GiB(6.0)),
        ("dm-spark.sif", GiB(3.0)),
        ("dc-zip.sif", GiB(0.5)),
        ("sc-igraph.sif", GiB(1.5)),
        ("default.sif", GiB(1.0)),
    ):
        reg.add(ContainerImage(name, max(1, int(size * scale))))
    return reg
