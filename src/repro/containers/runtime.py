"""Singularity-like container runtime with a contended image-pull model.

Startup of a containerized task needs its image on the node.  Three paths,
fastest first:

1. **node cache hit** — the image was pulled before; only container
   instantiation time is paid,
2. **shared-CXL staged** (IMME) — the image is read from cluster-shared
   CXL memory at CXL bandwidth, bypassing the network entirely
   (§III-C5 strategy 2, the Fig. 10/11 startup win),
3. **network pull** — the image is fetched from the registry over the
   shared 10 GbE fabric; concurrent pulls share the link max-min fairly,
   which is exactly the §III-C5 "network and I/O bottleneck when a large
   number of workflows access the same data".
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.sharing import SharedMemoryManager
from ..sim.engine import SimulationEngine
from ..sim.events import Event
from ..sim.process import RateTracker
from ..util.errors import ContainerError
from ..util.units import GBps
from ..util.validation import check_fraction, check_non_negative, check_positive, require
from .image import ImageRegistry

__all__ = ["NetworkFabric", "ContainerRuntime"]


class _Transfer:
    __slots__ = ("tracker", "event", "on_done")

    def __init__(self, nbytes: int, on_done: Callable[[], None]) -> None:
        self.tracker = RateTracker(float(nbytes))
        self.event: Optional[Event] = None
        self.on_done = on_done


class NetworkFabric:
    """A shared full-duplex link; active transfers get max-min fair shares.

    All transfers here are same-sized-priority bulk pulls, so the fair
    share degenerates to an equal split — recomputed whenever a transfer
    starts or finishes.
    """

    def __init__(self, engine: SimulationEngine, bandwidth: float = GBps(1.25)) -> None:
        check_positive(bandwidth, "bandwidth")
        self.engine = engine
        self.bandwidth = float(bandwidth)  # 10 GbE ≈ 1.25 GB/s
        self._active: list[_Transfer] = []
        self.completed_transfers = 0
        self.bytes_transferred = 0

    @property
    def active_count(self) -> int:
        return len(self._active)

    def transfer(self, nbytes: int, on_done: Callable[[], None]) -> None:
        check_positive(nbytes, "nbytes")
        t = _Transfer(nbytes, on_done)
        self._active.append(t)
        self.bytes_transferred += int(nbytes)
        self._rebalance()

    def _rebalance(self) -> None:
        if not self._active:
            return
        share = self.bandwidth / len(self._active)
        now = self.engine.now
        for t in self._active:
            t.tracker.set_rate(now, share)
            self.engine.cancel(t.event)
            eta = t.tracker.projected_finish(now)
            assert eta is not None  # share > 0
            t.event = self.engine.schedule_at(eta, lambda t=t: self._complete(t), "net.pull")

    def _complete(self, t: _Transfer) -> None:
        self._active.remove(t)
        self.completed_transfers += 1
        self._rebalance()
        t.on_done()


class ContainerRuntime:
    """Per-cluster container manager: image caches, pulls, CXL staging."""

    def __init__(
        self,
        engine: SimulationEngine,
        registry: ImageRegistry,
        fabric: NetworkFabric,
        n_nodes: int,
        *,
        shared_memory: Optional[SharedMemoryManager] = None,
        cxl_read_bandwidth: float = GBps(30.0),
        instantiation_time: float = 0.5,
        max_pull_retries: int = 3,
        pull_retry_backoff: float = 2.0,
        metrics=None,
    ) -> None:
        check_positive(n_nodes, "n_nodes")
        check_positive(cxl_read_bandwidth, "cxl_read_bandwidth")
        check_non_negative(instantiation_time, "instantiation_time")
        require(max_pull_retries >= 0, "max_pull_retries must be >= 0")
        check_non_negative(pull_retry_backoff, "pull_retry_backoff")
        self.engine = engine
        self.registry = registry
        self.fabric = fabric
        self.shared_memory = shared_memory
        self.cxl_read_bandwidth = float(cxl_read_bandwidth)
        self.instantiation_time = float(instantiation_time)
        self.max_pull_retries = int(max_pull_retries)
        self.pull_retry_backoff = float(pull_retry_backoff)
        #: optional :class:`~repro.metrics.collector.MetricsRegistry` whose
        #: ``faults`` counters mirror the retry/fallback activity
        self.metrics = metrics
        self._node_caches: list[set[str]] = [set() for _ in range(n_nodes)]
        #: per-node shared-CXL link health; a flapped link falls back to
        #: network pulls until restored
        self._node_cxl_ok = [True] * n_nodes
        #: registry failure injection: probability a finished network pull
        #: turns out corrupt/refused and must be retried
        self.pull_failure_prob = 0.0
        self._pull_rng = None
        self.cache_hits = 0
        self.cxl_reads = 0
        self.network_pulls = 0
        self.pull_retries = 0
        self.pull_fallbacks = 0
        self.failed_pulls = 0

    # ------------------------------------------------------------------ #
    def stage_image(self, name: str) -> None:
        """Pre-stage an image in shared CXL memory (IMME's scheduler does
        this once per distinct image before a large launch)."""
        require(self.shared_memory is not None, "no shared-memory manager configured")
        image = self.registry.get(name)
        if not self.shared_memory.pool.contains(name):
            self.shared_memory.stage(name, image.size)

    def is_cached(self, node_index: int, name: str) -> bool:
        return name in self._node_caches[node_index]

    # ------------------------------------------------------------------ #
    # fault knobs (driven by the injector)
    # ------------------------------------------------------------------ #
    def set_node_cxl(self, node_index: int, ok: bool) -> None:
        """Mark node ``node_index``'s shared-CXL link up/down; while down,
        staged images degrade to network pulls."""
        self._node_cxl_ok[node_index] = bool(ok)

    def set_pull_failures(self, prob: float, rng=None) -> None:
        """Make network pulls fail with probability ``prob`` (0 disables)."""
        check_fraction(prob, "prob")
        self.pull_failure_prob = float(prob)
        if rng is not None:
            self._pull_rng = rng

    def _record_fault(self, counter: str) -> None:
        if self.metrics is not None:
            stats = self.metrics.faults
            setattr(stats, counter, getattr(stats, counter) + 1)

    # ------------------------------------------------------------------ #
    def prepare(
        self,
        node_index: int,
        image_name: str,
        on_ready: Callable[[], None],
        on_failed: Optional[Callable[[], None]] = None,
    ) -> None:
        """Make ``image_name`` runnable on node ``node_index``; fires
        ``on_ready`` after instantiation completes.

        Transient pull failures are retried with exponential backoff up to
        ``max_pull_retries`` times; if the budget is spent ``on_failed``
        fires (or :class:`ContainerError` is raised when no handler was
        given).
        """
        self._attempt(node_index, image_name, on_ready, on_failed, attempt=0)

    def _attempt(
        self,
        node_index: int,
        image_name: str,
        on_ready: Callable[[], None],
        on_failed: Optional[Callable[[], None]],
        attempt: int,
    ) -> None:
        image = self.registry.get(image_name)

        def instantiate() -> None:
            self._node_caches[node_index].add(image_name)
            self.engine.schedule(self.instantiation_time, on_ready, f"init.{image_name}")

        if image_name in self._node_caches[node_index]:
            self.cache_hits += 1
            instantiate()
            return
        staged = self.shared_memory is not None and self.shared_memory.pool.contains(image_name)
        if staged and self._node_cxl_ok[node_index]:
            # §III-C5: CXL-hosted image, read at CXL bandwidth, then cached
            # in the node's local buffers.
            self.cxl_reads += 1
            self.shared_memory.note_access(node_index, image_name)
            duration = image.size / self.cxl_read_bandwidth
            self.engine.schedule(duration, instantiate, f"cxl-read.{image_name}")
            return
        if staged:
            # flapped CXL link: degrade to the slow path instead of failing
            self.pull_fallbacks += 1
            self._record_fault("pull_fallbacks")
        self.network_pulls += 1

        def pulled() -> None:
            if self._pull_should_fail():
                self._retry(node_index, image_name, on_ready, on_failed, attempt)
                return
            instantiate()

        self.fabric.transfer(image.size, pulled)

    def _pull_should_fail(self) -> bool:
        if self.pull_failure_prob <= 0.0 or self._pull_rng is None:
            return False
        return bool(self._pull_rng.random() < self.pull_failure_prob)

    def _retry(
        self,
        node_index: int,
        image_name: str,
        on_ready: Callable[[], None],
        on_failed: Optional[Callable[[], None]],
        attempt: int,
    ) -> None:
        if attempt + 1 > self.max_pull_retries:
            self.failed_pulls += 1
            if on_failed is not None:
                on_failed()
                return
            raise ContainerError(
                f"image pull for {image_name!r} failed after "
                f"{self.max_pull_retries} retries"
            )
        self.pull_retries += 1
        self._record_fault("pull_retries")
        delay = self.pull_retry_backoff * (2 ** attempt)
        self.engine.schedule(
            delay,
            lambda: self._attempt(node_index, image_name, on_ready, on_failed, attempt + 1),
            f"pull-retry.{image_name}",
        )
