"""Container memory cgroups.

Containerized HPC deployments give each container a fixed memory
allocation from the job script: "memory is allocated at the start based on
the memory requirement of the job and does not support dynamic memory
allocation based on different execution phases" (§II-B).  When a workflow
outgrows that fixed allocation the kernel's OOM killer terminates it —
the failure mode the paper's design objective 1 targets ("reduce workflow
failures due to limited memory").

:class:`MemoryCgroup` models the cgroup-v2 ``memory.max`` semantics at
chunk granularity:

* every byte the task maps in **local** tiers (DRAM/PMem) is charged;
* CXL memory attached through the Tiered Memory Manager is *expansion
  memory* outside the container's fixed allocation (the paper's dynamic
  footprint growth), so it is not charged;
* swap is charged too (``memory.swap.max`` folded in, like a strict HPC
  configuration);
* charging past the limit raises :class:`OomKill`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..util.errors import ReproError
from ..util.validation import check_positive

__all__ = ["OomKill", "MemoryCgroup"]


class OomKill(ReproError):
    """The container exceeded its memory limit and was killed."""


@dataclass
class MemoryCgroup:
    """Per-container charged-memory accounting with a hard limit.

    ``None`` limit means unconstrained (the scheduler did not cap the
    container).
    """

    owner: str
    limit: Optional[int] = None
    charged: int = 0
    peak: int = 0
    oom_kills: int = 0

    def __post_init__(self) -> None:
        if self.limit is not None:
            check_positive(self.limit, "limit")

    def charge(self, nbytes: int) -> None:
        """Account ``nbytes`` of limit-visible memory; raise on overrun."""
        if nbytes <= 0:
            return
        new_total = self.charged + int(nbytes)
        if self.limit is not None and new_total > self.limit:
            self.oom_kills += 1
            raise OomKill(
                f"container {self.owner!r} exceeded its memory limit: "
                f"{new_total} > {self.limit} bytes"
            )
        self.charged = new_total
        self.peak = max(self.peak, self.charged)

    def uncharge(self, nbytes: int) -> None:
        self.charged = max(0, self.charged - int(nbytes))

    @property
    def headroom(self) -> Optional[int]:
        if self.limit is None:
            return None
        return self.limit - self.charged
