"""Cluster-level memory topology.

The paper assumes tiered memory "accessible on every node in the cluster
including PMem and CXL memory over the CXL interconnect" (§III-B1).  Two
pieces model that here:

* each node gets its own :class:`~repro.memory.system.NodeMemorySystem`
  (local DRAM/PMem plus its window into CXL), and
* a :class:`SharedCXLPool` tracks cluster-visible named regions — the
  shared-memory substrate §III-C5 uses for container images and read-only
  input data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..util.errors import AllocationError
from ..util.units import TiB
from ..util.validation import check_positive, require
from .system import NodeMemorySystem
from .tiers import TierKind, TierSpec, default_tier_specs

__all__ = ["SharedCXLPool", "MemoryTopology"]


@dataclass
class _Region:
    name: str
    nbytes: int
    refcount: int


class SharedCXLPool:
    """Named, reference-counted regions in cluster-shared CXL memory.

    Used for staged container images and shared read-only data.  A region
    persists while any workflow holds a reference; §III-C5's scale-down
    rule ("shared memory is freed when all references ... have been
    removed") is exactly the refcount reaching zero.
    """

    def __init__(self, capacity: int = TiB(64)) -> None:
        check_positive(capacity, "capacity")
        self.capacity = int(capacity)
        self.used = 0
        self._regions: dict[str, _Region] = {}

    def contains(self, name: str) -> bool:
        return name in self._regions

    def region_bytes(self, name: str) -> int:
        return self._regions[name].nbytes if name in self._regions else 0

    def stage(self, name: str, nbytes: int) -> bool:
        """Create (or re-reference) a region.  Returns True if the region is
        newly staged, False if it already existed (a cache hit)."""
        check_positive(nbytes, "nbytes")
        reg = self._regions.get(name)
        if reg is not None:
            reg.refcount += 1
            return False
        if self.used + nbytes > self.capacity:
            raise AllocationError(
                f"shared CXL pool exhausted: need {nbytes}, free {self.capacity - self.used}"
            )
        self._regions[name] = _Region(name, int(nbytes), 1)
        self.used += int(nbytes)
        return True

    def acquire(self, name: str) -> None:
        """Add a reference to an existing region."""
        require(name in self._regions, f"no shared region {name!r}")
        self._regions[name].refcount += 1

    def release(self, name: str) -> bool:
        """Drop one reference; frees the region (returns True) at zero."""
        require(name in self._regions, f"no shared region {name!r}")
        reg = self._regions[name]
        reg.refcount -= 1
        if reg.refcount <= 0:
            self.used -= reg.nbytes
            del self._regions[name]
            return True
        return False

    def refcount(self, name: str) -> int:
        return self._regions[name].refcount if name in self._regions else 0

    def __len__(self) -> int:
        return len(self._regions)


class MemoryTopology:
    """All memory systems of a cluster plus the shared CXL pool."""

    def __init__(
        self,
        n_nodes: int,
        specs: Optional[dict[TierKind, TierSpec]] = None,
        shared_cxl_capacity: int = TiB(64),
        backend: Optional[str] = None,
    ) -> None:
        require(n_nodes >= 1, "a cluster needs at least one node")
        self.specs = specs if specs is not None else default_tier_specs()
        self.nodes: list[NodeMemorySystem] = [
            NodeMemorySystem(self.specs, node_id=f"node{i}", backend=backend)
            for i in range(n_nodes)
        ]
        self.shared_cxl = SharedCXLPool(shared_cxl_capacity)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, i: int) -> NodeMemorySystem:
        return self.nodes[i]

    def validate(self) -> None:
        for node in self.nodes:
            node.validate()
