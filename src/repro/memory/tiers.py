"""Memory-tier specifications.

The paper's testbed (§IV-C1) provides the reference constants: local DRAM
(~80 ns), CXL emulated through a remote NUMA socket (~140 ns, as advocated
by Pond and CXLMemSim), Intel Optane DC persistent memory, and NVMe-backed
swap.  A :class:`TierSpec` captures the three properties the policies care
about — access latency, attainable bandwidth, capacity — plus the
interconnect classification used by the Tiered Memory Manager when it
builds its tier ordering.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from ..util.units import GBps, GiB, TiB, ns, us
from ..util.validation import check_non_negative, check_positive

__all__ = [
    "TierKind",
    "TierSpec",
    "DRAM",
    "PMEM",
    "CXL",
    "SWAP",
    "NUM_TIERS",
    "MEMORY_TIERS",
    "TIER_NAMES",
    "PMEM_DRAM_RATIO",
    "CXL_DRAM_RATIO",
    "default_tier_specs",
    "constrained_tier_specs",
    "ideal_tier_specs",
    "scaled_tier_capacities",
]

#: paper per-node provisioning ratios: PMem is 2x DRAM, CXL is
#: "effectively unlimited" (64x DRAM keeps accounting finite)
PMEM_DRAM_RATIO = 2
CXL_DRAM_RATIO = 64


class TierKind(enum.IntEnum):
    """Identity of a memory tier.

    Integer values index the per-chunk ``tier`` arrays in
    :class:`~repro.memory.pageset.PageSet`; the order (fastest first for
    byte-addressable tiers, swap last) matches Algorithm 1's cascading
    order ``(local, pmem, cxl)``.
    """

    DRAM = 0
    PMEM = 1
    CXL = 2
    SWAP = 3


DRAM = TierKind.DRAM
PMEM = TierKind.PMEM
CXL = TierKind.CXL
SWAP = TierKind.SWAP

#: Total number of tiers, including disk-based swap.
NUM_TIERS = len(TierKind)

#: Byte-addressable tiers in Algorithm 1's cascading order.
MEMORY_TIERS = (DRAM, PMEM, CXL)

TIER_NAMES = {DRAM: "dram", PMEM: "pmem", CXL: "cxl", SWAP: "swap"}


@dataclass(frozen=True)
class TierSpec:
    """Performance and capacity description of one memory tier.

    Parameters
    ----------
    kind:
        Which tier this describes.
    capacity:
        Usable bytes.  Algorithm 1 treats CXL capacity as unlimited; model
        that with a very large (but finite, for accounting) capacity.
    latency:
        Average load-to-use latency in seconds for a cache-missing access.
    read_bandwidth / write_bandwidth:
        Peak sequential throughput in bytes/second.
    interconnect:
        Free-form label ("ddr", "cxl", "pcie", "nvme") used by the manager
        when classifying discovered memory into tiers.
    byte_addressable:
        False only for swap; accesses to non-byte-addressable tiers fault.
    """

    kind: TierKind
    capacity: int
    latency: float
    read_bandwidth: float
    write_bandwidth: float
    interconnect: str = "ddr"
    byte_addressable: bool = True
    name: str = field(default="")

    def __post_init__(self) -> None:
        check_non_negative(self.capacity, "capacity")
        check_positive(self.latency, "latency")
        check_positive(self.read_bandwidth, "read_bandwidth")
        check_positive(self.write_bandwidth, "write_bandwidth")
        if not self.name:
            object.__setattr__(self, "name", TIER_NAMES[self.kind])

    @property
    def bandwidth(self) -> float:
        """Blended bandwidth assuming a 2:1 read:write mix."""
        return (2.0 * self.read_bandwidth + self.write_bandwidth) / 3.0

    def with_capacity(self, capacity: int) -> "TierSpec":
        """Copy of this spec with a different capacity."""
        return replace(self, capacity=int(capacity))

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{self.name}(cap={self.capacity / GiB(1):.1f}GiB, "
            f"lat={self.latency * 1e9:.0f}ns, bw={self.read_bandwidth / GBps(1):.0f}GB/s)"
        )


# --------------------------------------------------------------------------- #
# Reference configurations (paper §IV-C1 testbed)
# --------------------------------------------------------------------------- #

def default_tier_specs(
    dram_capacity: int = GiB(512),
    pmem_capacity: int = TiB(1),
    cxl_capacity: Optional[int] = None,
    swap_capacity: int = TiB(4),
) -> dict[TierKind, TierSpec]:
    """Tier specs mirroring the paper's testbed.

    Local/remote NUMA latencies are the measured ~80 ns / ~140 ns; Optane
    PMem uses published DC PMM figures; swap models an NVMe SSD.  ``None``
    CXL capacity selects the paper's "unlimited CXL" assumption (64 TiB).
    """
    if cxl_capacity is None:
        cxl_capacity = TiB(64)
    return {
        DRAM: TierSpec(DRAM, dram_capacity, ns(80), GBps(100.0), GBps(80.0), "ddr"),
        PMEM: TierSpec(PMEM, pmem_capacity, ns(300), GBps(30.0), GBps(8.0), "ddr-t"),
        CXL: TierSpec(CXL, cxl_capacity, ns(140), GBps(30.0), GBps(25.0), "cxl"),
        SWAP: TierSpec(
            SWAP, swap_capacity, us(90), GBps(2.5), GBps(1.5), "nvme", byte_addressable=False
        ),
    }


def constrained_tier_specs(
    dram_capacity: int,
    pmem_capacity: int = 0,
    cxl_capacity: int = 0,
    swap_capacity: int = TiB(4),
) -> dict[TierKind, TierSpec]:
    """Specs for memory-constrained environments (CBE: DRAM + swap only).

    Tiers with zero capacity are still present (so indices stay stable) but
    can never hold pages.
    """
    base = default_tier_specs(dram_capacity=dram_capacity, swap_capacity=swap_capacity)
    return {
        DRAM: base[DRAM],
        PMEM: base[PMEM].with_capacity(pmem_capacity),
        CXL: base[CXL].with_capacity(cxl_capacity),
        SWAP: base[SWAP],
    }


def ideal_tier_specs(dram_capacity: int = TiB(8)) -> dict[TierKind, TierSpec]:
    """Specs for the Ideal Environment: DRAM large enough for everything."""
    return constrained_tier_specs(dram_capacity=dram_capacity)


def scaled_tier_capacities(
    *,
    tiered: bool,
    chunk_size: int,
    total_footprint: int = 0,
    dram_fraction: Optional[float] = None,
    ideal_headroom: Optional[float] = None,
    dram_per_node: Optional[int] = None,
    n_nodes: int = 1,
    pmem_capacity: int = 0,
    cxl_capacity: int = 0,
    floor_chunks: int = 16,
) -> tuple[int, int, int]:
    """Per-node ``(dram, pmem, cxl)`` capacities for one environment.

    This is the single place tier sizing happens (experiment harnesses,
    the scenario layer, and :func:`~repro.envs.make_environment` all
    route through it).  DRAM resolves in priority order: an explicit
    ``dram_per_node`` (fixed-hardware cluster scaling), then
    ``ideal_headroom`` x the aggregate footprint (the Ideal Environment:
    nothing ever swaps), then ``dram_fraction`` x the aggregate footprint,
    split across ``n_nodes`` either way and floored at ``floor_chunks``
    chunks so a node can always hold a working set.  For tiered
    environments, zero PMem/CXL capacities default to the paper's
    per-node provisioning ratios (:data:`PMEM_DRAM_RATIO` /
    :data:`CXL_DRAM_RATIO`).
    """
    check_positive(chunk_size, "chunk_size")
    check_positive(n_nodes, "n_nodes")
    if dram_per_node is not None:
        dram = int(dram_per_node)
    elif ideal_headroom is not None:
        dram = int(total_footprint * ideal_headroom / n_nodes)
    elif dram_fraction is not None:
        dram = int(total_footprint * dram_fraction / n_nodes)
    else:
        raise ValueError(
            "tier sizing needs dram_per_node, ideal_headroom, or dram_fraction"
        )
    dram = max(dram, floor_chunks * chunk_size)
    if not tiered:
        return dram, int(pmem_capacity), int(cxl_capacity)
    pmem = int(pmem_capacity) if pmem_capacity else PMEM_DRAM_RATIO * dram
    cxl = int(cxl_capacity) if cxl_capacity else CXL_DRAM_RATIO * dram
    return dram, pmem, cxl
