"""CXL emulation via remote NUMA characteristics (§IV-C1).

The paper provisions its CXL tier "emulated using the remote NUMA socket
as advocated by POND and CXLMemSim", observing ~80 ns local and ~140 ns
remote latency.  This module reproduces that methodology for users who
want tier specs derived from *their* machine's NUMA numbers rather than
the paper's defaults:

* describe each socket with a :class:`NumaNodeDesc` (as reported by
  ``numactl --hardware`` + a latency benchmark),
* :func:`latency_probe` simulates the pointer-chase measurement loop such
  benchmarks run (deterministic jitter, so tests are stable),
* :func:`emulated_cxl_specs` builds a full tier-spec set where the CXL
  tier inherits the remote socket's latency/bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.rng import derive_seed
from ..util.units import GBps, GiB, TiB, ns
from ..util.validation import check_positive
from .tiers import CXL, DRAM, PMEM, SWAP, TierKind, TierSpec, default_tier_specs

__all__ = ["NumaNodeDesc", "latency_probe", "emulated_cxl_specs"]


@dataclass(frozen=True)
class NumaNodeDesc:
    """One NUMA socket's memory characteristics."""

    latency: float
    read_bandwidth: float
    write_bandwidth: float
    capacity: int

    def __post_init__(self) -> None:
        check_positive(self.latency, "latency")
        check_positive(self.read_bandwidth, "read_bandwidth")
        check_positive(self.write_bandwidth, "write_bandwidth")
        check_positive(self.capacity, "capacity")


#: the paper's testbed sockets (~80 ns local, ~140 ns remote)
PAPER_LOCAL = NumaNodeDesc(ns(80), GBps(100.0), GBps(80.0), GiB(256))
PAPER_REMOTE = NumaNodeDesc(ns(140), GBps(30.0), GBps(25.0), GiB(256))


def latency_probe(node: NumaNodeDesc, samples: int = 1000, seed: int = 0) -> float:
    """Simulated pointer-chase latency measurement.

    Real measurements (Intel MLC, CXLMemSim's probes) sample a dependent
    load chain and report the mean; per-sample jitter comes from TLB and
    row-buffer effects.  We model ±5% deterministic jitter around the true
    latency so calibration code can be tested end-to-end.
    """
    check_positive(samples, "samples")
    rng = np.random.default_rng(derive_seed(seed, "latency-probe"))
    observed = node.latency * (1.0 + 0.05 * rng.standard_normal(samples) / 3.0)
    return float(np.clip(observed, node.latency * 0.9, node.latency * 1.1).mean())


def emulated_cxl_specs(
    local: NumaNodeDesc = PAPER_LOCAL,
    remote: NumaNodeDesc = PAPER_REMOTE,
    *,
    pmem_capacity: int = TiB(1),
    swap_capacity: int = TiB(4),
    calibrate: bool = False,
) -> dict[TierKind, TierSpec]:
    """Tier specs with DRAM = the local socket and CXL = the remote one.

    With ``calibrate=True`` the latencies come from :func:`latency_probe`
    instead of the nominal values (the measured-on-testbed workflow).
    """
    base = default_tier_specs(pmem_capacity=pmem_capacity, swap_capacity=swap_capacity)
    local_lat = latency_probe(local) if calibrate else local.latency
    remote_lat = latency_probe(remote, seed=1) if calibrate else remote.latency
    return {
        DRAM: TierSpec(
            DRAM, local.capacity, local_lat, local.read_bandwidth,
            local.write_bandwidth, "ddr",
        ),
        PMEM: base[PMEM],
        CXL: TierSpec(
            CXL,
            base[CXL].capacity,  # "unlimited" pool assumption stands
            remote_lat,
            remote.read_bandwidth,
            remote.write_bandwidth,
            "cxl-emulated-numa",
        ),
        SWAP: base[SWAP],
    }
