"""Bandwidth-contention model.

Colocated workflows on a node share each tier's bandwidth.  We use
**max-min fairness** (progressive filling / water-filling): every demander
gets capacity/n, and any demand smaller than its share returns the surplus
to the pool — the classical model of fair memory-controller arbitration and
the behaviour the paper's Fig. 1 contention results reflect.

All functions are vectorised; the per-node rate recomputation calls
:func:`allocate_bandwidth` with an ``(n_tasks, n_tiers)`` demand matrix.
"""

from __future__ import annotations

import numpy as np

from ..util.validation import require

__all__ = ["fair_share", "allocate_bandwidth"]


def fair_share(capacity: float, demands: np.ndarray) -> np.ndarray:
    """Max-min fair split of ``capacity`` among ``demands``.

    Parameters
    ----------
    capacity:
        Total resource available (bytes/s).
    demands:
        1-D non-negative demand vector.

    Returns
    -------
    ndarray
        Allocation vector: ``alloc[i] <= demands[i]``, ``sum(alloc) <=
        capacity``, and no task that is below its demand could receive more
        without taking from a task with a smaller allocation.

    Notes
    -----
    Implemented by sorting demands and progressively filling — O(n log n)
    with pure-NumPy inner work, per the vectorisation idioms in the
    hpc-parallel guides.
    """
    d = np.asarray(demands, dtype=np.float64)
    require(bool(np.all(d >= 0)), "demands must be non-negative")
    require(capacity >= 0, "capacity must be non-negative")
    n = d.size
    alloc = np.zeros(n, dtype=np.float64)
    if n == 0 or capacity <= 0:
        return alloc
    if d.sum() <= capacity:
        return d.copy()

    order = np.argsort(d, kind="stable")
    sorted_d = d[order]
    remaining = float(capacity)
    # After satisfying the k smallest demands outright, the rest split the
    # remainder equally.  Find the crossover point vectorised.
    csum = np.cumsum(sorted_d)
    k_alive = n - np.arange(n)  # demanders not yet fully satisfied at step i
    # share if we satisfy all demands < sorted_d[i] and split rest equally:
    prior = np.concatenate(([0.0], csum[:-1]))
    equal_share = (capacity - prior) / k_alive
    # The first index where the equal share no longer covers the demand is
    # where filling stops.
    saturated = sorted_d <= equal_share
    sorted_alloc = np.where(saturated, sorted_d, 0.0)
    unsat = ~saturated
    if unsat.any():
        first_unsat = int(np.argmax(unsat))
        remaining = capacity - float(sorted_alloc[:first_unsat].sum())
        share = remaining / (n - first_unsat)
        sorted_alloc[first_unsat:] = np.minimum(sorted_d[first_unsat:], share)
    alloc[order] = sorted_alloc
    return alloc


def allocate_bandwidth(capacities: np.ndarray, demands: np.ndarray) -> np.ndarray:
    """Per-tier max-min fair bandwidth for a set of colocated tasks.

    Parameters
    ----------
    capacities:
        ``float64[n_tiers]`` — each tier's attainable bandwidth on this node.
    demands:
        ``float64[n_tasks, n_tiers]`` — each task's desired throughput from
        each tier (derived from its access-weight distribution and demanded
        aggregate bandwidth).

    Returns
    -------
    ndarray
        ``float64[n_tasks, n_tiers]`` achieved throughput, fair per tier.
    """
    demands = np.asarray(demands, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    require(demands.ndim == 2, "demands must be a 2-D (tasks x tiers) matrix")
    require(
        capacities.shape == (demands.shape[1],),
        "capacities length must equal the tier dimension of demands",
    )
    out = np.zeros_like(demands)
    for t in range(demands.shape[1]):
        col = demands[:, t]
        if col.any():
            out[:, t] = fair_share(float(capacities[t]), col)
    return out
