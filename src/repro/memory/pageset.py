"""Vectorised per-task page metadata.

A :class:`PageSet` is the library's unit of memory book-keeping: one per
task (container), covering the task's whole footprint in fixed-size
*chunks*.  All per-chunk state lives in flat NumPy arrays so policy code
(temperature decay, victim selection, placement statistics) is vectorised
rather than per-page Python loops — essential at the paper's Fig. 10 scale
of 2000 concurrent workflows.

Chunk granularity defaults to 4 MiB: coarse enough that a 50 GB footprint
is ~12.8k array entries, fine enough to resolve the hot/cold splits the
policies act on (the paper's own heuristics reason about 512 MB-out-of-40 GB
hot sets, i.e. far coarser than 4 KiB pages).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..util.units import MiB
from ..util.validation import check_positive, require
from .tiers import NUM_TIERS, TierKind

__all__ = ["PageSet", "UNMAPPED", "NO_REGION", "DEFAULT_CHUNK_SIZE"]

#: Sentinel tier index for chunks that are not yet backed by any memory.
UNMAPPED: int = -1

#: Sentinel region id for chunks not belonging to any allocation region.
NO_REGION: int = -1

DEFAULT_CHUNK_SIZE: int = MiB(4)


def _stable_top_k(keys: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest ``keys``, ascending, ties broken by
    position — exactly ``np.argsort(keys, kind="stable")[:k]`` but O(n)
    via ``np.partition`` instead of a full O(n log n) sort.

    The boundary needs care: everything strictly below the k-th order
    statistic is certainly selected (at most k-1 values), then boundary
    ties are admitted in position order, which is precisely the stable
    tie-break of the full sort.
    """
    if k >= keys.size:
        return np.argsort(keys, kind="stable")
    kth = np.partition(keys, k - 1)[k - 1]
    sel = np.flatnonzero(keys < kth)
    ties = np.flatnonzero(keys == kth)
    sel = np.concatenate([sel, ties[: k - sel.size]])
    return sel[np.argsort(keys[sel], kind="stable")]


#: per-chunk array fields mirrored into the arena backend, in layout order
ARRAY_FIELDS = ("tier", "temperature", "access_weight", "pinned", "in_page_cache", "region")


def _array_field(name: str) -> property:
    """A per-chunk array attribute that *writes through* when the pageset
    is adopted by a :class:`~repro.core.arena.NodeArena`.

    Object backend: plain attribute rebinding, exactly as before.  Arena
    backend: the attribute is a view of an arena slice, and assignment
    copies element-wise into that view — so code that replaces whole
    arrays (``ps.temperature = ...`` in tests and benchmarks,
    ``set_access_weights`` each phase) can never silently detach the view
    from the node-level kernels.
    """
    priv = "_" + name

    def getter(self: "PageSet") -> np.ndarray:
        return getattr(self, priv)

    def setter(self: "PageSet", value) -> None:
        if self._arena is not None:
            cur = getattr(self, priv)
            if value is not cur:  # in-place numpy ops hand back the same view
                cur[:] = value
        else:
            setattr(self, priv, value)

    return property(getter, setter, doc=f"``{name}`` per-chunk array (see class docstring)")


class PageSet:
    """Page metadata for one task's memory footprint.

    Attributes
    ----------
    tier:
        ``int8[n]`` — tier index per chunk (:data:`UNMAPPED` before backing).
    temperature:
        ``float32[n]`` — exponentially-decayed access heat, maintained by
        :class:`~repro.core.heatmap.PageHeatmap`.
    access_weight:
        ``float32[n]`` — stationary probability that an access of the
        currently-running phase lands in this chunk.  Set by the task when
        a phase begins; sums to 1 over mapped chunks (0 when idle).
    pinned:
        ``bool[n]`` — pinned chunks may never be demoted or swapped
        (Algorithm 1 pins part of LAT/SHL allocations).
    in_page_cache:
        ``bool[n]`` — a shadow copy exists in the DRAM page cache after
        proactive swapping (§III-C4), making re-access a *minor* fault.
    region:
        ``int16[n]`` — allocation-region id; maps to the
        :class:`~repro.core.flags.MemFlag` the region was requested with.

    Under ``REPRO_CORE=arena`` these arrays are views of one node-level
    :class:`~repro.core.arena.NodeArena`; every method works identically
    on views, and whole-array assignment writes through (see
    :func:`_array_field`).
    """

    __slots__ = (
        "owner",
        "chunk_size",
        "n_chunks",
        "_tier",
        "_temperature",
        "_access_weight",
        "_pinned",
        "_in_page_cache",
        "_region",
        "region_flags",
        "_arena",
        "_arena_start",
    )

    tier = _array_field("tier")
    temperature = _array_field("temperature")
    access_weight = _array_field("access_weight")
    pinned = _array_field("pinned")
    in_page_cache = _array_field("in_page_cache")
    region = _array_field("region")

    def __init__(self, owner: str, total_bytes: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        check_positive(total_bytes, "total_bytes")
        check_positive(chunk_size, "chunk_size")
        self._arena = None
        self._arena_start = 0
        self.owner = owner
        self.chunk_size = int(chunk_size)
        self.n_chunks = int(-(-int(total_bytes) // self.chunk_size))  # ceil div
        n = self.n_chunks
        self.tier = np.full(n, UNMAPPED, dtype=np.int8)
        self.temperature = np.zeros(n, dtype=np.float32)
        self.access_weight = np.zeros(n, dtype=np.float32)
        self.pinned = np.zeros(n, dtype=bool)
        self.in_page_cache = np.zeros(n, dtype=bool)
        self.region = np.full(n, NO_REGION, dtype=np.int16)
        #: region id -> flag metadata (opaque to this module).
        self.region_flags: dict[int, object] = {}

    # ------------------------------------------------------------------ #
    # arena backend binding (see repro.core.arena)
    # ------------------------------------------------------------------ #
    @property
    def arena(self):
        """The adopting :class:`~repro.core.arena.NodeArena`, or ``None``."""
        return self._arena

    @property
    def arena_start(self) -> int:
        """This pageset's segment offset within the adopting arena."""
        return self._arena_start

    def _bind_arena_views(self, arena, start: int) -> None:
        """Rebind every array to a view of ``arena``'s segment at ``start``
        (adoption, and re-pointing after the arena's backing arrays grow)."""
        end = start + self.n_chunks
        self._arena = None  # bypass write-through while rebinding
        for name in ARRAY_FIELDS:
            setattr(self, "_" + name, getattr(arena, name)[start:end])
        self._arena = arena
        self._arena_start = start

    def _unbind_arena_views(self) -> None:
        """Detach from the arena: copy current state out to standalone
        arrays so the pageset stays usable after unregistration."""
        self._arena = None
        for name in ARRAY_FIELDS:
            setattr(self, "_" + name, getattr(self, "_" + name).copy())
        self._arena_start = 0

    # ------------------------------------------------------------------ #
    # size / residency queries
    # ------------------------------------------------------------------ #
    @property
    def total_bytes(self) -> int:
        return self.n_chunks * self.chunk_size

    @property
    def mapped_mask(self) -> np.ndarray:
        return self.tier != UNMAPPED

    @property
    def mapped_bytes(self) -> int:
        return int(np.count_nonzero(self.mapped_mask)) * self.chunk_size

    def chunks_in(self, tier: TierKind) -> np.ndarray:
        """Indices of chunks currently resident in ``tier``."""
        return np.flatnonzero(self.tier == int(tier))

    def bytes_in(self, tier: TierKind) -> int:
        return int(np.count_nonzero(self.tier == int(tier))) * self.chunk_size

    def counts_by_tier(self) -> np.ndarray:
        """``int64[NUM_TIERS]`` chunk counts per tier (unmapped excluded)."""
        mapped = self.tier[self.tier != UNMAPPED]
        return np.bincount(mapped.astype(np.int64), minlength=NUM_TIERS)

    def bytes_by_tier(self) -> np.ndarray:
        return self.counts_by_tier() * self.chunk_size

    # ------------------------------------------------------------------ #
    # placement mutation (accounting is the NodeMemorySystem's job; these
    # methods only flip metadata and are called *through* it)
    # ------------------------------------------------------------------ #
    def assign(self, idx: np.ndarray, tier: TierKind) -> None:
        """Back chunks ``idx`` with ``tier`` (placement or migration)."""
        self.tier[idx] = int(tier)

    def unmap(self, idx: Optional[np.ndarray] = None) -> None:
        """Release chunks (all of them when ``idx`` is None)."""
        if idx is None:
            self.tier[:] = UNMAPPED
            self.in_page_cache[:] = False
            self.pinned[:] = False
        else:
            self.tier[idx] = UNMAPPED
            self.in_page_cache[idx] = False
            self.pinned[idx] = False

    # ------------------------------------------------------------------ #
    # victim / candidate selection
    # ------------------------------------------------------------------ #
    def coldest_in(
        self,
        tier: TierKind,
        max_chunks: int,
        *,
        include_pinned: bool = False,
        exclude_regions: Iterable[int] = (),
    ) -> np.ndarray:
        """Up to ``max_chunks`` chunk indices in ``tier``, coldest first.

        Pinned chunks and excluded regions are filtered out unless asked
        for; this is the primitive both the LRU baseline and Algorithm 2
        build their victim lists from.
        """
        require(max_chunks >= 0, "max_chunks must be >= 0")
        cand = self.chunks_in(tier)
        if cand.size == 0 or max_chunks == 0:
            return cand[:0]
        if not include_pinned:
            cand = cand[~self.pinned[cand]]
        for rid in exclude_regions:
            cand = cand[self.region[cand] != rid]
        if cand.size == 0:
            return cand
        return cand[_stable_top_k(self.temperature[cand], max_chunks)]

    def hottest_in(self, tier: TierKind, max_chunks: int) -> np.ndarray:
        """Up to ``max_chunks`` chunk indices in ``tier``, hottest first."""
        cand = self.chunks_in(tier)
        if cand.size == 0 or max_chunks == 0:
            return cand[:0]
        return cand[_stable_top_k(-self.temperature[cand], max_chunks)]

    # ------------------------------------------------------------------ #
    # access statistics
    # ------------------------------------------------------------------ #
    def set_access_weights(self, weights: np.ndarray) -> None:
        """Install the running phase's per-chunk access distribution."""
        require(weights.shape == (self.n_chunks,), "weights must cover every chunk")
        w = np.asarray(weights, dtype=np.float32)
        require(bool(np.all(w >= 0)), "weights must be non-negative")
        self.access_weight = w

    def clear_access_weights(self) -> None:
        self.access_weight = np.zeros(self.n_chunks, dtype=np.float32)

    def weight_by_tier(self) -> np.ndarray:
        """``float64[NUM_TIERS]`` — fraction of accesses hitting each tier."""
        mask = self.mapped_mask
        if not mask.any():
            return np.zeros(NUM_TIERS, dtype=np.float64)
        out = np.bincount(
            self.tier[mask].astype(np.int64),
            weights=self.access_weight[mask],
            minlength=NUM_TIERS,
        )
        total = out.sum()
        if total > 0:
            out /= total
        return out

    def placement_summary(self) -> dict[int, dict[str, int]]:
        """An ``smaps``-style per-region report: chunk counts per tier plus
        pinned and page-cache-shadowed counts, keyed by region id."""
        out: dict[int, dict[str, int]] = {}
        for rid in np.unique(self.region):
            if rid < 0:
                continue
            idx = np.flatnonzero(self.region == rid)
            entry: dict[str, int] = {
                "chunks": int(idx.size),
                "pinned": int(np.count_nonzero(self.pinned[idx])),
                "shadowed": int(np.count_nonzero(self.in_page_cache[idx])),
            }
            mapped = idx[self.tier[idx] != UNMAPPED]
            tiers, counts = np.unique(self.tier[mapped], return_counts=True)
            for t, c in zip(tiers, counts):
                entry[TierKind(int(t)).name.lower()] = int(c)
            out[int(rid)] = entry
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        counts = self.counts_by_tier()
        return (
            f"<PageSet {self.owner!r} chunks={self.n_chunks} "
            f"dram={counts[0]} pmem={counts[1]} cxl={counts[2]} swap={counts[3]}>"
        )
