"""Per-node tiered-memory accounting.

:class:`NodeMemorySystem` owns the ground truth of *where every chunk
lives* on one server: per-tier used/capacity counters, the registry of
resident :class:`~repro.memory.pageset.PageSet` objects, and the DRAM page
cache that holds shadow copies of proactively-swapped pages (§III-C4).

Policies never mutate placement directly — they call :meth:`place`,
:meth:`migrate` and :meth:`swap_out` so the accounting (and the migration
counters the experiments report) can never drift from the metadata.
:meth:`validate` asserts exactly that invariant and is exercised heavily by
the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from .. import obs
from ..obs import insight as _insight
from ..resilience import invariants as inv
from ..util.errors import AllocationError
from ..util.validation import check_fraction, require
from .pageset import UNMAPPED, PageSet
from .tiers import DRAM, MEMORY_TIERS, NUM_TIERS, SWAP, TIER_NAMES, TierKind, TierSpec

__all__ = ["NodeMemorySystem", "MemoryTrafficStats"]


@dataclass
class MemoryTrafficStats:
    """Cumulative data-movement counters for one node.

    ``migrated_bytes[src, dst]`` counts every chunk the node moved between
    tiers; the figure harnesses read swap-in/out and CXL-migration totals
    from here.
    """

    migrated_bytes: np.ndarray = field(
        default_factory=lambda: np.zeros((NUM_TIERS, NUM_TIERS), dtype=np.int64)
    )
    swapped_out_bytes: int = 0
    swapped_in_bytes: int = 0
    page_cache_inserts: int = 0
    page_cache_drops: int = 0
    compactions: int = 0

    def record_migration(self, src: int, dst: int, nbytes: int) -> None:
        self.migrated_bytes[src, dst] += nbytes
        if dst == int(SWAP):
            self.swapped_out_bytes += nbytes
        if src == int(SWAP):
            self.swapped_in_bytes += nbytes

    @property
    def total_migrated_bytes(self) -> int:
        return int(self.migrated_bytes.sum())


class NodeMemorySystem:
    """Tier accounting and placement engine for one cluster node.

    ``backend`` selects the per-chunk metadata core: ``"object"`` keeps
    each pageset's arrays standalone, ``"arena"`` packs them into one
    node-level :class:`~repro.core.arena.NodeArena` whose vectorised
    kernels the hot paths (heatmap advance, victim selection, evictable
    accounting) then dispatch to, and ``"arena-fast"`` additionally lets
    the movement/replacement paths run whole-node batched kernels
    (statistically equivalent, not byte-identical — see
    ``tests/test_arena_fast.py``).  ``None`` defers to ``$REPRO_CORE``.
    ``object`` and ``arena`` are behaviourally identical (see
    ``tests/test_arena.py``).
    """

    def __init__(
        self,
        specs: dict[TierKind, TierSpec],
        node_id: str = "node0",
        backend: Optional[str] = None,
    ) -> None:
        require(set(specs) == set(TierKind), "specs must cover every TierKind")
        from ..core.arena import (
            BACKEND_ARENA,
            BACKEND_ARENA_FAST,
            NodeArena,
            resolve_backend,
        )

        self.node_id = node_id
        self.specs = dict(specs)
        self.backend = resolve_backend(backend)
        #: True when relaxed batched movement kernels are sanctioned
        self.fast_core: bool = self.backend == BACKEND_ARENA_FAST
        #: the struct-of-arrays core, or None under the object backend
        self.arena: Optional[NodeArena] = (
            NodeArena(node_id)
            if self.backend in (BACKEND_ARENA, BACKEND_ARENA_FAST)
            else None
        )
        self._capacity = np.array(
            [specs[TierKind(t)].capacity for t in range(NUM_TIERS)], dtype=np.int64
        )
        self._used = np.zeros(NUM_TIERS, dtype=np.int64)
        self._page_cache_used: int = 0
        #: tiers whose device/link has failed; they report zero capacity
        #: and refuse placements until brought back online
        self._offline = np.zeros(NUM_TIERS, dtype=bool)
        #: per-tier bandwidth multiplier (1.0 = healthy; a degraded CXL
        #: link or PMem device delivers only a fraction of its rated BW)
        self._bw_scale = np.ones(NUM_TIERS, dtype=np.float64)
        self._pagesets: dict[str, PageSet] = {}
        self.stats = MemoryTrafficStats()
        #: bytes migrated since the executor last sampled (for the
        #: migration-overhead term in the rate model); the executor resets it.
        self.migration_bytes_window: int = 0
        #: sim-clock accessor for the migration ledger; a bare memory
        #: system has no engine, so it reads zero until the node agent
        #: wires in its engine's clock.
        self.now = lambda: 0.0

    # ------------------------------------------------------------------ #
    # capacity queries
    # ------------------------------------------------------------------ #
    def capacity(self, tier: TierKind) -> int:
        if self._offline[int(tier)]:
            return 0
        return int(self._capacity[int(tier)])

    def used(self, tier: TierKind) -> int:
        used = int(self._used[int(tier)])
        if tier == DRAM:
            used += self._page_cache_used
        return used

    def free(self, tier: TierKind) -> int:
        return self.capacity(tier) - self.used(tier)

    def free_excluding_page_cache(self, tier: TierKind) -> int:
        """Free bytes counting page-cache shadows as reclaimable."""
        return int(self._capacity[int(tier)] - self._used[int(tier)])

    def rss(self, tier: TierKind) -> int:
        """Bytes of real (non-page-cache) allocations resident in ``tier``."""
        return int(self._used[int(tier)])

    @property
    def page_cache_used(self) -> int:
        return self._page_cache_used

    def utilization(self, tier: TierKind) -> float:
        cap = self.capacity(tier)
        return self.used(tier) / cap if cap else 0.0

    # ------------------------------------------------------------------ #
    # pageset registry
    # ------------------------------------------------------------------ #
    def register(self, ps: PageSet) -> None:
        require(ps.owner not in self._pagesets, f"pageset {ps.owner!r} already registered")
        require(not ps.mapped_mask.any(), "pageset must be unmapped at registration")
        if self.arena is not None:
            self.arena.adopt(ps)
        self._pagesets[ps.owner] = ps

    def unregister(self, ps: PageSet) -> None:
        """Remove a pageset, releasing all its backing memory."""
        require(ps.owner in self._pagesets, f"pageset {ps.owner!r} not registered")
        counts = ps.counts_by_tier()
        self._used -= counts * ps.chunk_size
        shadows = int(np.count_nonzero(ps.in_page_cache))
        self._page_cache_used -= shadows * ps.chunk_size
        ps.unmap()
        if self.arena is not None:
            # copy the (now unmapped) state back out and zero the segment
            self.arena.release(ps)
        del self._pagesets[ps.owner]

    def pagesets(self) -> Iterable[PageSet]:
        return self._pagesets.values()

    def get_pageset(self, owner: str) -> Optional[PageSet]:
        return self._pagesets.get(owner)

    # ------------------------------------------------------------------ #
    # placement operations
    # ------------------------------------------------------------------ #
    def place(self, ps: PageSet, idx: np.ndarray, tier: TierKind) -> int:
        """Back unmapped chunks ``idx`` with ``tier``.  Returns bytes placed.

        DRAM placement automatically reclaims page-cache shadows when the
        cache is squatting on the needed space (the kernel drops clean page
        cache before failing an allocation).
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return 0
        require(ps.owner in self._pagesets, f"pageset {ps.owner!r} not registered")
        require(bool(np.all(ps.tier[idx] == UNMAPPED)), "place() requires unmapped chunks")
        nbytes = int(idx.size) * ps.chunk_size
        t = int(tier)
        if self._offline[t]:
            raise AllocationError(f"node {self.node_id}: tier {tier.name} is offline")
        if self._capacity[t] - self._used[t] - (self._page_cache_used if tier == DRAM else 0) < nbytes:
            if tier == DRAM and self._capacity[t] - self._used[t] >= nbytes:
                self._reclaim_page_cache(nbytes - (self._capacity[t] - self._used[t] - self._page_cache_used))
            else:
                raise AllocationError(
                    f"node {self.node_id}: tier {tier.name} cannot hold {nbytes} more bytes "
                    f"(used {self.used(tier)} of {self.capacity(tier)})"
                )
        checker = inv.active()
        before = int(self._used.sum()) if checker.enabled else 0
        ps.assign(idx, tier)
        self._used[t] += nbytes
        if checker.enabled:
            checker.conservation(
                self.node_id, before, int(self._used.sum()),
                op=f"place->{TIER_NAMES[tier]}", delta=nbytes,
            )
        return nbytes

    def migrate(self, ps: PageSet, idx: np.ndarray, dst: TierKind) -> int:
        """Move mapped chunks ``idx`` to ``dst``.  Returns bytes moved.

        No-ops (chunks already in ``dst``) are filtered out.  Shadow copies
        are invalidated when a chunk leaves swap (the authoritative copy is
        byte-addressable again).
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return 0
        require(ps.owner in self._pagesets, f"pageset {ps.owner!r} not registered")
        src_tiers = ps.tier[idx]
        require(bool(np.all(src_tiers != UNMAPPED)), "migrate() requires mapped chunks")
        moving = idx[src_tiers != int(dst)]
        if moving.size == 0:
            return 0
        nbytes = int(moving.size) * ps.chunk_size
        d = int(dst)
        if self._offline[d]:
            raise AllocationError(f"node {self.node_id}: tier {dst.name} is offline")
        headroom = self._capacity[d] - self._used[d] - (self._page_cache_used if dst == DRAM else 0)
        if headroom < nbytes:
            if dst == DRAM and self._capacity[d] - self._used[d] >= nbytes:
                self._reclaim_page_cache(nbytes - headroom)
            else:
                raise AllocationError(
                    f"node {self.node_id}: migrate to {dst.name} needs {nbytes} bytes, "
                    f"only {self.free(dst)} free"
                )
        checker = inv.active()
        before = int(self._used.sum()) if checker.enabled else 0
        # vectorised per-source accounting
        move_src = ps.tier[moving].astype(np.int64)
        counts = np.bincount(move_src, minlength=NUM_TIERS)
        self._used -= counts * ps.chunk_size
        self._used[d] += nbytes
        tel_on = obs.enabled()  # hoisted: label construction isn't free
        ins = _insight.active()
        for s in np.flatnonzero(counts):
            moved_bytes = int(counts[s]) * ps.chunk_size
            self.stats.record_migration(int(s), d, moved_bytes)
            if tel_on:
                obs.counter(
                    "mem.migrated_bytes",
                    moved_bytes,
                    src=TIER_NAMES[TierKind(int(s))],
                    dst=TIER_NAMES[dst],
                )
            if ins.enabled:
                ins.migration(
                    self.now(), self.node_id, ps.owner,
                    int(s), d, int(counts[s]), moved_bytes,
                )
        self.migration_bytes_window += nbytes
        if dst == DRAM:
            # the authoritative copy is DRAM again; shadows are redundant
            self._drop_shadows(ps, moving)
        ps.assign(moving, dst)
        if checker.enabled:
            # migrations move bytes between tiers; they never mint them
            checker.conservation(
                self.node_id, before, int(self._used.sum()),
                op=f"migrate->{TIER_NAMES[dst]}",
            )
        return nbytes

    def swap_out(self, ps: PageSet, idx: np.ndarray) -> int:
        """Demote chunks to disk-based swap (always has room by policy;
        raises if even swap is exhausted, the paper's failure mode)."""
        return self.migrate(ps, idx, SWAP)

    def migrate_positions(self, positions: np.ndarray, dst: TierKind) -> int:
        """Batched form of :meth:`migrate` over raw *arena* positions
        spanning any number of tasks (the arena-fast movement path).

        The accounting contract is identical — per-source migration
        counters, obs emission, shadow drops on arrival in DRAM,
        page-cache reclaim for a short DRAM allocation, conservation
        checks — but the per-chunk bookkeeping is settled by one
        :meth:`~repro.core.arena.NodeArena.migrate_batch` commit instead
        of a loop per pageset chunk range.  Returns bytes moved.
        """
        arena = self.arena
        require(arena is not None, "migrate_positions() requires an arena backend")
        positions = np.asarray(positions, dtype=np.intp)
        if positions.size == 0:
            return 0
        src = arena.tier[positions]
        require(bool(np.all(src != UNMAPPED)), "migrate_positions() requires mapped chunks")
        moving = positions[src != int(dst)]
        if moving.size == 0:
            return 0
        d = int(dst)
        if self._offline[d]:
            raise AllocationError(f"node {self.node_id}: tier {dst.name} is offline")
        nbytes = int(arena.chunk_cost(moving).sum())
        headroom = self._capacity[d] - self._used[d] - (self._page_cache_used if dst == DRAM else 0)
        if headroom < nbytes:
            if dst == DRAM and self._capacity[d] - self._used[d] >= nbytes:
                self._reclaim_page_cache(nbytes - headroom)
            else:
                raise AllocationError(
                    f"node {self.node_id}: migrate to {dst.name} needs {nbytes} bytes, "
                    f"only {self.free(dst)} free"
                )
        checker = inv.active()
        before = int(self._used.sum()) if checker.enabled else 0
        bytes_per_src, sh_chunks, sh_bytes = arena.migrate_batch(moving, dst)
        self._used -= bytes_per_src
        self._used[d] += nbytes
        tel_on = obs.enabled()
        ins = _insight.active()
        for s in np.flatnonzero(bytes_per_src):
            moved_bytes = int(bytes_per_src[s])
            self.stats.record_migration(int(s), d, moved_bytes)
            if tel_on:
                obs.counter(
                    "mem.migrated_bytes",
                    moved_bytes,
                    src=TIER_NAMES[TierKind(int(s))],
                    dst=TIER_NAMES[dst],
                )
            if ins.enabled:
                # positions span tasks: the batched path attributes to "*"
                ins.migration(
                    self.now(), self.node_id, "*",
                    int(s), d, int(np.count_nonzero(src == s)), moved_bytes,
                )
        self.migration_bytes_window += nbytes
        if sh_chunks:
            self._page_cache_used -= sh_bytes
            self.stats.page_cache_drops += sh_chunks
            if ins.enabled:
                ins.ledger_event(
                    self.now(), self.node_id, "shadow-drop", "*",
                    int(DRAM), _insight.ANY_TIER, int(sh_chunks), int(sh_bytes),
                )
        if checker.enabled:
            checker.conservation(
                self.node_id, before, int(self._used.sum()),
                op=f"migrate->{TIER_NAMES[dst]}",
            )
        return nbytes

    # ------------------------------------------------------------------ #
    # page cache (shadow copies of proactively-swapped pages)
    # ------------------------------------------------------------------ #
    def add_page_cache_shadow(self, ps: PageSet, idx: np.ndarray) -> int:
        """Keep DRAM shadow copies for chunks resident in slower tiers,
        space permitting (§III-C4: proactively-swapped pages "are cached in
        the page cache if there is enough memory available").

        Returns the number of chunks actually shadowed — the cache never
        displaces real allocations, it only uses free DRAM.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return 0
        tiers = ps.tier[idx]
        require(
            bool(np.all((tiers != UNMAPPED) & (tiers != int(DRAM)))),
            "shadows only cover mapped, non-DRAM chunks",
        )
        fresh = idx[~ps.in_page_cache[idx]]
        room_chunks = max(0, self.free(DRAM)) // ps.chunk_size
        take = fresh[: int(room_chunks)]
        if take.size == 0:
            return 0
        ps.in_page_cache[take] = True
        self._page_cache_used += int(take.size) * ps.chunk_size
        self.stats.page_cache_inserts += int(take.size)
        ins = _insight.active()
        if ins.enabled:
            ins.ledger_event(
                self.now(), self.node_id, "shadow", ps.owner,
                _insight.ANY_TIER, int(DRAM),
                int(take.size), int(take.size) * ps.chunk_size,
            )
        return int(take.size)

    def add_page_cache_shadows_batch(self, positions: np.ndarray) -> int:
        """Batched form of :meth:`add_page_cache_shadow` over raw arena
        positions spanning any number of tasks (the arena-fast proactive
        path).  Returns the number of chunks actually shadowed."""
        arena = self.arena
        require(arena is not None, "add_page_cache_shadows_batch() requires an arena backend")
        positions = np.asarray(positions, dtype=np.intp)
        if positions.size == 0:
            return 0
        tiers = arena.tier[positions]
        require(
            bool(np.all((tiers != UNMAPPED) & (tiers != int(DRAM)))),
            "shadows only cover mapped, non-DRAM chunks",
        )
        take, nbytes = arena.shadow_batch(positions, max(0, self.free(DRAM)))
        if take.size == 0:
            return 0
        self._page_cache_used += nbytes
        self.stats.page_cache_inserts += int(take.size)
        ins = _insight.active()
        if ins.enabled:
            ins.ledger_event(
                self.now(), self.node_id, "shadow", "*",
                _insight.ANY_TIER, int(DRAM), int(take.size), int(nbytes),
            )
        return int(take.size)

    def _drop_shadows(self, ps: PageSet, idx: np.ndarray) -> None:
        shadowed = idx[ps.in_page_cache[idx]]
        if shadowed.size:
            ps.in_page_cache[shadowed] = False
            self._page_cache_used -= int(shadowed.size) * ps.chunk_size
            self.stats.page_cache_drops += int(shadowed.size)
            ins = _insight.active()
            if ins.enabled:
                ins.ledger_event(
                    self.now(), self.node_id, "shadow-drop", ps.owner,
                    int(DRAM), _insight.ANY_TIER,
                    int(shadowed.size), int(shadowed.size) * ps.chunk_size,
                )

    def _reclaim_page_cache(self, nbytes_needed: int) -> None:
        """Drop coldest shadows until ``nbytes_needed`` is reclaimed."""
        if nbytes_needed <= 0:
            return
        reclaimed = 0
        dropped_chunks = 0
        with _insight.cause("reclaim"):
            for ps in list(self._pagesets.values()):
                if reclaimed >= nbytes_needed:
                    break
                shadowed = np.flatnonzero(ps.in_page_cache)
                if shadowed.size == 0:
                    continue
                order = np.argsort(ps.temperature[shadowed], kind="stable")
                need_chunks = -(-(nbytes_needed - reclaimed) // ps.chunk_size)
                drop = shadowed[order[:need_chunks]]
                self._drop_shadows(ps, drop)
                reclaimed += int(drop.size) * ps.chunk_size
                dropped_chunks += int(drop.size)
        ins = _insight.active()
        if ins.enabled and reclaimed:
            ins.ledger_event(
                self.now(), self.node_id, "reclaim", "*",
                int(DRAM), _insight.ANY_TIER, dropped_chunks, reclaimed,
            )

    def compact(self) -> None:
        """Record a compaction pass (§III-C4).

        Placement here is set-based rather than address-based, so
        compaction has no functional effect beyond its counter — the hook
        exists so the movement policy matches the paper's description and
        the overhead model can charge for it.
        """
        self.stats.compactions += 1

    # ------------------------------------------------------------------ #
    # tier faults (device failure / link degradation)
    # ------------------------------------------------------------------ #
    def tier_online(self, tier: TierKind) -> bool:
        return not bool(self._offline[int(tier)])

    def offline_tier(self, tier: TierKind) -> tuple[int, dict[str, np.ndarray]]:
        """Take ``tier`` offline, evacuating its pages to surviving tiers.

        Models a PMem device failure or a severed CXL link: the tier stops
        accepting placements and reports zero capacity, and every resident
        chunk is migrated into whatever byte-addressable headroom survives,
        spilling to swap as the last resort (graceful degradation — the
        one sanctioned exception to "pinned chunks never migrate").

        Returns ``(evacuated_bytes, stranded)`` where ``stranded`` maps
        pageset owners to the chunk indices that fit nowhere; their tasks
        must be killed by the caller.
        """
        require(tier != SWAP, "swap cannot be taken offline")
        t = int(tier)
        if self._offline[t]:
            return 0, {}
        checker = inv.active()
        before = int(self._used.sum()) if checker.enabled else 0
        self._offline[t] = True
        if tier == DRAM:
            # shadows live in DRAM; the cache dies with the device
            for ps in self._pagesets.values():
                self._drop_shadows(ps, np.flatnonzero(ps.in_page_cache))
        survivors = [
            d for d in (*MEMORY_TIERS, SWAP)
            if d != tier and self.capacity(d) > 0
        ]
        evacuated = 0
        stranded: dict[str, np.ndarray] = {}
        with _insight.cause("evacuate"):
            for ps in list(self._pagesets.values()):
                victims = np.flatnonzero(ps.tier == t)
                for dst in survivors:
                    if victims.size == 0:
                        break
                    headroom = (
                        self.free_excluding_page_cache(dst) if dst == DRAM else self.free(dst)
                    )
                    room = max(0, headroom) // ps.chunk_size
                    take = victims[: int(room)]
                    if take.size == 0:
                        continue
                    evacuated += self.migrate(ps, take, dst)
                    victims = victims[int(room):]
                if victims.size:
                    stranded[ps.owner] = victims
        if obs.enabled():
            obs.counter("mem.evacuated_bytes", evacuated, tier=TIER_NAMES[tier])
        ins = _insight.active()
        if ins.enabled:
            ins.ledger_event(
                self.now(), self.node_id, "evacuate", "*",
                t, _insight.ANY_TIER, 0, evacuated,
            )
        if checker.enabled:
            # evacuation shuffles bytes to survivors; stranded chunks stay
            # accounted on the dead tier until their tasks are killed
            checker.conservation(
                self.node_id, before, int(self._used.sum()),
                op=f"offline->{TIER_NAMES[tier]}",
            )
            checker.memory(self)
        return evacuated, stranded

    def online_tier(self, tier: TierKind) -> None:
        """Bring a failed tier back (empty — pages are not moved back)."""
        self._offline[int(tier)] = False

    def set_tier_degraded(self, tier: TierKind, scale: float) -> None:
        """Throttle ``tier``'s bandwidth to ``scale`` of its rated value."""
        check_fraction(scale, "scale")
        self._bw_scale[int(tier)] = scale

    def clear_tier_degradation(self, tier: TierKind) -> None:
        self._bw_scale[int(tier)] = 1.0

    def tier_health(self) -> np.ndarray:
        """Per-tier bandwidth multiplier: 0 when offline, else ``_bw_scale``."""
        return np.where(self._offline, 0.0, self._bw_scale)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def meminfo(self) -> dict[str, int]:
        """A ``/proc/meminfo``-style snapshot (bytes) for dashboards/tests."""
        info: dict[str, int] = {}
        for t in TierKind:
            name = t.name.lower()
            info[f"{name}_total"] = self.capacity(t)
            info[f"{name}_used"] = self.used(t)
            info[f"{name}_free"] = self.free(t)
        info["page_cache"] = self._page_cache_used
        info["dram_rss"] = self.rss(DRAM)
        info["pagesets"] = len(self._pagesets)
        return info

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Assert accounting matches the union of registered pagesets.

        Under the arena backend the per-tier expectation comes from one
        whole-arena reduction instead of a per-pageset sum, and every
        pageset's arrays are additionally checked to still be live views
        of the arena (a detached view would let kernels and per-task
        paths silently diverge).
        """
        if self.arena is not None:
            arena = self.arena
            for ps in self._pagesets.values():
                require(
                    ps.arena is arena and ps.temperature.base is arena.temperature,
                    f"{ps.owner}: pageset arrays detached from the node arena",
                )
            hi = arena.hi
            bad = arena.in_page_cache[:hi] & (
                (arena.tier[:hi] == int(DRAM)) | (arena.tier[:hi] == UNMAPPED)
            )
            if bad.any():
                slot = int(arena.task_id[int(np.flatnonzero(bad)[0])])
                owner = arena._slots[slot].owner if slot >= 0 else "<free slot>"
                require(False, f"{owner}: page-cache shadow for DRAM/unmapped chunk")
            expect = arena.used_bytes_by_tier()
            shadow_bytes = arena.shadow_bytes()
        else:
            expect = np.zeros(NUM_TIERS, dtype=np.int64)
            shadow_bytes = 0
            for ps in self._pagesets.values():
                expect += ps.counts_by_tier() * ps.chunk_size
                shadow_bytes += int(np.count_nonzero(ps.in_page_cache)) * ps.chunk_size
                bad = ps.in_page_cache & ((ps.tier == int(DRAM)) | (ps.tier == UNMAPPED))
                require(not bad.any(), f"{ps.owner}: page-cache shadow for DRAM/unmapped chunk")
        require(bool(np.all(expect == self._used)), "per-tier used bytes drifted from pagesets")
        require(shadow_bytes == self._page_cache_used, "page-cache accounting drifted")
        total_dram = self._used[int(DRAM)] + self._page_cache_used
        require(
            bool(np.all(self._used <= self._capacity)) and total_dram <= self._capacity[int(DRAM)],
            "tier over capacity",
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        parts = ", ".join(
            f"{TierKind(t).name.lower()}={self._used[t]}/{self._capacity[t]}"
            for t in range(NUM_TIERS)
        )
        return f"<NodeMemorySystem {self.node_id} {parts} pc={self._page_cache_used}>"
