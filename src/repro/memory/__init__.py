"""Tiered-memory substrate: tier specs, page metadata, node accounting,
bandwidth contention, and cluster topology."""

from .contention import allocate_bandwidth, fair_share
from .emulation import NumaNodeDesc, emulated_cxl_specs, latency_probe
from .pageset import DEFAULT_CHUNK_SIZE, UNMAPPED, PageSet
from .system import MemoryTrafficStats, NodeMemorySystem
from .tiers import (
    CXL,
    DRAM,
    MEMORY_TIERS,
    NUM_TIERS,
    PMEM,
    SWAP,
    TIER_NAMES,
    TierKind,
    TierSpec,
    constrained_tier_specs,
    default_tier_specs,
    ideal_tier_specs,
)
from .topology import MemoryTopology, SharedCXLPool

__all__ = [
    "allocate_bandwidth",
    "fair_share",
    "NumaNodeDesc",
    "emulated_cxl_specs",
    "latency_probe",
    "DEFAULT_CHUNK_SIZE",
    "UNMAPPED",
    "PageSet",
    "MemoryTrafficStats",
    "NodeMemorySystem",
    "CXL",
    "DRAM",
    "MEMORY_TIERS",
    "NUM_TIERS",
    "PMEM",
    "SWAP",
    "TIER_NAMES",
    "TierKind",
    "TierSpec",
    "constrained_tier_specs",
    "default_tier_specs",
    "ideal_tier_specs",
    "MemoryTopology",
    "SharedCXLPool",
]
