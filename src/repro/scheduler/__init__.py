"""SLURM-like batch scheduling substrate."""

from .job import Job, JobState
from .slurm import SlurmScheduler

__all__ = ["Job", "JobState", "SlurmScheduler"]
