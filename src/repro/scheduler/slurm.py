"""SLURM-like batch scheduler with colocation and backfill.

The scheduler owns the job queue and the placement decision (which node a
container lands on); memory placement *within* a node is the memory
policy's job.  Placement is least-loaded-first over nodes with enough free
cores, FIFO with backfill: if the queue head does not fit anywhere, later
jobs that do fit may start (§II-B's node-level colocation of deconstructed
workflows is the normal case here — many containers share each node).

Container preparation (image pull / CXL read / cache hit) happens between
resource allocation and task start, so large launches expose the paper's
cold-start bottleneck faithfully.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional, Sequence

from .. import obs
from ..containers.runtime import ContainerRuntime
from ..core.flags import MemFlag
from ..memory.tiers import MEMORY_TIERS
from ..metrics.collector import MetricsRegistry
from ..resilience import invariants as inv
from ..runtime.execution import TaskExecution, TaskState
from ..runtime.node_agent import NodeAgent
from ..sim.engine import SimulationEngine
from ..util.errors import SchedulingError
from ..util.validation import require
from ..workflows.task import TaskSpec
from .job import Job, JobState

__all__ = ["SlurmScheduler"]


class SlurmScheduler:
    """Queue, placement and lifecycle management for batch jobs."""

    #: placement strategies: most free cores, or most free DRAM (the
    #: memory-aware scheduling modern WMSs lack, §II-A)
    PLACEMENTS = ("least-loaded", "memory-aware")

    def __init__(
        self,
        engine: SimulationEngine,
        agents: Sequence[NodeAgent],
        containers: ContainerRuntime,
        metrics: MetricsRegistry,
        *,
        backfill: bool = True,
        placement: str = "least-loaded",
        max_retries: int = 2,
        retry_backoff: float = 4.0,
    ) -> None:
        require(len(agents) > 0, "scheduler needs at least one node")
        require(placement in self.PLACEMENTS, f"placement must be one of {self.PLACEMENTS}")
        require(max_retries >= 0, "max_retries must be >= 0")
        require(retry_backoff >= 0, "retry_backoff must be >= 0")
        self.engine = engine
        self.agents = list(agents)
        self.containers = containers
        self.metrics = metrics
        self.backfill = backfill
        self.placement = placement
        #: requeue budget per job for fault-induced failures (node crash,
        #: stranded evacuation, exhausted pull retries); OOM kills are
        #: terminal — rerunning an out-of-memory workflow cannot succeed
        self.max_retries = int(max_retries)
        #: base delay of the exponential requeue backoff (seconds)
        self.retry_backoff = float(retry_backoff)
        self.queue: deque[Job] = deque()
        self.jobs: dict[int, Job] = {}
        self._next_job_id = 1
        self._reserved_cores = [0] * len(agents)
        self._pumping = False
        #: nodes administratively removed from placement (``scontrol drain``)
        self.drained: set[int] = set()
        #: total fault-induced requeues across the run
        self.requeues = 0
        #: optional admission policy consulted by :meth:`try_submit`
        #: (service mode attaches one; batch submission never rejects)
        self.admission: "Optional[object]" = None
        #: arrivals turned away by the admission policy
        self.rejected = 0
        for agent in self.agents:
            agent.on_capacity_freed.append(self._pump)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: TaskSpec,
        *,
        flags: Optional[MemFlag] = None,
        priority: int = 0,
        exclusive: bool = False,
        on_done: Optional[Callable[[Job], None]] = None,
    ) -> Job:
        """Enqueue one job; placement is attempted immediately.

        Higher ``priority`` jobs are considered first; within a priority
        level the queue stays FIFO.  ``exclusive`` selects the traditional
        bare-metal model: a whole node, no container, no colocation.
        """
        job = Job(
            job_id=self._next_job_id,
            spec=spec,
            flags=flags,
            priority=priority,
            exclusive=exclusive,
            submitted_at=self.engine.now,
            on_done=on_done,
        )
        self._next_job_id += 1
        self.jobs[job.job_id] = job
        tm = self.metrics.task(spec.name, spec.wclass.name)
        tm.submitted_at = self.engine.now
        self.queue.append(job)
        if priority:
            self.queue = deque(
                sorted(self.queue, key=lambda j: (-j.priority, j.job_id))
            )
        self._pump()
        return job

    def try_submit(
        self,
        spec: TaskSpec,
        *,
        flags: Optional[MemFlag] = None,
        priority: int = 0,
        on_done: Optional[Callable[[Job], None]] = None,
    ) -> Optional[Job]:
        """Admission-gated submission: consult the attached policy and
        either enqueue the job or turn it away (returns ``None``).

        Rejection is deliberately cheap — no :class:`Job`, no metrics
        entry — so an open-loop stream pounding a saturated cluster costs
        one policy check per arrival, nothing more.
        """
        if self.admission is not None:
            from ..service.admission import ClusterView

            if not self.admission.admit(spec, ClusterView(self, self.agents)):
                self.rejected += 1
                obs.counter("sched.rejected")
                return None
        return self.submit(spec, flags=flags, priority=priority, on_done=on_done)

    def submit_batch(
        self,
        specs: Iterable[TaskSpec],
        *,
        flags: Optional[MemFlag] = None,
        exclusive: bool = False,
    ) -> list[Job]:
        return [self.submit(spec, flags=flags, exclusive=exclusive) for spec in specs]

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def _free_cores(self, i: int) -> int:
        return self.agents[i].cores_free - self._reserved_cores[i]

    def _available(self, i: int) -> bool:
        return i not in self.drained and not self.agents[i].down

    def _pick_node(self, spec: TaskSpec) -> Optional[int]:
        """Choose a node with enough cores by the configured strategy:
        ``least-loaded`` maximises free cores; ``memory-aware`` maximises
        free byte-addressable memory (DRAM + PMem + CXL)."""
        best, best_score = None, None
        for i in range(len(self.agents)):
            if not self._available(i) or self._free_cores(i) < spec.cores:
                continue
            if self.placement == "memory-aware":
                mem = self.agents[i].memory
                score = sum(mem.free(t) for t in MEMORY_TIERS)
            else:
                score = self._free_cores(i)
            if best_score is None or score > best_score:
                best, best_score = i, score
        return best

    def _pump(self) -> None:
        """Dispatch every queued job that fits somewhere (FIFO + backfill)."""
        if self._pumping:
            return
        self._pumping = True
        try:
            scanned: deque[Job] = deque()
            while self.queue:
                job = self.queue.popleft()
                node = (
                    self._pick_exclusive_node(job.spec)
                    if job.exclusive
                    else self._pick_node(job.spec)
                )
                if node is None:
                    scanned.append(job)
                    if not self.backfill:
                        break
                    continue
                self._dispatch(job, node)
            scanned.extend(self.queue)
            self.queue = scanned
        finally:
            self._pumping = False

    def _pick_exclusive_node(self, spec: TaskSpec) -> Optional[int]:
        """A bare-metal job needs a completely idle node."""
        for i, agent in enumerate(self.agents):
            if not self._available(i):
                continue
            if agent.cores_used == 0 and self._reserved_cores[i] == 0:
                if agent.cores >= spec.cores:
                    return i
        return None

    def _dispatch(self, job: Job, node_index: int) -> None:
        obs.counter("sched.dispatches")
        job.state = JobState.STARTING
        job.node_index = node_index
        job._dispatch_seq += 1
        seq = job._dispatch_seq
        job._reserved = self.agents[node_index].cores if job.exclusive else job.spec.cores
        self._reserved_cores[node_index] += job._reserved
        tm = self.metrics.get(job.spec.name)
        tm.scheduled_at = self.engine.now
        if job.exclusive:
            # bare metal: no container image, no instantiation delay
            self._container_ready(job, seq)
        else:
            self.containers.prepare(
                node_index,
                job.spec.image,
                lambda: self._container_ready(job, seq),
                on_failed=lambda: self._pull_failed(job, seq),
            )

    def _stale(self, job: Job, seq: int) -> bool:
        """A callback from a dispatch the scheduler has since abandoned."""
        return job.state is not JobState.STARTING or seq != job._dispatch_seq

    def _container_ready(self, job: Job, seq: int) -> None:
        if self._stale(job, seq):
            return
        assert job.node_index is not None
        agent = self.agents[job.node_index]
        if agent.down:
            # the node died while the image was in flight
            self._release_reservation(job)
            self._requeue_or_fail(job, f"node {agent.memory.node_id} down")
            return
        tm = self.metrics.get(job.spec.name)
        tm.container_ready_at = self.engine.now
        self._release_reservation(job)
        job.state = JobState.RUNNING
        try:
            agent.start_task(
                job.spec, flags=job.flags, on_finish=lambda te: self._task_done(job, te)
            )
        except SchedulingError:
            # the reservation guaranteed cores; anything else is a bug
            raise
        if job.exclusive:
            # hold the node's remaining cores for the job's lifetime
            job._exclusive_hold = agent.cores_free
            agent.cores_used += job._exclusive_hold

    def _pull_failed(self, job: Job, seq: int) -> None:
        """The container runtime gave up on the image pull."""
        if self._stale(job, seq):
            return
        self._release_reservation(job)
        self._requeue_or_fail(job, f"image pull failed for {job.spec.image!r}")

    def _release_reservation(self, job: Job) -> None:
        if job._reserved and job.node_index is not None:
            self._reserved_cores[job.node_index] -= job._reserved
            job._reserved = 0

    def _task_done(self, job: Job, te: TaskExecution) -> None:
        if job._exclusive_hold:
            self.agents[job.node_index].cores_used -= job._exclusive_hold
            job._exclusive_hold = 0
        if te.state is TaskState.FAILED and te.interrupted:
            # fault-induced death (node crash / stranded evacuation):
            # eligible for requeue, unlike OOM or allocation failures
            self._requeue_or_fail(job, te.metrics.failure_reason)
            return
        job.state = JobState.FAILED if te.state is TaskState.FAILED else JobState.DONE
        job.notify_done()
        self._pump()
        checker = inv.active()
        if checker.enabled:
            checker.scheduler(self)

    # ------------------------------------------------------------------ #
    # fault recovery (requeue / drain)
    # ------------------------------------------------------------------ #
    def _requeue_or_fail(self, job: Job, reason: str) -> None:
        """Requeue a fault-killed job with exponential backoff, or mark it
        failed once its retry budget is spent."""
        tm = self.metrics.get(job.spec.name)
        if job.retries >= self.max_retries:
            self.metrics.faults.retries_exhausted += 1
            job.state = JobState.FAILED
            job.node_index = None
            tm.failed = True
            tm.failure_reason = f"{reason} (retries exhausted)"
            if tm.finished_at is None:
                tm.finished_at = self.engine.now
            job.notify_done()
            self._pump()
            return
        job.retries += 1
        self.requeues += 1
        obs.counter("sched.requeues")
        obs.event(self.engine.now, "sched", job.name, action="requeue", reason=reason)
        self.metrics.faults.job_requeues += 1
        tm.retries += 1
        tm.failed = False
        tm.failure_reason = ""
        tm.finished_at = None
        job.state = JobState.PENDING
        job.node_index = None
        delay = self.retry_backoff * (2 ** (job.retries - 1))
        self.engine.schedule(
            delay, lambda: self._enqueue_retry(job), f"requeue.{job.name}"
        )

    def _enqueue_retry(self, job: Job) -> None:
        if job.state is not JobState.PENDING:
            return
        self.queue.append(job)
        if job.priority:
            self.queue = deque(
                sorted(self.queue, key=lambda j: (-j.priority, j.job_id))
            )
        self._pump()

    def drain(self, node_index: int) -> None:
        """Remove a node from placement without touching running work."""
        require(0 <= node_index < len(self.agents), "node_index out of range")
        self.drained.add(node_index)

    def undrain(self, node_index: int) -> None:
        self.drained.discard(node_index)
        self._pump()

    def node_failed(self, node_index: int, reason: str = "node crash") -> None:
        """A node died: drain it, kill its tasks, requeue in-flight jobs.

        Running tasks die through :meth:`NodeAgent.crash` (their jobs come
        back via the normal ``_task_done`` requeue path); jobs still in
        container preparation are requeued here directly.
        """
        require(0 <= node_index < len(self.agents), "node_index out of range")
        self.drain(node_index)
        self.agents[node_index].crash(reason)
        for job in list(self.jobs.values()):
            if job.state is JobState.STARTING and job.node_index == node_index:
                job._dispatch_seq += 1  # invalidate the in-flight callback
                self._release_reservation(job)
                self._requeue_or_fail(job, reason)
        checker = inv.active()
        if checker.enabled:
            # the crash path must leave scheduler accounting whole: no job
            # lost between queue, requeue-pending, and terminal states
            checker.scheduler(self)

    def node_restored(self, node_index: int) -> None:
        """Bring a crashed node back and return it to the placement pool."""
        self.agents[node_index].restore()
        self.undrain(node_index)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        return len(self.queue)

    @property
    def busy_cores(self) -> int:
        """Cores currently executing tasks across the cluster."""
        return sum(agent.cores_used for agent in self.agents)

    @property
    def total_cores(self) -> int:
        return sum(agent.cores for agent in self.agents)

    @property
    def running_count(self) -> int:
        """Jobs currently in the RUNNING state."""
        return sum(1 for j in self.jobs.values() if j.state is JobState.RUNNING)

    def utilization(self) -> float:
        """Instantaneous busy-core fraction (a service-window sample)."""
        total = self.total_cores
        return self.busy_cores / total if total else 0.0

    def queue_snapshot(self) -> list[dict[str, object]]:
        """``squeue``-style view of pending jobs, in dispatch order."""
        now = self.engine.now
        return [
            {
                "job_id": j.job_id,
                "name": j.name,
                "cores": j.spec.cores,
                "priority": j.priority,
                "exclusive": j.exclusive,
                "waiting": now - j.submitted_at,
            }
            for j in self.queue
        ]

    @property
    def all_done(self) -> bool:
        return not self.queue and all(j.finished for j in self.jobs.values())

    def run_to_completion(self, max_time: float = 1e9) -> None:
        """Drive the engine until every submitted job finishes."""
        with obs.span("sched.run_to_completion", jobs=len(self.jobs)):
            while not self.all_done:
                if not self.engine.step():
                    raise SchedulingError(
                        f"deadlock: {self.pending_count} jobs queued, no events pending"
                    )
                if self.engine.now > max_time:
                    raise SchedulingError(f"jobs still unfinished at t={self.engine.now}")
