"""SLURM-like batch scheduler with colocation and backfill.

The scheduler owns the job queue and the placement decision (which node a
container lands on); memory placement *within* a node is the memory
policy's job.  Placement is least-loaded-first over nodes with enough free
cores, FIFO with backfill: if the queue head does not fit anywhere, later
jobs that do fit may start (§II-B's node-level colocation of deconstructed
workflows is the normal case here — many containers share each node).

Container preparation (image pull / CXL read / cache hit) happens between
resource allocation and task start, so large launches expose the paper's
cold-start bottleneck faithfully.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional, Sequence

from ..containers.runtime import ContainerRuntime
from ..core.flags import MemFlag
from ..memory.tiers import MEMORY_TIERS
from ..metrics.collector import MetricsRegistry
from ..runtime.execution import TaskExecution, TaskState
from ..runtime.node_agent import NodeAgent
from ..sim.engine import SimulationEngine
from ..util.errors import SchedulingError
from ..util.validation import require
from ..workflows.task import TaskSpec
from .job import Job, JobState

__all__ = ["SlurmScheduler"]


class SlurmScheduler:
    """Queue, placement and lifecycle management for batch jobs."""

    #: placement strategies: most free cores, or most free DRAM (the
    #: memory-aware scheduling modern WMSs lack, §II-A)
    PLACEMENTS = ("least-loaded", "memory-aware")

    def __init__(
        self,
        engine: SimulationEngine,
        agents: Sequence[NodeAgent],
        containers: ContainerRuntime,
        metrics: MetricsRegistry,
        *,
        backfill: bool = True,
        placement: str = "least-loaded",
    ) -> None:
        require(len(agents) > 0, "scheduler needs at least one node")
        require(placement in self.PLACEMENTS, f"placement must be one of {self.PLACEMENTS}")
        self.engine = engine
        self.agents = list(agents)
        self.containers = containers
        self.metrics = metrics
        self.backfill = backfill
        self.placement = placement
        self.queue: deque[Job] = deque()
        self.jobs: dict[int, Job] = {}
        self._next_job_id = 1
        self._reserved_cores = [0] * len(agents)
        self._pumping = False
        for agent in self.agents:
            agent.on_capacity_freed.append(self._pump)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: TaskSpec,
        *,
        flags: Optional[MemFlag] = None,
        priority: int = 0,
        exclusive: bool = False,
        on_done: Optional[Callable[[Job], None]] = None,
    ) -> Job:
        """Enqueue one job; placement is attempted immediately.

        Higher ``priority`` jobs are considered first; within a priority
        level the queue stays FIFO.  ``exclusive`` selects the traditional
        bare-metal model: a whole node, no container, no colocation.
        """
        job = Job(
            job_id=self._next_job_id,
            spec=spec,
            flags=flags,
            priority=priority,
            exclusive=exclusive,
            submitted_at=self.engine.now,
            on_done=on_done,
        )
        self._next_job_id += 1
        self.jobs[job.job_id] = job
        tm = self.metrics.task(spec.name, spec.wclass.name)
        tm.submitted_at = self.engine.now
        self.queue.append(job)
        if priority:
            self.queue = deque(
                sorted(self.queue, key=lambda j: (-j.priority, j.job_id))
            )
        self._pump()
        return job

    def submit_batch(
        self,
        specs: Iterable[TaskSpec],
        *,
        flags: Optional[MemFlag] = None,
        exclusive: bool = False,
    ) -> list[Job]:
        return [self.submit(spec, flags=flags, exclusive=exclusive) for spec in specs]

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def _free_cores(self, i: int) -> int:
        return self.agents[i].cores_free - self._reserved_cores[i]

    def _pick_node(self, spec: TaskSpec) -> Optional[int]:
        """Choose a node with enough cores by the configured strategy:
        ``least-loaded`` maximises free cores; ``memory-aware`` maximises
        free byte-addressable memory (DRAM + PMem + CXL)."""
        best, best_score = None, None
        for i in range(len(self.agents)):
            if self._free_cores(i) < spec.cores:
                continue
            if self.placement == "memory-aware":
                mem = self.agents[i].memory
                score = sum(mem.free(t) for t in MEMORY_TIERS)
            else:
                score = self._free_cores(i)
            if best_score is None or score > best_score:
                best, best_score = i, score
        return best

    def _pump(self) -> None:
        """Dispatch every queued job that fits somewhere (FIFO + backfill)."""
        if self._pumping:
            return
        self._pumping = True
        try:
            scanned: deque[Job] = deque()
            while self.queue:
                job = self.queue.popleft()
                node = (
                    self._pick_exclusive_node(job.spec)
                    if job.exclusive
                    else self._pick_node(job.spec)
                )
                if node is None:
                    scanned.append(job)
                    if not self.backfill:
                        break
                    continue
                self._dispatch(job, node)
            scanned.extend(self.queue)
            self.queue = scanned
        finally:
            self._pumping = False

    def _pick_exclusive_node(self, spec: TaskSpec) -> Optional[int]:
        """A bare-metal job needs a completely idle node."""
        for i, agent in enumerate(self.agents):
            if agent.cores_used == 0 and self._reserved_cores[i] == 0:
                if agent.cores >= spec.cores:
                    return i
        return None

    def _dispatch(self, job: Job, node_index: int) -> None:
        job.state = JobState.STARTING
        job.node_index = node_index
        job._reserved = self.agents[node_index].cores if job.exclusive else job.spec.cores
        self._reserved_cores[node_index] += job._reserved
        tm = self.metrics.get(job.spec.name)
        tm.scheduled_at = self.engine.now
        if job.exclusive:
            # bare metal: no container image, no instantiation delay
            self._container_ready(job)
        else:
            self.containers.prepare(
                node_index, job.spec.image, lambda: self._container_ready(job)
            )

    def _container_ready(self, job: Job) -> None:
        assert job.node_index is not None
        agent = self.agents[job.node_index]
        tm = self.metrics.get(job.spec.name)
        tm.container_ready_at = self.engine.now
        self._reserved_cores[job.node_index] -= job._reserved
        job.state = JobState.RUNNING
        try:
            agent.start_task(
                job.spec, flags=job.flags, on_finish=lambda te: self._task_done(job, te)
            )
        except SchedulingError:
            # the reservation guaranteed cores; anything else is a bug
            raise
        if job.exclusive:
            # hold the node's remaining cores for the job's lifetime
            job._exclusive_hold = agent.cores_free
            agent.cores_used += job._exclusive_hold

    def _task_done(self, job: Job, te: TaskExecution) -> None:
        if job._exclusive_hold:
            self.agents[job.node_index].cores_used -= job._exclusive_hold
            job._exclusive_hold = 0
        job.state = JobState.FAILED if te.state is TaskState.FAILED else JobState.DONE
        job.notify_done()
        self._pump()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        return len(self.queue)

    def queue_snapshot(self) -> list[dict[str, object]]:
        """``squeue``-style view of pending jobs, in dispatch order."""
        now = self.engine.now
        return [
            {
                "job_id": j.job_id,
                "name": j.name,
                "cores": j.spec.cores,
                "priority": j.priority,
                "exclusive": j.exclusive,
                "waiting": now - j.submitted_at,
            }
            for j in self.queue
        ]

    @property
    def all_done(self) -> bool:
        return not self.queue and all(j.finished for j in self.jobs.values())

    def run_to_completion(self, max_time: float = 1e9) -> None:
        """Drive the engine until every submitted job finishes."""
        while not self.all_done:
            if not self.engine.step():
                raise SchedulingError(
                    f"deadlock: {self.pending_count} jobs queued, no events pending"
                )
            if self.engine.now > max_time:
                raise SchedulingError(f"jobs still unfinished at t={self.engine.now}")
