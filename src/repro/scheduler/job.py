"""Job objects for the batch scheduler.

A job wraps one task spec plus the submission-side metadata the paper's
modified SLURM carries: the Table-I memory flags embedded in the job
script ("we modify SLURM to support the required flags along with the job
script", §IV-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.flags import MemFlag
from ..workflows.task import TaskSpec

__all__ = ["JobState", "Job"]


class JobState(enum.Enum):
    PENDING = "pending"       # queued, awaiting resources
    STARTING = "starting"     # resources allocated, container preparing
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One scheduler entry."""

    job_id: int
    spec: TaskSpec
    #: flags from the job script; ``None`` defers to the spec's own flags,
    #: ``MemFlag.NONE`` explicitly requests predictor-driven allocation.
    flags: Optional[MemFlag] = None
    #: scheduling priority (higher runs first; FIFO within a priority)
    priority: int = 0
    #: traditional bare-metal HPC allocation: the job gets a whole node to
    #: itself and runs without a container (§II-B "the basic allocation
    #: unit for HPC jobs is a compute node")
    exclusive: bool = False
    submitted_at: float = 0.0
    state: JobState = JobState.PENDING
    node_index: Optional[int] = None
    on_done: Optional[Callable[["Job"], None]] = None
    #: times the scheduler has requeued this job after a fault
    retries: int = 0
    #: dispatch epoch; container-ready callbacks from a superseded dispatch
    #: (the node crashed and the job was requeued) carry a stale epoch
    _dispatch_seq: int = 0
    _listeners: list[Callable[["Job"], None]] = field(default_factory=list)
    #: cores held beyond spec.cores while an exclusive job runs
    _exclusive_hold: int = 0
    #: cores reserved between dispatch and start
    _reserved: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def add_listener(self, fn: Callable[["Job"], None]) -> None:
        self._listeners.append(fn)

    def notify_done(self) -> None:
        if self.on_done is not None:
            self.on_done(self)
        for fn in self._listeners:
            fn(self)

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)
