"""Validation-helper tests."""

import pytest

from repro.util.errors import ConfigurationError
from repro.util.validation import (
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
    check_probabilities,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_returns_value(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError, match="x must be > 0"):
            check_positive(bad, "x")


class TestCheckNonNegative:
    def test_zero_ok(self):
        assert check_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative(-1e-9, "x")


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_fraction(ok, "f") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_fraction(bad, "f")


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("a", ("a", "b"), "opt") == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError):
            check_in("c", ("a", "b"), "opt")


class TestCheckProbabilities:
    def test_accepts_distribution(self):
        assert check_probabilities([0.25, 0.75], "p") == (0.25, 0.75)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_probabilities([-0.1, 1.1], "p")

    def test_rejects_bad_sum(self):
        with pytest.raises(ConfigurationError):
            check_probabilities([0.3, 0.3], "p")
