"""Access-pattern tests: every pattern yields a probability vector and the
documented hot/cold/streaming structure (with hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workflows.patterns import (
    HotColdPattern,
    StreamingPattern,
    UniformPattern,
    ZipfPattern,
    hot_cold_weights,
    streaming_weights,
    zipf_weights,
)

ALL_PATTERNS = [
    HotColdPattern(hot_fraction=0.2, hot_share=0.8),
    ZipfPattern(alpha=0.9),
    StreamingPattern(window_frac=0.25),
    UniformPattern(),
]


class TestHotCold:
    def test_hot_share_concentration(self):
        w = hot_cold_weights(100, 0.1, 0.9)
        assert w[:10].sum() == pytest.approx(0.9)
        assert w[10:].sum() == pytest.approx(0.1)

    def test_hot_first_ordering(self):
        w = hot_cold_weights(100, 0.1, 0.9)
        assert w[0] > w[-1]

    def test_degenerate_all_hot(self):
        w = hot_cold_weights(10, 1.0, 0.8)
        assert np.allclose(w, 0.1)

    def test_zero_hot_fraction_uniform(self):
        w = hot_cold_weights(10, 0.0, 0.9)
        assert np.allclose(w, 0.1)

    def test_paper_example_shape(self):
        """512 MB of a 40 GB job taking 80% of accesses (§III-C2)."""
        n = 10240  # 40 GiB in 4 MiB chunks
        w = hot_cold_weights(n, 512 / (40 * 1024), 0.8)
        n_hot = round(n * 512 / (40 * 1024))
        assert w[:n_hot].sum() == pytest.approx(0.8)


class TestZipf:
    def test_monotone_decreasing(self):
        w = zipf_weights(64, 0.9)
        assert np.all(np.diff(w) <= 0)

    def test_alpha_controls_skew(self):
        flat = zipf_weights(64, 0.1)
        steep = zipf_weights(64, 2.0)
        assert steep[0] > flat[0]


class TestStreaming:
    def test_window_size(self):
        w = streaming_weights(100, 0.2, 0.0)
        assert np.count_nonzero(w) == 20

    def test_window_position_moves(self):
        w0 = streaming_weights(100, 0.2, 0.0)
        w1 = streaming_weights(100, 0.2, 0.5)
        assert not np.allclose(w0, w1)
        assert np.count_nonzero(w1[50:70]) == 20

    def test_window_wraps(self):
        w = streaming_weights(100, 0.2, 0.95)
        assert np.count_nonzero(w) == 20  # wraps around the end

    def test_pattern_advances_with_phase_index(self):
        p = StreamingPattern(window_frac=0.25)
        w0 = p.weights(100, 0)
        w1 = p.weights(100, 1)
        assert np.flatnonzero(w1)[0] > np.flatnonzero(w0)[0]


class TestPermuted:
    def test_permutation_preserves_mass(self):
        p = HotColdPattern(0.1, 0.9).permuted(seed=1)
        w = p.weights(100)
        assert w.sum() == pytest.approx(1.0)
        # hot chunk is no longer necessarily first
        base = HotColdPattern(0.1, 0.9).weights(100)
        assert sorted(w.tolist()) == pytest.approx(sorted(base.tolist()))

    def test_deterministic(self):
        p = ZipfPattern(0.9).permuted(seed=3)
        assert np.allclose(p.weights(50), p.weights(50))


class TestAllPatternsAreDistributions:
    @pytest.mark.parametrize("pattern", ALL_PATTERNS, ids=lambda p: type(p).__name__)
    @pytest.mark.parametrize("n", [1, 7, 128])
    def test_sums_to_one(self, pattern, n):
        w = pattern.weights(n, 0)
        assert w.shape == (n,)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0)

    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=0, max_value=10),
        st.sampled_from(range(len(ALL_PATTERNS))),
    )
    def test_distribution_property(self, n, phase, which):
        w = ALL_PATTERNS[which].weights(n, phase)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0)
