"""Intelligent page-movement tests: promotion, exchange, proactive swap."""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.core.movement import IntelligentPageMovement, MovementConfig
from repro.core.replacement import PageReplacementPolicy
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.base import PolicyContext
from repro.util.units import MiB

from conftest import CHUNK, make_pageset, small_specs


def setup(flags_map=None, config=None, **spec_kw):
    flags_map = flags_map or {}
    node = NodeMemorySystem(small_specs(**spec_kw), "n")
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
    owner_flags = lambda o: flags_map.get(o, MemFlag.NONE)
    replacement = PageReplacementPolicy(owner_flags)
    movement = IntelligentPageMovement(owner_flags, replacement, config)
    return node, ctx, movement


class TestConfig:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(Exception):
            MovementConfig(proactive_threshold=0.5, proactive_target=0.8)
        with pytest.raises(Exception):
            MovementConfig(high_watermark=0.5, low_watermark=0.8)


class TestSwapPromotion:
    def test_hot_swap_pages_promoted_first(self):
        node, ctx, movement = setup()
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        ps.temperature[:4] = 1.0
        movement.tick(ctx, promote_budget_bytes=MiB(1))
        assert (ps.tier[:4] != int(SWAP)).all()
        node.validate()

    def test_promotion_counts_minor_faults(self):
        node, ctx, movement = setup()
        minors = []
        ctx.record_minor = lambda owner, n: minors.append(n)
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        ps.temperature[:2] = 1.0
        movement.tick(ctx, promote_budget_bytes=MiB(1))
        assert sum(minors) >= 2

    def test_budget_zero_promotes_nothing(self):
        node, ctx, movement = setup()
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        ps.temperature[:] = 1.0
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(SWAP) == ps.total_bytes


class TestTierPromotion:
    def test_hot_cxl_pages_move_to_free_dram(self):
        node, ctx, movement = setup()
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), CXL)
        ps.temperature[:4] = 1.0
        movement.tick(ctx, promote_budget_bytes=MiB(4))
        assert set(np.flatnonzero(ps.tier == int(DRAM))) == {0, 1, 2, 3}

    def test_exchange_promotion_displaces_cold_dram(self):
        node, ctx, movement = setup()
        cold = make_pageset(node, "cold", MiB(4))  # fills DRAM
        node.place(cold, np.arange(cold.n_chunks), DRAM)
        cold.temperature[:] = 0.0
        hot = make_pageset(node, "hot", MiB(1))
        node.place(hot, np.arange(hot.n_chunks), CXL)
        hot.temperature[:] = 5.0  # above exchange threshold
        movement.tick(ctx, promote_budget_bytes=MiB(4))
        assert hot.bytes_in(DRAM) > 0
        assert cold.bytes_in(DRAM) < MiB(4)
        node.validate()

    def test_lukewarm_pages_do_not_trigger_exchange(self):
        node, ctx, movement = setup(
            config=MovementConfig(promote_threshold=0.05, exchange_threshold=10.0)
        )
        cold = make_pageset(node, "cold", MiB(4))
        node.place(cold, np.arange(cold.n_chunks), DRAM)
        warm = make_pageset(node, "warm", MiB(1))
        node.place(warm, np.arange(warm.n_chunks), CXL)
        warm.temperature[:] = 1.0  # promotion-worthy but below exchange bar
        movement.tick(ctx, promote_budget_bytes=MiB(4))
        assert warm.bytes_in(DRAM) == 0


@pytest.mark.requires_bit_exact
class TestPullUpPartialFill:
    """`_pull_up` fills DRAM→CXL→PMem in the caller's candidate order and
    reports exactly the chunks it moved.  These pin the exact path
    chunk-for-chunk, hence the marker: arena-fast's batched pull-up is
    held to the statistical contract instead."""

    def make_swapped(self, n_mib=4, **spec_kw):
        node, ctx, movement = setup(**spec_kw)
        ps = make_pageset(node, "a", MiB(n_mib))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        return node, ctx, movement, ps

    def test_spills_to_pmem_in_candidate_order(self):
        # DRAM and CXL hold 16 chunks each; the 64-chunk promotion set
        # must overflow the remainder into PMem, preserving order.
        node, ctx, movement, ps = self.make_swapped(
            dram=MiB(1), cxl=MiB(1), pmem=MiB(8)
        )
        idx = np.arange(ps.n_chunks)
        moved = movement._pull_up(ctx, ps, idx)
        assert np.array_equal(moved, idx)  # everything fit somewhere
        assert set(np.flatnonzero(ps.tier == int(DRAM))) == set(range(0, 16))
        assert set(np.flatnonzero(ps.tier == int(CXL))) == set(range(16, 32))
        assert set(np.flatnonzero(ps.tier == int(PMEM))) == set(range(32, 64))
        node.validate()

    def test_moved_subset_is_exact_when_all_tiers_fill(self):
        node, ctx, movement, ps = self.make_swapped(
            dram=MiB(1), cxl=MiB(1), pmem=MiB(1)
        )
        idx = np.arange(ps.n_chunks)
        moved = movement._pull_up(ctx, ps, idx)
        # 48 chunks of room total: the moved array is exactly the first
        # 48 candidates, in order, and the tail stays swapped out.
        assert np.array_equal(moved, idx[:48])
        assert set(np.flatnonzero(ps.tier == int(SWAP))) == set(range(48, 64))
        node.validate()

    def test_candidate_order_wins_over_index_order(self):
        # The promotion loop hands `_pull_up` a hotness-ranked candidate
        # list; the fill must honor that ranking, not chunk index.
        node, ctx, movement, ps = self.make_swapped(
            dram=MiB(1), cxl=MiB(1), pmem=MiB(8)
        )
        idx = np.arange(ps.n_chunks)[::-1].copy()  # hottest = highest index
        moved = movement._pull_up(ctx, ps, idx)
        assert np.array_equal(moved, idx)
        assert set(np.flatnonzero(ps.tier == int(DRAM))) == set(range(48, 64))
        assert set(np.flatnonzero(ps.tier == int(CXL))) == set(range(32, 48))
        node.validate()

    def test_tick_spill_reaches_pmem_in_rank_order(self):
        # End-to-end: a swap-promotion tick whose hot set exceeds
        # DRAM+CXL room spills the coolest promoted chunks to PMem.
        # watermarks at 1.0 so the exactly-full DRAM this ends with does
        # not trip reactive replacement; temps sit between the promote
        # and exchange bars so pass 2 leaves the placement alone
        node, ctx, movement = setup(
            dram=MiB(1), cxl=MiB(1), pmem=MiB(8),
            config=MovementConfig(
                high_watermark=1.0, low_watermark=1.0, exchange_threshold=0.95
            ),
        )
        ps = make_pageset(node, "a", MiB(4))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        ps.temperature[:] = np.linspace(0.9, 0.5, ps.n_chunks)
        movement.tick(ctx, promote_budget_bytes=MiB(4))
        assert set(np.flatnonzero(ps.tier == int(DRAM))) == set(range(0, 16))
        assert set(np.flatnonzero(ps.tier == int(CXL))) == set(range(16, 32))
        assert set(np.flatnonzero(ps.tier == int(PMEM))) == set(range(32, 64))
        assert not (ps.tier == int(SWAP)).any()
        node.validate()


class TestProactiveSwap:
    def test_cold_unprotected_pages_move_to_cxl_with_shadows(self):
        node, ctx, movement = setup(
            config=MovementConfig(proactive_threshold=0.5, proactive_target=0.25)
        )
        ps = make_pageset(node, "a", MiB(3))
        node.place(ps, np.arange(ps.n_chunks), DRAM)  # 75% of DRAM
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(CXL) > 0
        assert ps.bytes_in(SWAP) == 0
        assert ps.in_page_cache.sum() > 0  # shadows kept in free DRAM
        node.validate()

    def test_latency_sensitive_owners_skipped(self):
        node, ctx, movement = setup(
            flags_map={"lat": MemFlag.LAT},
            config=MovementConfig(
                proactive_threshold=0.5, proactive_target=0.25, high_watermark=0.99
            ),
        )
        ps = make_pageset(node, "lat", MiB(3))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(DRAM) == MiB(3)

    def test_below_threshold_no_movement(self):
        node, ctx, movement = setup()
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), DRAM)  # 25% of DRAM
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(DRAM) == MiB(1)

    def test_warm_pages_not_proactively_swapped(self):
        node, ctx, movement = setup(
            config=MovementConfig(proactive_threshold=0.5, proactive_target=0.25)
        )
        ps = make_pageset(node, "a", MiB(3))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        ps.temperature[:] = 1.0  # everything warm: nothing qualifies
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(CXL) == 0


class TestCompaction:
    def test_compaction_recorded_after_big_proactive_pass(self):
        node, ctx, movement = setup(
            config=MovementConfig(
                proactive_threshold=0.5, proactive_target=0.1,
                compaction_min_bytes=2 * CHUNK,
            )
        )
        ps = make_pageset(node, "a", MiB(3))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        movement.tick(ctx, promote_budget_bytes=0)
        assert node.stats.compactions >= 1

    def test_below_byte_threshold_no_compaction(self):
        node, ctx, movement = setup(
            config=MovementConfig(
                proactive_threshold=0.5, proactive_target=0.1,
                compaction_min_bytes=MiB(64),
            )
        )
        ps = make_pageset(node, "a", MiB(3))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        movement.tick(ctx, promote_budget_bytes=0)
        assert node.stats.compactions == 0

    def test_deprecated_chunk_alias_scales_by_default_chunk_size(self):
        from repro.memory.pageset import DEFAULT_CHUNK_SIZE

        cfg = MovementConfig(compaction_min_chunks=3)
        assert cfg.compaction_min_bytes == 3 * DEFAULT_CHUNK_SIZE
        # an explicit byte threshold wins over the alias
        cfg = MovementConfig(compaction_min_chunks=3, compaction_min_bytes=123456)
        assert cfg.compaction_min_bytes == 123456

    def test_threshold_is_bytes_not_an_arbitrary_pagesets_chunks(self):
        """Mixed chunk sizes on one node: the trigger must compare bytes
        freed against bytes, not against `chunks * first-pageset-chunk`
        (which made the threshold depend on registration order)."""
        node, ctx, movement = setup(
            config=MovementConfig(
                proactive_threshold=0.5, proactive_target=0.1,
                compaction_min_bytes=MiB(2),
            )
        )
        # a tiny-chunk pageset registers first; the old trigger read ITS
        # chunk size, so `2 chunks` meant 2*16KiB even though the big
        # pageset does all the freeing
        tiny = make_pageset(node, "tiny", CHUNK, chunk_size=CHUNK // 4)
        node.place(tiny, np.arange(tiny.n_chunks), CXL)
        big = make_pageset(node, "big", MiB(3))
        node.place(big, np.arange(big.n_chunks), DRAM)
        movement.tick(ctx, promote_budget_bytes=0)
        assert node.stats.compactions >= 1
        node.validate()
