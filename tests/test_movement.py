"""Intelligent page-movement tests: promotion, exchange, proactive swap."""

import numpy as np
import pytest

from repro.core.flags import MemFlag
from repro.core.movement import IntelligentPageMovement, MovementConfig
from repro.core.replacement import PageReplacementPolicy
from repro.memory.system import NodeMemorySystem
from repro.memory.tiers import CXL, DRAM, PMEM, SWAP
from repro.policies.base import PolicyContext
from repro.util.units import MiB

from conftest import CHUNK, make_pageset, small_specs


def setup(flags_map=None, config=None, **spec_kw):
    flags_map = flags_map or {}
    node = NodeMemorySystem(small_specs(**spec_kw), "n")
    ctx = PolicyContext(memory=node, rng=np.random.default_rng(0))
    owner_flags = lambda o: flags_map.get(o, MemFlag.NONE)
    replacement = PageReplacementPolicy(owner_flags)
    movement = IntelligentPageMovement(owner_flags, replacement, config)
    return node, ctx, movement


class TestConfig:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(Exception):
            MovementConfig(proactive_threshold=0.5, proactive_target=0.8)
        with pytest.raises(Exception):
            MovementConfig(high_watermark=0.5, low_watermark=0.8)


class TestSwapPromotion:
    def test_hot_swap_pages_promoted_first(self):
        node, ctx, movement = setup()
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        ps.temperature[:4] = 1.0
        movement.tick(ctx, promote_budget_bytes=MiB(1))
        assert (ps.tier[:4] != int(SWAP)).all()
        node.validate()

    def test_promotion_counts_minor_faults(self):
        node, ctx, movement = setup()
        minors = []
        ctx.record_minor = lambda owner, n: minors.append(n)
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        ps.temperature[:2] = 1.0
        movement.tick(ctx, promote_budget_bytes=MiB(1))
        assert sum(minors) >= 2

    def test_budget_zero_promotes_nothing(self):
        node, ctx, movement = setup()
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), SWAP)
        ps.temperature[:] = 1.0
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(SWAP) == ps.total_bytes


class TestTierPromotion:
    def test_hot_cxl_pages_move_to_free_dram(self):
        node, ctx, movement = setup()
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), CXL)
        ps.temperature[:4] = 1.0
        movement.tick(ctx, promote_budget_bytes=MiB(4))
        assert set(np.flatnonzero(ps.tier == int(DRAM))) == {0, 1, 2, 3}

    def test_exchange_promotion_displaces_cold_dram(self):
        node, ctx, movement = setup()
        cold = make_pageset(node, "cold", MiB(4))  # fills DRAM
        node.place(cold, np.arange(cold.n_chunks), DRAM)
        cold.temperature[:] = 0.0
        hot = make_pageset(node, "hot", MiB(1))
        node.place(hot, np.arange(hot.n_chunks), CXL)
        hot.temperature[:] = 5.0  # above exchange threshold
        movement.tick(ctx, promote_budget_bytes=MiB(4))
        assert hot.bytes_in(DRAM) > 0
        assert cold.bytes_in(DRAM) < MiB(4)
        node.validate()

    def test_lukewarm_pages_do_not_trigger_exchange(self):
        node, ctx, movement = setup(
            config=MovementConfig(promote_threshold=0.05, exchange_threshold=10.0)
        )
        cold = make_pageset(node, "cold", MiB(4))
        node.place(cold, np.arange(cold.n_chunks), DRAM)
        warm = make_pageset(node, "warm", MiB(1))
        node.place(warm, np.arange(warm.n_chunks), CXL)
        warm.temperature[:] = 1.0  # promotion-worthy but below exchange bar
        movement.tick(ctx, promote_budget_bytes=MiB(4))
        assert warm.bytes_in(DRAM) == 0


class TestProactiveSwap:
    def test_cold_unprotected_pages_move_to_cxl_with_shadows(self):
        node, ctx, movement = setup(
            config=MovementConfig(proactive_threshold=0.5, proactive_target=0.25)
        )
        ps = make_pageset(node, "a", MiB(3))
        node.place(ps, np.arange(ps.n_chunks), DRAM)  # 75% of DRAM
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(CXL) > 0
        assert ps.bytes_in(SWAP) == 0
        assert ps.in_page_cache.sum() > 0  # shadows kept in free DRAM
        node.validate()

    def test_latency_sensitive_owners_skipped(self):
        node, ctx, movement = setup(
            flags_map={"lat": MemFlag.LAT},
            config=MovementConfig(
                proactive_threshold=0.5, proactive_target=0.25, high_watermark=0.99
            ),
        )
        ps = make_pageset(node, "lat", MiB(3))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(DRAM) == MiB(3)

    def test_below_threshold_no_movement(self):
        node, ctx, movement = setup()
        ps = make_pageset(node, "a", MiB(1))
        node.place(ps, np.arange(ps.n_chunks), DRAM)  # 25% of DRAM
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(DRAM) == MiB(1)

    def test_warm_pages_not_proactively_swapped(self):
        node, ctx, movement = setup(
            config=MovementConfig(proactive_threshold=0.5, proactive_target=0.25)
        )
        ps = make_pageset(node, "a", MiB(3))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        ps.temperature[:] = 1.0  # everything warm: nothing qualifies
        movement.tick(ctx, promote_budget_bytes=0)
        assert ps.bytes_in(CXL) == 0


class TestCompaction:
    def test_compaction_recorded_after_big_proactive_pass(self):
        node, ctx, movement = setup(
            config=MovementConfig(
                proactive_threshold=0.5, proactive_target=0.1, compaction_min_chunks=2
            )
        )
        ps = make_pageset(node, "a", MiB(3))
        node.place(ps, np.arange(ps.n_chunks), DRAM)
        movement.tick(ctx, promote_budget_bytes=0)
        assert node.stats.compactions >= 1
