"""Experiment-runner CLI tests and report rendering."""

import pytest

from repro.experiments.runner import ALL_EXPERIMENTS, main, run_all, to_markdown
from repro.metrics.report import render_gantt


class TestRunnerRegistry:
    def test_every_paper_figure_registered(self):
        for name in (
            "fig01", "fig05", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig11", "cold-pages",
        ):
            assert name in ALL_EXPERIMENTS

    def test_extensions_registered(self):
        for name in ("ext-shared-inputs", "ext-failures", "ext-open-system"):
            assert name in ALL_EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_all(["fig99"], verbose=False)


class TestRunnerExecution:
    def test_run_selected(self, capsys):
        results = run_all(["cold-pages"], verbose=True)
        assert set(results) == {"cold-pages"}
        out = capsys.readouterr().out
        assert "idle-fraction" in out
        assert "regenerated in" in out

    def test_markdown_report(self):
        results = run_all(["cold-pages"], verbose=False)
        md = to_markdown(results)
        assert md.startswith("# Experiment report")
        assert "## cold-pages" in md
        assert "```" in md

    def test_main_writes_report(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        rc = main(["cold-pages", "--quiet", "--out", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        assert "cold-pages" in out_file.read_text()


class TestGantt:
    def test_bars_scale_to_horizon(self):
        out = render_gantt([("a", 0.0, 5.0), ("bb", 5.0, 10.0)], width=10)
        lines = out.splitlines()
        assert lines[0].startswith("a  |#####")
        assert lines[1].endswith("5.0-10.0")
        # second bar starts at the midpoint
        assert lines[1].split("|")[1][:5] == "     "

    def test_empty(self):
        assert render_gantt([]) == "(no tasks)"

    def test_minimum_one_cell(self):
        out = render_gantt([("x", 0.0, 0.001), ("y", 0.0, 100.0)], width=10)
        assert "#" in out.splitlines()[0]
