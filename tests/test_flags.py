"""MemFlag parsing and decomposition tests (Table I semantics)."""

import pytest

from repro.core.flags import MemFlag, normalize_flags, parse_flags


class TestAtoms:
    def test_single_flag_atoms(self):
        assert MemFlag.LAT.atoms() == (MemFlag.LAT,)

    def test_composite_atoms_in_priority_order(self):
        combo = MemFlag.CAP | MemFlag.LAT | MemFlag.BW
        assert combo.atoms() == (MemFlag.LAT, MemFlag.BW, MemFlag.CAP)

    def test_none_has_no_atoms(self):
        assert MemFlag.NONE.atoms() == ()

    def test_shl_precedes_bw(self):
        combo = MemFlag.BW | MemFlag.SHL
        assert combo.atoms() == (MemFlag.SHL, MemFlag.BW)


class TestLabel:
    def test_single(self):
        assert MemFlag.LAT.label == "LAT"

    def test_composite(self):
        assert (MemFlag.LAT | MemFlag.SHL).label == "LAT|SHL"

    def test_none(self):
        assert MemFlag.NONE.label == "NONE"


class TestNormalize:
    def test_none_maps_to_none_flag(self):
        assert normalize_flags(None) is MemFlag.NONE

    def test_single_passthrough(self):
        assert normalize_flags(MemFlag.BW) is MemFlag.BW

    def test_iterable_combines(self):
        assert normalize_flags([MemFlag.LAT, MemFlag.CAP]) == MemFlag.LAT | MemFlag.CAP

    def test_rejects_non_flag(self):
        with pytest.raises(TypeError):
            normalize_flags(["LAT"])  # strings need parse_flags


class TestParse:
    def test_pipe_syntax(self):
        assert parse_flags("LAT|SHL") == MemFlag.LAT | MemFlag.SHL

    def test_comma_syntax(self):
        assert parse_flags("BW,CAP") == MemFlag.BW | MemFlag.CAP

    def test_list_syntax(self):
        assert parse_flags(["lat", "cap"]) == MemFlag.LAT | MemFlag.CAP

    def test_case_insensitive(self):
        assert parse_flags("bw") is MemFlag.BW

    def test_empty_string(self):
        assert parse_flags("") is MemFlag.NONE

    def test_none_token(self):
        assert parse_flags("NONE") is MemFlag.NONE

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown memory flag"):
            parse_flags("FAST")
