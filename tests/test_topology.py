"""SharedCXLPool and MemoryTopology tests."""

import pytest

from repro.memory.topology import MemoryTopology, SharedCXLPool
from repro.util.errors import AllocationError
from repro.util.units import MiB

from conftest import small_specs


class TestSharedCXLPool:
    def test_stage_new_region(self):
        pool = SharedCXLPool(MiB(64))
        assert pool.stage("img", MiB(4)) is True
        assert pool.contains("img")
        assert pool.used == MiB(4)
        assert pool.refcount("img") == 1

    def test_stage_existing_is_cache_hit(self):
        pool = SharedCXLPool(MiB(64))
        pool.stage("img", MiB(4))
        assert pool.stage("img", MiB(4)) is False
        assert pool.used == MiB(4)  # no double accounting
        assert pool.refcount("img") == 2

    def test_capacity_enforced(self):
        pool = SharedCXLPool(MiB(4))
        with pytest.raises(AllocationError):
            pool.stage("big", MiB(8))

    def test_acquire_release_refcounting(self):
        pool = SharedCXLPool(MiB(64))
        pool.stage("r", MiB(1))
        pool.acquire("r")
        assert pool.release("r") is False  # one ref remains
        assert pool.release("r") is True   # freed
        assert not pool.contains("r")
        assert pool.used == 0

    def test_release_unknown_rejected(self):
        pool = SharedCXLPool(MiB(64))
        with pytest.raises(Exception):
            pool.release("nope")

    def test_acquire_unknown_rejected(self):
        pool = SharedCXLPool(MiB(64))
        with pytest.raises(Exception):
            pool.acquire("nope")

    def test_region_bytes(self):
        pool = SharedCXLPool(MiB(64))
        pool.stage("r", MiB(2))
        assert pool.region_bytes("r") == MiB(2)
        assert pool.region_bytes("other") == 0

    def test_len(self):
        pool = SharedCXLPool(MiB(64))
        pool.stage("a", MiB(1))
        pool.stage("b", MiB(1))
        assert len(pool) == 2


class TestMemoryTopology:
    def test_builds_n_nodes(self):
        topo = MemoryTopology(4, small_specs())
        assert len(topo) == 4
        assert topo.node(2).node_id == "node2"

    def test_nodes_are_independent(self):
        topo = MemoryTopology(2, small_specs())
        assert topo.node(0) is not topo.node(1)

    def test_validate_walks_nodes(self):
        topo = MemoryTopology(2, small_specs())
        topo.validate()  # fresh topology is consistent

    def test_requires_at_least_one_node(self):
        with pytest.raises(Exception):
            MemoryTopology(0, small_specs())
